"""Legacy setup shim for environments without the `wheel` package
(offline editable installs: `python setup.py develop`)."""

from setuptools import setup

setup()
