"""Overhead of the observability layer when it is switched off — and on.

The tracer/metrics/report machinery touches the join driver's hot loops
(per-partition spans, chunk events, boundary checks), so this benchmark
documents what the *disabled* path costs — the deployment default — and
what full tracing adds for context.  It runs the Figure 8 workload
(long-lived mixture, 50% long-lived tuples) through the OIPJOIN and the
sort-merge baseline in three configurations:

* ``off``    — nothing attached: the constructor defaults
  (``NULL_TRACER``, no registry, no report) exercise the guarded no-op
  path (reference),
* ``noop``   — an explicitly passed disabled tracer plus guards, i.e.
  the same path reached through the public keyword surface,
* ``traced`` — a live in-memory :class:`~repro.obs.trace.Tracer`, a
  :class:`~repro.obs.registry.MetricsRegistry` and report collection,
  for context.

The acceptance budget is the ``noop`` column: **under 2% over ``off``**
(one attribute load and an identity test per guarded site).  The
standalone script prints the measured overhead; ``--smoke`` (the CI
``obs-smoke`` job) asserts the budget on a small input with
min-of-repeats timing so scheduler noise cannot flake it.

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.workloads import long_lived_mixture

N = 1_200  # the Figure 8 scale
SMOKE_N = 250
TIME_RANGE = Interval(1, 2**20)
LONG_SHARE = 0.5
CONTENDERS = ("oip", "smj")

CONFIGURATIONS = ("off", "noop", "traced")

#: The <2% budget for the disabled path (the ISSUE's acceptance bar).
NOOP_BUDGET = 0.02


def _config_kwargs(config: str) -> Dict:
    if config == "off":
        return {}
    if config == "noop":
        return {"tracer": NULL_TRACER, "metrics": None}
    if config == "traced":
        return {
            "tracer": Tracer(),
            "metrics": MetricsRegistry(),
            "collect_report": True,
        }
    raise ValueError(f"unknown configuration {config!r}")


def _relations(cardinality: int):
    outer = long_lived_mixture(
        cardinality, LONG_SHARE, TIME_RANGE, seed=1, name="r"
    )
    inner = long_lived_mixture(
        cardinality, LONG_SHARE, TIME_RANGE, seed=2, name="s"
    )
    return outer, inner


def _one_run(factory, config: str, outer, inner) -> float:
    join = factory(**_config_kwargs(config))
    started = time.perf_counter()
    join.join(outer, inner)
    return time.perf_counter() - started


def _best_times(factory, outer, inner, repeats: int) -> Dict[str, float]:
    """Min-of-repeats per configuration, interleaved.

    Timing each configuration back to back inside a repeat (rather than
    finishing all repeats of one configuration first) lets clock drift
    and scheduler noise hit every configuration equally — at millisecond
    run lengths that is the difference between a stable overhead number
    and ±5% jitter.
    """
    for config in CONFIGURATIONS:  # warm-up, untimed
        _one_run(factory, config, outer, inner)
    best = {config: float("inf") for config in CONFIGURATIONS}
    for _ in range(repeats):
        for config in CONFIGURATIONS:
            best[config] = min(
                best[config], _one_run(factory, config, outer, inner)
            )
    return best


def run_overhead_sweep(cardinality: int, repeats: int = 5) -> Dict:
    """Time every contender in every configuration.

    Returns ``{"rows": table rows, "overheads": {algorithm: fractional
    noop-over-off overhead}}``.
    """
    outer, inner = _relations(cardinality)
    rows: List[List[object]] = []
    overheads: Dict[str, float] = {}
    for name in CONTENDERS:
        times = _best_times(ALGORITHMS[name], outer, inner, repeats)
        overhead = times["noop"] / times["off"] - 1.0
        overheads[name] = overhead
        rows.append(
            [
                name,
                f"{times['off'] * 1e3:.1f}",
                f"{times['noop'] * 1e3:.1f}",
                f"{overhead * 100:+.1f}%",
                f"{times['traced'] * 1e3:.1f}",
            ]
        )
    return {"rows": rows, "overheads": overheads}


def _report(cardinality: int, sweep: Dict) -> None:
    heading(
        "Observability-layer overhead — Figure 8 workload "
        f"(n = {cardinality:,} per relation, {LONG_SHARE:.0%} long-lived)"
    )
    table(
        ["algorithm", "off ms", "noop ms", "noop overhead", "traced ms"],
        sweep["rows"],
    )
    emit(
        "('noop' is the shipped default reached through the keyword "
        "surface: NULL_TRACER, no registry; budget is <2% over 'off'.  "
        "'traced' adds a live tracer, a metrics registry and report "
        "collection for context.)"
    )


def _assert_budget(overheads: Dict[str, float], ceiling: float) -> None:
    for name, overhead in overheads.items():
        assert overhead < ceiling, (
            f"{name}: no-op observability overhead {overhead:.1%} exceeds "
            f"the {ceiling:.0%} budget"
        )


def _enforce_budget_with_retries(
    cardinality: int, repeats: int, ceiling: float, attempts: int = 3
) -> None:
    """Assert the no-op budget, re-measuring on a miss.

    A 2% ceiling sits below the noise floor of a single millisecond-scale
    sweep, so a miss triggers fresh sweeps (up to ``attempts`` total) and
    the assertion runs on the *best* overhead seen per algorithm.  The
    off and noop paths execute identical code, so measurement noise is
    symmetric and the best-of-attempts converges toward the true
    overhead; a genuine regression stays elevated in every attempt and
    still fails.
    """
    best: Dict[str, float] = {}
    for attempt in range(attempts):
        sweep = run_overhead_sweep(cardinality, repeats=repeats)
        for name, overhead in sweep["overheads"].items():
            best[name] = min(best.get(name, float("inf")), overhead)
        if all(overhead < ceiling for overhead in best.values()):
            return
        emit(
            f"(budget miss on attempt {attempt + 1}/{attempts}; "
            "re-measuring)"
        )
    _assert_budget(best, ceiling)


def test_obs_overhead(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_overhead_sweep(scaled(N)), rounds=1, iterations=1
    )
    _report(scaled(N), sweep)
    # Lenient CI ceiling; the documented budget is 2% and --smoke
    # enforces it with min-of-repeats timing.
    _assert_budget(sweep["overheads"], ceiling=0.10)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Observability-layer overhead benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small input, and assert the <2% no-op budget",
    )
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        cardinality = args.cardinality or SMOKE_N
        repeats = args.repeats or 25
    else:
        cardinality = args.cardinality or scaled(N)
        repeats = args.repeats or 5

    sweep = run_overhead_sweep(cardinality, repeats=repeats)
    _report(cardinality, sweep)
    if args.smoke:
        if not all(
            overhead < NOOP_BUDGET
            for overhead in sweep["overheads"].values()
        ):
            _enforce_budget_with_retries(
                cardinality, repeats, ceiling=NOOP_BUDGET
            )
        emit(f"no-op overhead within the {NOOP_BUDGET:.0%} budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
