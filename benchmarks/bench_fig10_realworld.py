"""Figure 10: runtime and AFR on the three real-world datasets
(stand-ins), varying the size of the outer relation from 25% to 100% of
the dataset while the inner relation is the full dataset.

The paper samples the outer relation from the dataset itself; we use a
systematic sample (every n-th tuple) so the temporal distribution is
preserved.  Expected shape per dataset: the OIPJOIN fastest, the loose
quadtree with by far the worst AFR, and sort-merge competitive only
because a large share of each dataset is short-lived.
"""

import pytest

from repro.baselines import ALGORITHMS
from repro.workloads import DATASET_GENERATORS

from .common import heading, run_contenders, scaled, table

CONTENDERS = ("oip", "lqt", "rit", "sgt", "smj")
CARDINALITY = {"incumbent": 2_500, "feed": 2_500, "webkit": 2_500}
OUTER_PERCENTS = (25, 50, 75, 100)


@pytest.mark.parametrize("dataset", sorted(DATASET_GENERATORS))
def test_fig10_dataset(benchmark, dataset):
    inner = DATASET_GENERATORS[dataset](
        cardinality=scaled(CARDINALITY[dataset]), seed=0, name=dataset
    )

    def sweep():
        rows = []
        for percent in OUTER_PERCENTS:
            step = max(1, round(100 / percent))
            outer = inner.sample_every(step, name=f"{dataset}-{percent}%")
            results = run_contenders(
                {name: ALGORITHMS[name] for name in CONTENDERS},
                outer,
                inner,
            )
            row = [f"{percent}%"]
            for name in CONTENDERS:
                result, elapsed = results[name]
                row.append(
                    f"{elapsed * 1e3:6.0f}ms/"
                    f"{result.false_hit_ratio * 100:5.1f}%"
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        f"Figure 10 — {dataset}: runtime / AFR vs outer size "
        f"(inner n = {len(inner):,}; paper uses the full dataset)"
    )
    table(["outer size"] + list(CONTENDERS), rows)
