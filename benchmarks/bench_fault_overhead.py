"""Overhead of the resilience layer with fault injection disabled.

The checksum/retry substrate (PR: fault-injection and resilient
execution) sits on the hot read path of every algorithm, so this
benchmark documents what it costs when nothing goes wrong — the
deployment configuration.  It runs the Figure 8 workload (long-lived
mixture, 50% long-lived tuples) through the OIPJOIN and the sort-merge
baseline in three configurations:

* ``off``      — ``verify_checksums=False``, no fault policy: the read
  path of the pre-resilience code (reference),
* ``verify``   — the default: checksums verified on every read, no
  injector attached,
* ``chaos``    — the ``chaos`` fault profile, for context: what seeded
  transient faults, corruption re-reads and latency spikes add.

The acceptance target is the ``verify`` column: **under ~5% over
``off``** (block checksums are a single memoized CRC32 compare per
read).  The standalone script prints the measured overhead; the pytest
entry asserts a lenient ceiling so CI noise cannot flake it.

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
    PYTHONPATH=src python benchmarks/bench_fault_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.storage.faults import fault_profile
from repro.workloads import long_lived_mixture

N = 1_200  # the Figure 8 scale
SMOKE_N = 250
TIME_RANGE = Interval(1, 2**20)
LONG_SHARE = 0.5
CONTENDERS = ("oip", "smj")

#: Constructor kwargs per configuration.
CONFIGURATIONS = ("off", "verify", "chaos")


def _config_kwargs(config: str) -> Dict:
    if config == "off":
        return {"verify_checksums": False}
    if config == "verify":
        return {}
    if config == "chaos":
        return {"fault_policy": fault_profile("chaos", seed=0)}
    raise ValueError(f"unknown configuration {config!r}")


def _relations(cardinality: int):
    outer = long_lived_mixture(
        cardinality, LONG_SHARE, TIME_RANGE, seed=1, name="r"
    )
    inner = long_lived_mixture(
        cardinality, LONG_SHARE, TIME_RANGE, seed=2, name="s"
    )
    return outer, inner


def _best_time(factory, kwargs, outer, inner, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        join = factory(**kwargs)
        started = time.perf_counter()
        join.join(outer, inner)
        best = min(best, time.perf_counter() - started)
    return best


def run_overhead_sweep(cardinality: int, repeats: int = 5) -> Dict:
    """Time every contender in every configuration.

    Returns ``{"rows": table rows, "overheads": {algorithm: fractional
    verify-over-off overhead}}``.
    """
    outer, inner = _relations(cardinality)
    rows: List[List[object]] = []
    overheads: Dict[str, float] = {}
    for name in CONTENDERS:
        times = {
            config: _best_time(
                ALGORITHMS[name],
                _config_kwargs(config),
                outer,
                inner,
                repeats,
            )
            for config in CONFIGURATIONS
        }
        overhead = times["verify"] / times["off"] - 1.0
        overheads[name] = overhead
        rows.append(
            [
                name,
                f"{times['off'] * 1e3:.1f}",
                f"{times['verify'] * 1e3:.1f}",
                f"{overhead * 100:+.1f}%",
                f"{times['chaos'] * 1e3:.1f}",
            ]
        )
    return {"rows": rows, "overheads": overheads}


def _report(cardinality: int, sweep: Dict) -> None:
    heading(
        "Resilience-layer overhead — Figure 8 workload "
        f"(n = {cardinality:,} per relation, {LONG_SHARE:.0%} long-lived)"
    )
    table(
        ["algorithm", "off ms", "verify ms", "verify overhead", "chaos ms"],
        sweep["rows"],
    )
    emit(
        "('verify' is the shipped default: checksums on, no injector; "
        "target is <~5% over 'off'.  'chaos' adds the seeded chaos "
        "profile's retries and re-reads for context.)"
    )


def test_fault_overhead(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_overhead_sweep(scaled(N)), rounds=1, iterations=1
    )
    _report(scaled(N), sweep)
    # Lenient CI ceiling; the documented expectation is ~5%.
    for name, overhead in sweep["overheads"].items():
        assert overhead < 0.25, (
            f"{name}: verification overhead {overhead:.1%} exceeds the "
            "25% CI ceiling (expected ~5%)"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Resilience-layer overhead benchmark"
    )
    parser.add_argument("--smoke", action="store_true", help="tiny input")
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        cardinality = args.cardinality or SMOKE_N
        repeats = args.repeats or 1
    else:
        cardinality = args.cardinality or scaled(N)
        repeats = args.repeats or 5

    sweep = run_overhead_sweep(cardinality, repeats=repeats)
    _report(cardinality, sweep)
    return 0


if __name__ == "__main__":
    sys.exit(main())
