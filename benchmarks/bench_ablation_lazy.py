"""Ablation: the lazy partition list (Section 4.2).

Lazy partitioning buys two things the paper calls out explicitly:

1. navigation skips empty partitions — the access structure holds
   ``tau * k(k+1)/2`` nodes instead of ``k(k+1)/2`` (Lemma 3), and
2. because of that, the cost model can afford a larger k (Section 6.2,
   advantage (c)).

This bench quantifies both: it compares the materialised node count with
the full grid, and the measured join against a "no-tightening" variant
that derives k pretending ``tau = 1`` (what the optimiser would do if
empty partitions were materialised).
"""

from repro.core.granules import JoinCostModel, cost_model_for, derive_k
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration, possible_partition_count
from repro.workloads import uniform_relation

from .common import heading, scaled, table, timed_join

N = 3_000
TIME_RANGE = Interval(1, 2**20)


class _NoTighteningModel(JoinCostModel):
    """Cost model that ignores lazy partitioning (tau pinned to 1)."""

    def tightening(self, k: int) -> float:
        return 1.0


def test_ablation_lazy_node_count(benchmark):
    relation = uniform_relation(
        scaled(N), TIME_RANGE, 0.005, seed=1, name="s"
    )

    def build():
        rows = []
        for k in (16, 64, 256):
            config = OIPConfiguration.for_relation(relation, k)
            built = oip_create(relation, config)
            possible = possible_partition_count(k)
            rows.append(
                (
                    k,
                    f"{possible:,}",
                    f"{built.partition_count:,}",
                    f"{built.partition_count / possible:.1%}",
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    heading(
        "Ablation (lazy list) — materialised vs possible partitions "
        f"(n = {scaled(N):,}, durations <= 0.5%)"
    )
    table(["k", "possible (Prop. 1)", "materialised", "tau"], rows)


def test_ablation_lazy_vs_no_tightening_k(benchmark):
    outer = uniform_relation(
        scaled(N) // 10, TIME_RANGE, 0.005, seed=1, name="r"
    )
    inner = uniform_relation(scaled(N), TIME_RANGE, 0.005, seed=2, name="s")

    def run():
        lazy_model = cost_model_for(outer, inner)
        eager_model = _NoTighteningModel(
            outer_cardinality=lazy_model.outer_cardinality,
            inner_cardinality=lazy_model.inner_cardinality,
            outer_duration_fraction=lazy_model.outer_duration_fraction,
            inner_duration_fraction=lazy_model.inner_duration_fraction,
            tuples_per_block=lazy_model.tuples_per_block,
            weights=lazy_model.weights,
        )
        k_lazy = derive_k(lazy_model).k
        k_eager = derive_k(eager_model).k
        rows = []
        for label, k in (
            ("tau-aware (lazy)", k_lazy),
            ("tau = 1 (eager)", k_eager),
        ):
            result, elapsed = timed_join(OIPJoin(k=k), outer, inner)
            rows.append(
                (
                    label,
                    k,
                    f"{result.counters.false_hits:,}",
                    f"{result.counters.partition_accesses:,}",
                    f"{elapsed * 1e3:.1f} ms",
                )
            )
        return rows, k_lazy, k_eager

    rows, k_lazy, k_eager = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    heading(
        "Ablation (lazy list) — k derived with vs without tightening "
        "awareness"
    )
    table(
        ["optimiser", "k", "false hits", "partition accesses", "runtime"],
        rows,
    )
    # Section 6.2 advantage (c): tightening awareness affords more
    # granules (and therefore fewer false hits).
    assert k_lazy >= k_eager
