"""Ablation: self-adjusting k vs pinned k (Section 6.2).

The OIPJOIN's headline feature is deriving k from the data and the cost
weights.  This bench pits the self-adjusted k against a grid of fixed
values on the same workload and reports where the self-adjusted run
lands: its modelled cost must be within a small factor of the best fixed
k (the cost function is flat around its minimum — Figure 7's message).
"""

from repro.core.granules import cost_model_for
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.workloads import long_lived_mixture

from .common import emit, heading, scaled, table, timed_join

N = 2_500
TIME_RANGE = Interval(1, 2**20)
FIXED_KS = (2, 8, 32, 128, 512)


def test_ablation_self_adjusting_k(benchmark):
    outer = long_lived_mixture(
        scaled(N) // 5, 0.3, TIME_RANGE, seed=1, name="r"
    )
    inner = long_lived_mixture(scaled(N), 0.3, TIME_RANGE, seed=2, name="s")
    model = cost_model_for(outer, inner)

    def run():
        rows = []
        auto_result, auto_elapsed = timed_join(OIPJoin(), outer, inner)
        auto_k = auto_result.details["k"]
        rows.append(
            (
                "self-adjusted",
                auto_k,
                f"{model.overhead_cost(auto_k):,.0f}",
                f"{auto_elapsed * 1e3:.1f} ms",
            )
        )
        for k in FIXED_KS:
            result, elapsed = timed_join(OIPJoin(k=k), outer, inner)
            rows.append(
                (
                    "fixed",
                    k,
                    f"{model.overhead_cost(k):,.0f}",
                    f"{elapsed * 1e3:.1f} ms",
                )
            )
        return rows, auto_k

    rows, auto_k = benchmark.pedantic(run, rounds=1, iterations=1)
    heading(
        "Ablation (self-adjustment) — derived k vs fixed k "
        f"(n_r = {scaled(N) // 5:,}, n_s = {scaled(N):,}, 30% long-lived)"
    )
    table(["mode", "k", "modelled cost", "runtime"], rows)

    auto_cost = model.overhead_cost(auto_k)
    best_fixed = min(model.overhead_cost(k) for k in FIXED_KS)
    emit(
        f"self-adjusted k = {auto_k}: modelled cost within "
        f"x{auto_cost / best_fixed:.2f} of the best fixed candidate"
    )
    assert auto_cost <= best_fixed * 1.25
