"""Cold OIPCREATE vs snapshot-load: what persistence buys at startup.

The snapshot layer (:mod:`repro.storage.snapshot`) persists both OIP
partitionings as columnar ``array('q')`` sections.  Loading one skips
the sort and the per-tuple grid assignment of Algorithm 1: the
directory replays in creation order and whole blocks are restored with
their recorded checksums.  The join that follows is bit-identical
either way — this benchmark documents the startup-latency consequence
on the Figure 8 workload (long-lived mixture, several cardinalities)
and the Figure 9 real-world stand-ins.

Both sides are timed with the same interleaved min-of-repeats harness
as ``bench_kernel_speedup.py``: a cold build derives ``k`` and runs
``oip_create`` for both relations; a load restores the same two
partition lists from the snapshot.  Relation fingerprints are memoised
per relation instance, so the timed load is the steady-state reload
cost (resident relations, verified against the cached digests) — the
first load after constructing a relation pays one extra O(n) digest
pass.  The acceptance bar: **load >= 5x faster than cold build** at
the largest Figure 8 cardinality.  The standalone script records the
sweep in ``BENCH_persistence.json`` at the repository root; ``--smoke``
(the CI ``recovery-smoke`` job) asserts the bar at the gate
cardinality with best-of-attempts retries.

    PYTHONPATH=src python benchmarks/bench_index_persistence.py
    PYTHONPATH=src python benchmarks/bench_index_persistence.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.core.granules import JoinCostModel, derive_k
from repro.core.interval import Interval
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration
from repro.storage import StorageManager, load_index, save_index
from repro.storage.device import DeviceProfile
from repro.workloads import DATASET_GENERATORS, long_lived_mixture

TIME_RANGE = Interval(1, 2**20)
LONG_SHARE = 0.5

#: Figure 8 cardinality ladder; the gate is asserted on the largest.
SIZES = (400, 1_200, 3_600, 7_200)
SMOKE_N = 7_200

#: The CI gate: snapshot load over cold OIPCREATE at the largest size.
SPEEDUP_BUDGET = 5.0

RESULTS_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_persistence.json",
)


def _workloads(smoke: bool) -> Dict[str, tuple]:
    sizes = (scaled(SMOKE_N),) if smoke else tuple(scaled(n) for n in SIZES)
    workloads = {
        f"long-lived/{n}": (
            long_lived_mixture(n, LONG_SHARE, TIME_RANGE, seed=1, name="r"),
            long_lived_mixture(n, LONG_SHARE, TIME_RANGE, seed=2, name="s"),
        )
        for n in sizes
    }
    if not smoke:
        n = scaled(SIZES[1])
        for name, generator in sorted(DATASET_GENERATORS.items()):
            workloads[f"{name}/{n}"] = (
                generator(cardinality=n, seed=1, name=f"{name}_r"),
                generator(cardinality=n, seed=2, name=f"{name}_s"),
            )
    return workloads


def _cold_build(outer, inner) -> None:
    """What OIPJoin does before probing: derive k, partition both sides.

    Mirrors the join's derived-k path (exact-root cost model, shared k)
    so the timed work matches what a load replaces."""
    device = DeviceProfile.main_memory()
    model = JoinCostModel(
        outer_cardinality=outer.cardinality,
        inner_cardinality=inner.cardinality,
        outer_duration_fraction=outer.duration_fraction,
        inner_duration_fraction=inner.duration_fraction,
        tuples_per_block=device.tuples_per_block,
        weights=device.weights,
    )
    k = max(1, derive_k(model).k)
    storage = StorageManager(device=device)
    oip_create(outer, OIPConfiguration.for_relation(outer, k), storage)
    oip_create(inner, OIPConfiguration.for_relation(inner, k), storage)


def _load_build(path: str, outer, inner) -> None:
    load_index(path, outer, inner, storage=StorageManager())


def _best_times(path: str, outer, inner, repeats: int) -> Dict[str, float]:
    """Min-of-repeats, interleaved, after an untimed warm-up each —
    same rationale as the kernel benchmark: clock drift and scheduler
    noise hit both sides equally."""
    _cold_build(outer, inner)
    _load_build(path, outer, inner)
    best = {"cold": float("inf"), "load": float("inf")}
    for _ in range(repeats):
        started = time.perf_counter()
        _cold_build(outer, inner)
        best["cold"] = min(best["cold"], time.perf_counter() - started)
        started = time.perf_counter()
        _load_build(path, outer, inner)
        best["load"] = min(best["load"], time.perf_counter() - started)
    return best


def run_persistence_sweep(repeats: int = 3, smoke: bool = False) -> Dict:
    """Time cold build vs snapshot load on every workload.

    Returns ``{"rows": result dicts, "gate": the largest long-lived
    row's speedup the CI job asserts on}``.
    """
    rows: List[Dict] = []
    gate: Optional[float] = None
    gate_row = None
    with tempfile.TemporaryDirectory() as tmp:
        for workload, (outer, inner) in _workloads(smoke).items():
            path = os.path.join(tmp, workload.replace("/", "-") + ".oip")
            info = save_index(path, outer, inner)
            times = _best_times(path, outer, inner, repeats)
            speedup = times["cold"] / times["load"]
            rows.append(
                {
                    "workload": workload,
                    "cardinality": outer.cardinality,
                    "snapshot_bytes": info["bytes"],
                    "cold_ms": times["cold"] * 1e3,
                    "load_ms": times["load"] * 1e3,
                    "speedup": speedup,
                }
            )
            if workload.startswith("long-lived/"):
                gate = speedup  # the ladder is ascending: last wins
                gate_row = workload
    return {"rows": rows, "gate": gate, "gate_row": gate_row}


def _report(sweep: Dict) -> None:
    heading("Index persistence — cold OIPCREATE vs snapshot load")
    table(
        ["workload", "n", "snapshot", "cold ms", "load ms", "speedup"],
        [
            [
                row["workload"],
                f"{row['cardinality']:,}",
                f"{row['snapshot_bytes'] / 1024:.0f} KiB",
                f"{row['cold_ms']:.2f}",
                f"{row['load_ms']:.2f}",
                f"{row['speedup']:.1f}x",
            ]
            for row in sweep["rows"]
        ],
    )
    emit(
        "(A load replays the persisted directory and restores whole "
        "blocks; a cold build re-sorts and re-assigns every tuple.  "
        "The join after either is bit-identical.  Gate: >= "
        f"{SPEEDUP_BUDGET:.0f}x on the largest long-lived row.)"
    )


def _write_results(sweep: Dict) -> None:
    document = {
        "benchmark": "index_persistence",
        "budget_speedup": SPEEDUP_BUDGET,
        "gate_row": sweep["gate_row"],
        "gate_speedup": sweep["gate"],
        "rows": sweep["rows"],
    }
    with open(RESULTS_FILE, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    emit(f"(results written to {RESULTS_FILE})")


def _enforce_budget_with_retries(
    repeats: int, floor: float, attempts: int = 3
) -> float:
    """Assert the speedup floor, re-measuring on a miss — the measured
    margin is several multiples of the floor, so a miss is
    overwhelmingly a scheduler artefact; a genuine regression stays
    below the floor in every attempt and still fails."""
    best = 0.0
    for attempt in range(attempts):
        sweep = run_persistence_sweep(repeats=repeats, smoke=True)
        best = max(best, sweep["gate"])
        if best >= floor:
            return best
        emit(
            f"(speedup {sweep['gate']:.2f}x below the {floor:.1f}x floor "
            f"on attempt {attempt + 1}/{attempts}; re-measuring)"
        )
    assert best >= floor, (
        f"snapshot load speedup {best:.2f}x is below the "
        f"{floor:.1f}x floor over cold OIPCREATE"
    )
    return best


def test_index_persistence(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_persistence_sweep(repeats=3, smoke=True),
        rounds=1,
        iterations=1,
    )
    _report(sweep)
    # Lenient CI floor; the documented gate is 5x and --smoke enforces
    # it with best-of-attempts retries.
    if sweep["gate"] < 3.0:
        _enforce_budget_with_retries(repeats=3, floor=3.0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Index persistence benchmark (cold build vs load)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "smallest long-lived workload only, and assert the "
            f">= {SPEEDUP_BUDGET:.0f}x gate"
        ),
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="skip writing BENCH_persistence.json",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (5 if args.smoke else 3)
    sweep = run_persistence_sweep(repeats=repeats, smoke=args.smoke)
    _report(sweep)
    if args.smoke:
        if sweep["gate"] < SPEEDUP_BUDGET:
            sweep["gate"] = _enforce_budget_with_retries(
                repeats, floor=SPEEDUP_BUDGET
            )
        emit(
            f"snapshot load {sweep['gate']:.1f}x over cold build — "
            f"meets the {SPEEDUP_BUDGET:.0f}x floor"
        )
    elif not args.no_write:
        _write_results(sweep)
    return 0


if __name__ == "__main__":
    sys.exit(main())
