"""What full telemetry costs on the serving hot path.

ISSUE 9's budget: wire-propagated tracing, the structured query log,
and latency-histogram accounting together may tax a served query by at
most **3%**.  This benchmark measures exactly that delta:

* **Baseline** — a :class:`~repro.service.JoinService` with telemetry
  off (the null tracer and :data:`~repro.obs.log.NULL_QUERY_LOG`:
  one truthiness check per call site).
* **Instrumented** — the same snapshot served with ``tracing=True``
  (span tree per query into the :class:`~repro.obs.trace.TraceBuffer`)
  plus a :class:`~repro.obs.log.QueryLog` appending NDJSON to a real
  temp file with a slow-query threshold armed.

Both services run over one snapshot and the measurement interleaves
min-of-repeats batches (baseline, instrumented, baseline, ...) so CPU
frequency drift hits both sides equally.  Gate: **instrumented <=
1.03x baseline** at the gate cardinality.  The standalone run writes
``BENCH_telemetry.json`` at the repository root; ``--smoke`` (the CI
``telemetry-smoke`` job) asserts the gate with best-of-attempts
retries.

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.core.interval import Interval
from repro.obs.log import QueryLog
from repro.service import JoinService
from repro.storage import save_index
from repro.workloads import long_lived_mixture

CARDINALITIES = (400, 1200, 3600)
GATE_CARDINALITY = 3600
OVERHEAD_CEILING = 1.03
BATCHES = 5
QUERIES_PER_BATCH = 4


def _best_batch(fn, batches: int, queries: int) -> float:
    """Best per-query latency (ms) over *batches* batches of *queries*."""
    best = float("inf")
    for _ in range(batches):
        started = time.perf_counter()
        for _ in range(queries):
            fn()
        best = min(best, (time.perf_counter() - started) / queries)
    return best * 1e3


def bench_cardinality(cardinality: int) -> Dict[str, float]:
    outer = long_lived_mixture(
        cardinality, 0.3, Interval(1, 20_000), seed=51, name="outer"
    )
    inner = long_lived_mixture(
        cardinality, 0.3, Interval(1, 20_000), seed=52, name="inner"
    )
    tmpdir = tempfile.mkdtemp(prefix="bench_telemetry_")
    path = os.path.join(tmpdir, "bench.oip")
    save_index(path, outer, inner)

    log_path = os.path.join(tmpdir, "queries.ndjson")
    query_log = QueryLog(path=log_path, slow_query_ms=10_000.0)
    baseline = JoinService(path)
    instrumented = JoinService(
        path, tracing=True, query_log=query_log
    )
    baseline.start()
    instrumented.start()
    # Warm decode caches on both services before timing.
    baseline.query("join")
    instrumented.query("join")

    # Interleave the measurement batches so machine drift is shared.
    baseline_ms = float("inf")
    telemetry_ms = float("inf")
    for _ in range(BATCHES):
        baseline_ms = min(
            baseline_ms,
            _best_batch(
                lambda: baseline.query("join"), 1, QUERIES_PER_BATCH
            ),
        )
        telemetry_ms = min(
            telemetry_ms,
            _best_batch(
                lambda: instrumented.query("join"), 1, QUERIES_PER_BATCH
            ),
        )
    log_lines = query_log.emitted
    traces = len(instrumented.traces)
    baseline.drain(timeout_s=10.0)
    instrumented.drain(timeout_s=10.0)
    query_log.close()

    return {
        "cardinality": cardinality,
        "baseline_ms": baseline_ms,
        "telemetry_ms": telemetry_ms,
        "overhead": telemetry_ms / baseline_ms,
        "log_lines": log_lines,
        "traces_captured": traces,
    }


def run(smoke: bool) -> int:
    heading("Telemetry overhead: traced + logged service vs telemetry off")
    gate = scaled(GATE_CARDINALITY)
    cardinalities = (
        (gate,) if smoke else tuple(scaled(c) for c in CARDINALITIES)
    )
    rows: List[Dict[str, float]] = []
    for cardinality in cardinalities:
        attempts = 3 if smoke else 1
        row = None
        for attempt in range(attempts):
            row = bench_cardinality(cardinality)
            if row["overhead"] <= OVERHEAD_CEILING:
                break
            if smoke and attempt < attempts - 1:
                emit(
                    f"  retrying n={cardinality}: overhead "
                    f"{row['overhead']:.3f}x"
                )
        rows.append(row)
    table(
        [
            "n", "telemetry off", "telemetry on", "overhead",
            "log lines", "traces",
        ],
        [
            [
                row["cardinality"],
                f"{row['baseline_ms']:.2f} ms",
                f"{row['telemetry_ms']:.2f} ms",
                f"{row['overhead']:.3f}x",
                int(row["log_lines"]),
                int(row["traces_captured"]),
            ]
            for row in rows
        ],
    )
    gate_row = next(
        (row for row in rows if row["cardinality"] == gate), rows[-1]
    )
    emit()
    emit(
        f"gate @ n={gate_row['cardinality']}: overhead "
        f"{gate_row['overhead']:.3f}x (ceiling {OVERHEAD_CEILING}x)"
    )
    if not smoke:
        out = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_telemetry.json",
        )
        with open(out, "w") as handle:
            json.dump(
                {
                    "benchmark": "telemetry_overhead",
                    "overhead_ceiling": OVERHEAD_CEILING,
                    "gate_cardinality": gate_row["cardinality"],
                    "gate_overhead": gate_row["overhead"],
                    "rows": rows,
                },
                handle,
                indent=1,
            )
            handle.write("\n")
        emit(f"wrote {out}")
    if gate_row["overhead"] > OVERHEAD_CEILING and smoke:
        emit(
            f"SMOKE GATE FAILED: overhead {gate_row['overhead']:.3f}x > "
            f"{OVERHEAD_CEILING}x"
        )
        return 1
    return 0


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="gate cardinality only; exit 1 if the gate fails",
    )
    args = parser.parse_args(argv or sys.argv[1:])
    return run(smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
