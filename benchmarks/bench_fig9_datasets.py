"""Table 2 and Figure 9: properties and distributions of the real-world
datasets (via their synthetic stand-ins; see DESIGN.md section 3 for the
substitution).

Emits the Table 2 analogue — paper value next to stand-in value — and
ASCII renderings of the Figure 9 curves: tuples per time point (left
column) and the log-scale duration histogram (right column).
"""

import math

import pytest

from repro.workloads import (
    DATASET_GENERATORS,
    PAPER_DATASET_PROPERTIES,
    dataset_properties,
    duration_histogram,
    temporal_distribution,
)

from .common import emit, heading, table


def _sparkline(values, width=50, log_scale=False):
    blocks = " .:-=+*#%@"
    if log_scale:
        values = [math.log10(v) - math.log10(0.001) if v > 0 else 0 for v in values]
    top = max(values) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
        for v in values[:width]
    )


def test_table2_properties(benchmark):
    def build():
        rows = []
        for name, generator in DATASET_GENERATORS.items():
            paper = PAPER_DATASET_PROPERTIES[name]
            measured = dataset_properties(generator(seed=0))
            rows.append(
                (
                    name,
                    f"{measured.cardinality:,} ({paper.cardinality:,})",
                    f"{measured.time_range:,} ({paper.time_range:,})",
                    f"{measured.min_duration:,} ({paper.min_duration:,})",
                    f"{measured.max_duration:,} ({paper.max_duration:,})",
                    f"{measured.avg_duration:,.0f} ({paper.avg_duration:,})",
                    f"{measured.distinct_points:,} ({paper.distinct_points:,})",
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    heading(
        "Table 2 — real-world dataset properties: stand-in (paper). "
        "Cardinalities are intentionally scaled down."
    )
    table(
        [
            "dataset",
            "cardinality",
            "time range",
            "min dur",
            "max dur",
            "avg dur",
            "distinct pts",
        ],
        rows,
    )


@pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
def test_fig9_distributions(benchmark, name):
    relation = benchmark.pedantic(
        lambda: DATASET_GENERATORS[name](seed=0), rounds=1, iterations=1
    )
    density = temporal_distribution(relation, 50)
    histogram = duration_histogram(relation, 50)
    heading(f"Figure 9 — {name} stand-in distributions")
    emit(f"tuples per time point (max {max(density):.1f}%):")
    emit("  |" + _sparkline(density) + "|")
    emit("duration histogram, log scale (first bin "
         f"{histogram[0]:.1f}% of tuples):")
    emit("  |" + _sparkline(histogram, log_scale=True) + "|")
