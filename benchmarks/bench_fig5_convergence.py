"""Figure 5 (and Example 8): convergence of the Equation (2) fixed-point
iteration for k.

Purely analytical, so it runs at the paper's full scale: (a) n_r = 10M,
n_s = 100M and (b) n_r = 100M, n_s = 1G.  The emitted table replays the
Example 8 iteration rows; the paper's converged value for (a) is
k = 16,521.
"""

import pytest

from repro.core.granules import JoinCostModel, derive_k
from repro.storage import CostWeights

from .common import emit, heading, table

SETTINGS = {
    "fig5a (nr=10M, ns=100M)": JoinCostModel(
        outer_cardinality=10_000_000,
        inner_cardinality=100_000_000,
        outer_duration_fraction=0.0001,
        inner_duration_fraction=0.0005,
        tuples_per_block=14,
        weights=CostWeights(cpu=0.5, io=10.0),
    ),
    "fig5b (nr=100M, ns=1G)": JoinCostModel(
        outer_cardinality=100_000_000,
        inner_cardinality=1_000_000_000,
        outer_duration_fraction=0.0001,
        inner_duration_fraction=0.0005,
        tuples_per_block=14,
        weights=CostWeights(cpu=0.5, io=10.0),
    ),
}


@pytest.mark.parametrize("label", list(SETTINGS), ids=["fig5a", "fig5b"])
def test_fig5_convergence(benchmark, label):
    model = SETTINGS[label]
    derivation = benchmark.pedantic(
        lambda: derive_k(model), rounds=3, iterations=1
    )
    heading(f"Figure 5 — convergence of k: {label}")
    table(
        ["n", "k_n", "|p_r|_n", "tau_n"],
        [
            (
                index,
                f"{step.k:,}",
                f"{step.outer_partitions:,}",
                f"{step.tau:.5f}",
            )
            for index, step in enumerate(derivation.trace)
        ],
    )
    emit(
        f"converged: {derivation.converged} after {derivation.steps} "
        f"steps; final k = {derivation.k:,}"
        + (
            "  (paper Example 8: k = 16,521)"
            if label.startswith("fig5a")
            else ""
        )
    )
    assert derivation.converged
    if label.startswith("fig5a"):
        assert abs(derivation.k - 16_521) / 16_521 < 0.01
