"""Table 1: runtime growth of the OIPJOIN and the sort-merge join when
doubling both inputs, at the lower bound (maximal tightening, short
tuples) and upper bound (no tightening, duration-complete-like data).

The paper reports growth factors of x2.61 (OIP LB), x3.28 (OIP UB),
x2.06 (SMJ LB) and x4.00 (SMJ UB) against predicted 2.52 / 3.03 / 2 /
4.  We reproduce the workload regimes at reduced scale and print
measured growth next to the Section 6.3 predictions.
"""

import functools

import pytest

from repro.analysis.complexity import (
    OIP_LOWER,
    OIP_UPPER,
    SMJ_LOWER,
    SMJ_UPPER,
    growth_factor,
)
from repro.baselines.sort_merge import SortMergeJoin
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.workloads import uniform_relation

from .common import emit, heading, scaled, table, timed_join

BASE_N = 2_000
BASE_N_UB = 700
TIME_RANGE = Interval(1, 2**22)


def _workload(n: int, regime: str, seed: int):
    if regime == "lb":
        # Maximal tightening: tiny durations concentrate tuples on the
        # diagonal partitions (tau ~ 1/k).
        fraction = 1e-6
    else:
        # No tightening: durations up to the whole range use every
        # partition length (tau ~ 1).
        fraction = 1.0
    return (
        uniform_relation(n, TIME_RANGE, fraction, seed=seed, name="r"),
        uniform_relation(n, TIME_RANGE, fraction, seed=seed + 1, name="s"),
    )


@functools.lru_cache(maxsize=None)
def _measure(algorithm_factory, regime: str):
    base = BASE_N if regime == "lb" else BASE_N_UB
    small = _workload(scaled(base), regime, seed=1)
    large = _workload(scaled(base) * 2, regime, seed=3)
    _, t_small = timed_join(algorithm_factory(), *small)
    _, t_large = timed_join(algorithm_factory(), *large)
    return t_small, t_large


@pytest.mark.parametrize(
    "label,factory,regime,bound",
    [
        ("OIPJOIN LB (tau~1/k)", OIPJoin, "lb", OIP_LOWER),
        ("OIPJOIN UB (tau=1)", OIPJoin, "ub", OIP_UPPER),
        ("SMJ LB", SortMergeJoin, "lb", SMJ_LOWER),
        ("SMJ UB", SortMergeJoin, "ub", SMJ_UPPER),
    ],
    ids=["oip-lb", "oip-ub", "smj-lb", "smj-ub"],
)
def test_table1_growth(benchmark, label, factory, regime, bound):
    base = BASE_N if regime == "lb" else BASE_N_UB
    small = _workload(scaled(base), regime, seed=1)
    benchmark.pedantic(
        lambda: factory().join(*small), rounds=1, iterations=1
    )
    t_small, t_large = _measure(factory, regime)
    measured = t_large / t_small if t_small > 0 else float("nan")
    predicted = growth_factor(bound)
    emit(
        f"[table 1] {label:<22} n={scaled(base):,} -> "
        f"{2 * scaled(base):,}: runtime x{measured:.2f} "
        f"(paper prediction x{predicted:.2f})"
    )


def test_table1_summary(benchmark):
    """Print the full Table 1 analogue in one place."""

    def build():
        rows = []
        for label, factory, regime, bound in [
            ("OIPJOIN: LB (tau~1/k)", OIPJoin, "lb", OIP_LOWER),
            ("OIPJOIN: UB (tau=1)", OIPJoin, "ub", OIP_UPPER),
            ("SMJ: LB", SortMergeJoin, "lb", SMJ_LOWER),
            ("SMJ: UB", SortMergeJoin, "ub", SMJ_UPPER),
        ]:
            t_small, t_large = _measure(factory, regime)
            rows.append(
                (
                    label,
                    f"{t_small * 1e3:.1f} ms",
                    f"{t_large * 1e3:.1f} ms",
                    f"x{t_large / t_small:.2f}",
                    f"x{growth_factor(bound):.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    heading(
        "Table 1 — runtime and factor of runtime increase "
        f"(LB n = {scaled(BASE_N):,}, UB n = {scaled(BASE_N_UB):,}, "
        "each doubled; paper: 5M vs 10M)"
    )
    table(
        ["algorithm / bound", "n", "2n", "measured", "predicted"],
        rows,
    )
