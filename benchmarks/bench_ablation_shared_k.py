"""Ablation: shared vs per-side granule counts (Section 6.2).

The paper argues that both cost components — the ``O(k_r^2 k_s^2)``
partition accesses and the ``O(n_s n_r/k_r + n_r n_s/k_s)`` false hits —
"reach their minimum when ``k_r = k_s``", which is why the OIPJOIN uses
one shared ``k``.  This bench sweeps a grid of ``(k_r, k_s)`` pairs with
the product ``k_r * k_s`` held roughly constant and checks that the
balanced pair wins on the combined overhead (false hits + partition
accesses priced with the paper's weights).
"""

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage.metrics import CostWeights
from repro.workloads import uniform_relation

from .common import emit, heading, scaled, table, timed_join

N = 3_000
TIME_RANGE = Interval(1, 2**20)

#: (k_r, k_s) pairs with k_r * k_s = 4096: from maximally skewed to balanced.
PAIRS = [(4, 1024), (16, 256), (64, 64), (256, 16), (1024, 4)]


def test_ablation_shared_k(benchmark):
    outer = uniform_relation(
        scaled(N) // 3, TIME_RANGE, 0.005, seed=1, name="r"
    )
    inner = uniform_relation(scaled(N), TIME_RANGE, 0.005, seed=2, name="s")
    weights = CostWeights.main_memory()

    def run():
        rows = []
        for k_outer, k_inner in PAIRS:
            join = OIPJoin(k_outer=k_outer, k_inner=k_inner)
            result, elapsed = timed_join(join, outer, inner)
            counters = result.counters
            overhead = (
                counters.partition_accesses * (weights.io + 2 * weights.cpu)
                + counters.false_hits * 4 * weights.cpu
            )
            rows.append(
                (
                    f"({k_outer}, {k_inner})",
                    f"{counters.false_hits:,}",
                    f"{counters.partition_accesses:,}",
                    f"{overhead:,.0f}",
                    f"{elapsed * 1e3:.1f} ms",
                    len(result.pairs),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading(
        "Ablation (shared k) — (k_r, k_s) grid at constant k_r*k_s "
        f"(n_r = {scaled(N) // 3:,}, n_s = {scaled(N):,})"
    )
    table(
        [
            "(k_r, k_s)",
            "false hits",
            "partition accesses",
            "weighted overhead",
            "runtime",
            "results",
        ],
        rows,
    )
    results = {row[0]: row for row in rows}
    assert len({row[5] for row in rows}) == 1, "all pairs must agree"
    overheads = {
        row[0]: float(row[3].replace(",", "")) for row in rows
    }
    balanced = overheads["(64, 64)"]
    emit(
        "balanced (64, 64) overhead vs most skewed: "
        f"x{min(overheads['(4, 1024)'], overheads['(1024, 4)']) / balanced:.2f} "
        "more expensive when skewed"
    )
    # Section 6.2: the balanced split minimises the overhead.
    assert balanced == min(overheads.values())
