"""Figure 7: the Equation (1) cost function against the actual runtime
when sweeping k with everything else fixed.

The paper's headline is that both curves share the same shape and the
same minimiser (k = 10,130 at its scale).  At reduced scale we sweep k
over a log-ish grid, print modelled cost and measured runtime side by
side, and check that the runtime at the model's minimiser is close to
the best runtime seen anywhere in the sweep.
"""

from repro.core.granules import cost_model_for, derive_k
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.workloads import uniform_relation

from .common import emit, heading, scaled, table, timed_join

K_GRID = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
REDUCED_N = 3_000
TIME_RANGE = Interval(1, 2**20)


def test_fig7_cost_function_vs_runtime(benchmark):
    outer = uniform_relation(
        scaled(REDUCED_N) // 10, TIME_RANGE, 0.001, seed=1, name="r"
    )
    inner = uniform_relation(
        scaled(REDUCED_N), TIME_RANGE, 0.001, seed=2, name="s"
    )
    model = cost_model_for(outer, inner)

    def sweep():
        rows = []
        for k in K_GRID:
            result, elapsed = timed_join(OIPJoin(k=k), outer, inner)
            rows.append(
                (
                    k,
                    model.overhead_cost(k),
                    elapsed,
                    result.counters.false_hits,
                    result.counters.partition_accesses,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        "Figure 7 — Equation (1) cost function vs measured runtime "
        f"(n_r={scaled(REDUCED_N) // 10:,}, n_s={scaled(REDUCED_N):,})"
    )
    table(
        ["k", "modelled cost", "runtime ms", "false hits", "part. accesses"],
        [
            (
                k,
                f"{cost:,.0f}",
                f"{elapsed * 1e3:.1f}",
                f"{false_hits:,}",
                f"{accesses:,}",
            )
            for k, cost, elapsed, false_hits, accesses in rows
        ],
    )
    derived = derive_k(model).k
    model_min = min(rows, key=lambda row: row[1])[0]
    runtime_min = min(rows, key=lambda row: row[2])[0]
    emit(
        f"model minimiser k = {model_min}, runtime minimiser k = "
        f"{runtime_min}, self-adjusted k = {derived}"
    )
    # Shape check: false hits decrease in k, partition accesses increase.
    false_hit_series = [row[3] for row in rows]
    access_series = [row[4] for row in rows]
    assert all(
        a >= b for a, b in zip(false_hit_series, false_hit_series[1:])
    )
    assert all(a <= b for a, b in zip(access_series, access_series[1:]))
