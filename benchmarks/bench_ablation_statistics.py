"""Ablation: distribution-aware k tightening (Section 8 future work).

On skewed durations — a handful of very long outliers over a mass of
short tuples, the profile of every real dataset in Table 2 — Lemma 3's
maximum-duration bound wildly overestimates the used partitions, which
drags the derived k down.  The histogram statistics of
``repro.core.statistics`` estimate used partitions per span class
instead.

The bench compares, on a skewed workload: the partition estimates
against the materialised truth, the derived k of both optimisers, and
the resulting join false hits.
"""

from repro.core.granules import cost_model_for, derive_k
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration, used_partition_bound
from repro.core.statistics import DurationHistogram, histogram_cost_model
from repro.workloads import long_lived_mixture

from .common import emit, heading, scaled, table, timed_join

N = 3_000
TIME_RANGE = Interval(1, 2**18)


def _skewed(cardinality, seed):
    return long_lived_mixture(
        cardinality,
        long_fraction=0.01,
        time_range=TIME_RANGE,
        long_max_fraction=0.5,
        seed=seed,
    )


def test_ablation_partition_estimates(benchmark):
    relation = _skewed(scaled(N), seed=1)

    def build():
        histogram = DurationHistogram.from_relation(relation)
        rows = []
        for k in (16, 64, 256):
            config = OIPConfiguration.for_relation(relation, k)
            actual = oip_create(relation, config).partition_count
            lemma3 = used_partition_bound(
                k, relation.duration_fraction, relation.cardinality
            )
            estimate = histogram.expected_used_partitions(k, config.d)
            rows.append((k, f"{lemma3:,}", f"{estimate:,}", f"{actual:,}"))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    heading(
        "Ablation (statistics) — used-partition estimates on skewed "
        f"durations (n = {scaled(N):,}, 1% of tuples up to 50% of range)"
    )
    table(
        ["k", "Lemma 3 (max dur)", "histogram estimate", "materialised"],
        rows,
    )


def test_ablation_histogram_driven_k(benchmark):
    outer = _skewed(scaled(N) // 5, seed=2)
    inner = _skewed(scaled(N), seed=3)

    def run():
        k_lemma3 = derive_k(cost_model_for(outer, inner)).k
        k_histogram = derive_k(histogram_cost_model(outer, inner)).k
        rows = []
        for label, join in (
            (f"Lemma-3 stats (k={k_lemma3})", OIPJoin(k=k_lemma3)),
            (
                f"histogram stats (k={k_histogram})",
                OIPJoin(k=k_histogram),
            ),
        ):
            result, elapsed = timed_join(join, outer, inner)
            rows.append(
                (
                    label,
                    f"{result.counters.false_hits:,}",
                    f"{result.counters.partition_accesses:,}",
                    f"{elapsed * 1e3:.1f} ms",
                )
            )
        return rows, k_lemma3, k_histogram

    rows, k_lemma3, k_histogram = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    heading(
        "Ablation (statistics) — k derived from Lemma 3 vs duration "
        "histograms, skewed workload"
    )
    table(["optimiser", "false hits", "partition accesses", "runtime"], rows)
    emit(
        f"histogram statistics afford k = {k_histogram} vs {k_lemma3} "
        "(tighter tau estimate on skew)"
    )
    assert k_histogram >= k_lemma3
