"""Ablation: Algorithm 1's sort and sequential storage.

OIPCREATE sorts by partition index before inserting, which (a) makes
head insertion O(1) and (b) lays each partition out in consecutive
blocks, so scanning partitions during the join is sequential IO.  The
paper attributes the OIPJOIN's resilience on the seek-bound 4-GB server
(Figure 11(d)) to exactly this.

The bench measures the sequential/random read split of an OIPJOIN run
against a *fragmented* variant in which the inner partitions' blocks are
scattered over the address space (what unsorted insertion would
produce), and prices both with the disk profile's seek factor.
"""

import random

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage import DeviceProfile
from repro.workloads import uniform_relation

from .common import heading, scaled, table, timed_join

N = 4_000
TIME_RANGE = Interval(1, 2**20)


class _FragmentedOIPJoin(OIPJoin):
    """OIPJoin whose storage layout is scrambled after the build,
    simulating insertion without Algorithm 1's sort."""

    name = "oip-fragmented"

    def _execute(self, outer, inner, counters):
        from repro.core.lazy_list import oip_create
        from repro.core.oip import OIPConfiguration
        from repro.storage.manager import StorageManager

        derivation = self._derive_k(outer, inner)
        k = self.fixed_k if derivation is None else derivation.k
        k = max(1, min(k, outer.time_range_duration, inner.time_range_duration))
        config_r = OIPConfiguration.for_relation(outer, k)
        config_s = OIPConfiguration.for_relation(inner, k)
        storage = StorageManager(
            device=self.device,
            counters=counters,
            buffer_pool=self.buffer_pool,
        )
        outer_list = oip_create(outer, config_r, storage)
        inner_list = oip_create(inner, config_s, storage)
        self._scramble(outer_list, inner_list)
        return self._join_lists(
            outer_list, inner_list, config_r, config_s, storage, counters, k
        )

    @staticmethod
    def _scramble(*lists) -> None:
        """Assign random block ids — the layout of an unsorted build."""
        rng = random.Random(0)
        blocks = [
            block
            for partition_list in lists
            for node in partition_list.iter_nodes()
            for block in node.run.blocks
        ]
        new_ids = list(range(len(blocks)))
        rng.shuffle(new_ids)
        for block, block_id in zip(blocks, new_ids):
            block.block_id = block_id

    def _join_lists(
        self, outer_list, inner_list, config_r, config_s, storage, counters, k
    ):
        from repro.core.base import JoinResult

        pairs = []
        d_r, o_r = config_r.d, config_r.o
        d_s, o_s = config_s.d, config_s.o
        for outer_node in outer_list.iter_nodes():
            outer_tuples = list(storage.read_run(outer_node.run))
            query_start = o_r + outer_node.i * d_r
            query_end = o_r + (outer_node.j + 1) * d_r - 1
            counters.charge_cpu(2)
            if query_end < o_s or query_start >= o_s + k * d_s:
                continue
            s = (query_start - o_s) // d_s
            e = (query_end - o_s) // d_s
            node = inner_list.head
            while node is not None:
                counters.charge_cpu()
                if node.j < s:
                    break
                branch = node
                while branch is not None:
                    counters.charge_cpu()
                    if branch.i > e:
                        break
                    counters.charge_partition_access()
                    for inner_tuple in storage.read_run(branch.run):
                        for outer_tuple in outer_tuples:
                            self._match(
                                outer_tuple, inner_tuple, counters, pairs
                            )
                    branch = branch.right
                node = node.down
        return JoinResult(
            algorithm=self.name, pairs=pairs, counters=counters, details={"k": k}
        )


def test_ablation_sorted_layout(benchmark):
    outer = uniform_relation(
        scaled(N) // 10, TIME_RANGE, 0.001, seed=1, name="r"
    )
    inner = uniform_relation(scaled(N), TIME_RANGE, 0.001, seed=2, name="s")
    device = DeviceProfile.disk()

    def run():
        rows = []
        for label, join in (
            ("sorted (Algorithm 1)", OIPJoin(device=device)),
            ("fragmented layout", _FragmentedOIPJoin(device=device)),
        ):
            result, elapsed = timed_join(join, outer, inner)
            counters = result.counters
            rows.append(
                (
                    label,
                    f"{counters.block_reads:,}",
                    f"{counters.sequential_reads:,}",
                    f"{counters.random_reads:,}",
                    f"{device.io_time(counters.sequential_reads, counters.random_reads):,.0f}",
                    len(result.pairs),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading(
        "Ablation (Algorithm 1 sort) — sequential vs fragmented layout "
        f"on the disk profile (seek factor {DeviceProfile.disk().seek_factor})"
    )
    table(
        [
            "layout",
            "device reads",
            "sequential",
            "random",
            "modelled IO ns",
            "results",
        ],
        rows,
    )
    assert rows[0][5] == rows[1][5], "results must match"
    sorted_random = int(rows[0][3].replace(",", ""))
    fragmented_random = int(rows[1][3].replace(",", ""))
    assert fragmented_random > sorted_random
