"""Parallel OIPJOIN scaling: partition-pair scheduling at 1/2/4/8 workers.

Runs the long-lived mixture workload (the regime where the OIPJOIN's
probe phase dominates) through the sequential Algorithm 2 loop and
through the :mod:`repro.engine.parallel` scheduler on both backends,
reporting wall-clock speedup over the sequential baseline.  Every
parallel run is verified to return the *identical* pair list and cost
counters as the sequential join — scaling must never change semantics.

Besides the pytest-benchmark entry point this module is a standalone
script (used by CI as a scheduling-regression smoke check):

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \\
        --cardinality 2000 --repeats 5
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

if __package__:  # imported by pytest as part of the benchmarks package
    from .common import emit, heading, scaled, table
else:  # executed as a plain script: python benchmarks/bench_parallel_scaling.py
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage.faults import FaultPolicy, fault_profile
from repro.workloads import long_lived_mixture

N = 1_500
SMOKE_N = 250
TIME_RANGE = Interval(1, 2**20)
LONG_SHARE = 0.5
WORKER_COUNTS = (1, 2, 4, 8)
SMOKE_WORKER_COUNTS = (1, 2)
BACKENDS = ("thread", "process")


def _relations(cardinality: int):
    outer = long_lived_mixture(
        cardinality, LONG_SHARE, TIME_RANGE, seed=1, name="r"
    )
    inner = long_lived_mixture(
        cardinality, LONG_SHARE, TIME_RANGE, seed=2, name="s"
    )
    return outer, inner


def _best_time(join: OIPJoin, outer, inner, repeats: int):
    """Minimum wall-clock over *repeats* runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = join.join(outer, inner)
        best = min(best, time.perf_counter() - started)
    return result, best


def run_scaling_sweep(
    cardinality: int,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    backends: Sequence[str] = BACKENDS,
    repeats: int = 3,
    fault_policy: Optional[FaultPolicy] = None,
) -> Dict:
    """Measure sequential vs parallel OIPJOIN and verify equivalence.

    With *fault_policy* the whole sweep runs under that seeded fault
    schedule (the chaos smoke mode): the sequential reference and every
    parallel run observe the identical faults, so the bit-identical
    verification still applies — now covering the retry machinery too.

    Returns ``{"rows": table rows, "mismatches": [...], "speedups":
    {(backend, workers): float}}``.
    """
    outer, inner = _relations(cardinality)
    sequential, seq_time = _best_time(
        OIPJoin(fault_policy=fault_policy), outer, inner, repeats
    )

    rows: List[List[object]] = [
        [
            "sequential",
            "-",
            f"{seq_time * 1e3:.1f}",
            "1.00x",
            f"{sequential.cardinality:,}",
            "ref",
        ]
    ]
    mismatches: List[str] = []
    speedups: Dict[Tuple[str, int], float] = {}
    for backend in backends:
        for workers in worker_counts:
            join = OIPJoin(
                parallelism=workers,
                parallel_backend=backend,
                fault_policy=fault_policy,
            )
            result, par_time = _best_time(join, outer, inner, repeats)
            identical = (
                result.pairs == sequential.pairs
                and result.counters.snapshot()
                == sequential.counters.snapshot()
            )
            if not identical:
                mismatches.append(f"{backend} x{workers}")
            speedup = seq_time / par_time if par_time > 0 else float("inf")
            speedups[(backend, workers)] = speedup
            rows.append(
                [
                    backend,
                    workers,
                    f"{par_time * 1e3:.1f}",
                    f"{speedup:.2f}x",
                    f"{result.cardinality:,}",
                    "ok" if identical else "MISMATCH",
                ]
            )
    return {"rows": rows, "mismatches": mismatches, "speedups": speedups}


def _report(cardinality: int, sweep: Dict) -> None:
    heading(
        "Parallel OIPJOIN scaling — long-lived mixture "
        f"(n = {cardinality:,} per relation, {LONG_SHARE:.0%} long-lived)"
    )
    table(
        ["backend", "workers", "time ms", "speedup", "results", "verify"],
        sweep["rows"],
    )
    emit(
        f"(cores available: {os.cpu_count()}; speedups are wall-clock "
        "vs the sequential Algorithm 2 loop; all runs return identical "
        "pairs and counters)"
    )


def test_parallel_scaling(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_scaling_sweep(scaled(N)), rounds=1, iterations=1
    )
    _report(scaled(N), sweep)
    assert not sweep["mismatches"], sweep["mismatches"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel OIPJOIN scaling benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny input, 1-2 workers, single repeat (CI regression check)",
    )
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts (default: 1,2,4,8)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PROFILE",
        help=(
            "run the sweep under a seeded fault profile (e.g. 'chaos'); "
            "verification then also covers the retry machinery"
        ),
    )
    parser.add_argument("--fault-seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        cardinality = args.cardinality or SMOKE_N
        worker_counts: Sequence[int] = SMOKE_WORKER_COUNTS
        repeats = args.repeats or 1
    else:
        cardinality = args.cardinality or scaled(N)
        worker_counts = WORKER_COUNTS
        repeats = args.repeats or 3
    if args.workers:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )

    policy = (
        fault_profile(args.faults, seed=args.fault_seed)
        if args.faults
        else None
    )
    sweep = run_scaling_sweep(
        cardinality,
        worker_counts=worker_counts,
        repeats=repeats,
        fault_policy=policy,
    )
    _report(cardinality, sweep)
    if policy is not None:
        emit(
            f"(fault profile: {args.faults!r}, seed {args.fault_seed}; "
            "every run observed the identical injected fault schedule)"
        )
    if sweep["mismatches"]:
        emit(f"FAILED: result mismatches in {sweep['mismatches']}")
        return 1
    emit("ok: all parallel runs bit-identical to the sequential join")
    return 0


if __name__ == "__main__":
    sys.exit(main())
