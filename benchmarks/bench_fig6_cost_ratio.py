"""Figure 6: how the derived k adapts to the c_cpu / c_io ratio, and
what that does to the AFR, the block IOs and the runtime.

Panel (a) — derived k — is analytical and runs at paper scale
(n_r = 10M, n_s = 100M, durations up to 0.1% of the range), sweeping
the ratio over [0.001, 100] like the paper's x-axis.

Panels (b)-(d) — AFR, block IOs, runtime — require executing the join,
so they run at reduced scale with the same ratio sweep; the expected
shape is: AFR decreasing in the ratio, IOs increasing, and the runtime
minimised where the weights match the real machine.
"""

import pytest

from repro.core.granules import JoinCostModel, derive_k
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage import CostWeights
from repro.workloads import uniform_relation

from .common import emit, fmt_ms, heading, scaled, table, timed_join

RATIOS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

PAPER_MODEL_ARGS = dict(
    outer_cardinality=10_000_000,
    inner_cardinality=100_000_000,
    outer_duration_fraction=0.001,
    inner_duration_fraction=0.001,
    tuples_per_block=14,
)

REDUCED_N = 3_000
TIME_RANGE = Interval(1, 2**20)


def test_fig6a_derived_k_paper_scale(benchmark):
    def sweep():
        return [
            (
                ratio,
                derive_k(
                    JoinCostModel(
                        weights=CostWeights.from_ratio(ratio),
                        **PAPER_MODEL_ARGS,
                    )
                ).k,
            )
            for ratio in RATIOS
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        "Figure 6(a) — derived k vs c_cpu/c_io (paper scale, analytic)"
    )
    table(
        ["c_cpu/c_io", "derived k", "AFR bound 1/k"],
        [(ratio, f"{k:,}", f"{1 / k:.3e}") for ratio, k in rows],
    )
    ks = [k for _, k in rows]
    assert ks == sorted(ks), "k must increase with the CPU/IO ratio"


@pytest.mark.parametrize("ratio", RATIOS, ids=[str(r) for r in RATIOS])
def test_fig6bcd_measured(benchmark, ratio):
    outer = uniform_relation(
        scaled(REDUCED_N) // 10, TIME_RANGE, 0.001, seed=1, name="r"
    )
    inner = uniform_relation(
        scaled(REDUCED_N), TIME_RANGE, 0.001, seed=2, name="s"
    )
    join = OIPJoin(weights=CostWeights.from_ratio(ratio))
    result, elapsed = benchmark.pedantic(
        lambda: timed_join(join, outer, inner), rounds=1, iterations=1
    )
    emit(
        f"[fig 6b-d] ratio={ratio:<7} k={result.details['k']:>5} "
        f"AFR={result.false_hit_ratio:7.2%} "
        f"IO={result.counters.total_ios:>7,} "
        f"runtime={fmt_ms(elapsed):>8} ms"
    )
