"""Naive vs sweep join kernels on the paper's probe workloads.

The kernel layer (:mod:`repro.core.kernels`) changes *how* partition
pairs are matched, never *what* is charged: both kernels produce
bit-identical pairs and cost counters.  This benchmark documents the
wall-clock consequence on the Figure 8 workload (long-lived mixture)
and the Figure 9 real-world stand-ins, each in two partitioning
regimes:

* ``auto`` — the derived ``k`` of Section 4.2.  OIP partitioning then
  prunes so aggressively that most surviving candidates are results,
  and the kernels are within noise of each other: there is little left
  for the sweep to skip.
* ``coarse`` — ``k`` pinned to 2, the memory-constrained regime (fewer
  partitions, less metadata, many more candidates per partition pair).
  Here the naive kernel compares every candidate in interpreted code
  while the sweep touches only the results, and the gap is large.

The acceptance bar lives in the coarse regime: **sweep >= 1.5x naive**
on the long-lived workload.  The standalone script records the full
sweep in ``BENCH_kernels.json`` at the repository root; ``--smoke``
(the CI ``kernel-smoke`` job) asserts the bar on a small input with
min-of-repeats timing and best-of-attempts retries so scheduler noise
cannot flake it.

    PYTHONPATH=src python benchmarks/bench_kernel_speedup.py
    PYTHONPATH=src python benchmarks/bench_kernel_speedup.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.workloads import DATASET_GENERATORS, long_lived_mixture

N = 1_200  # the Figure 8 scale
SMOKE_N = 400
TIME_RANGE = Interval(1, 2**20)
LONG_SHARE = 0.5
KERNELS = ("naive", "sweep")

#: Partitioning regimes: the derived k, and k pinned coarse.
REGIMES = {"auto": {}, "coarse": {"k_outer": 2, "k_inner": 2}}
COARSE_K = 2

#: The CI gate: sweep over naive on the long-lived coarse row.
SPEEDUP_BUDGET = 1.5

RESULTS_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernels.json",
)


def _workloads(cardinality: int, smoke: bool) -> Dict[str, tuple]:
    workloads = {
        "long-lived": (
            long_lived_mixture(
                cardinality, LONG_SHARE, TIME_RANGE, seed=1, name="r"
            ),
            long_lived_mixture(
                cardinality, LONG_SHARE, TIME_RANGE, seed=2, name="s"
            ),
        )
    }
    if not smoke:
        for name, generator in sorted(DATASET_GENERATORS.items()):
            workloads[name] = (
                generator(cardinality=cardinality, seed=1, name=f"{name}_r"),
                generator(cardinality=cardinality, seed=2, name=f"{name}_s"),
            )
    return workloads


def _one_run(kernel: str, outer, inner, regime_kwargs: Dict) -> float:
    join = OIPJoin(kernel=kernel, **regime_kwargs)
    started = time.perf_counter()
    join.join(outer, inner)
    return time.perf_counter() - started


def _best_times(
    outer, inner, regime_kwargs: Dict, repeats: int
) -> Dict[str, float]:
    """Min-of-repeats per kernel, interleaved.

    Timing the kernels back to back inside a repeat (rather than all
    repeats of one kernel first) lets clock drift and scheduler noise
    hit both equally — the difference between a stable ratio and
    run-to-run jitter at these run lengths.
    """
    for kernel in KERNELS:  # warm-up, untimed
        _one_run(kernel, outer, inner, regime_kwargs)
    best = {kernel: float("inf") for kernel in KERNELS}
    for _ in range(repeats):
        for kernel in KERNELS:
            best[kernel] = min(
                best[kernel], _one_run(kernel, outer, inner, regime_kwargs)
            )
    return best


def run_speedup_sweep(
    cardinality: int, repeats: int = 3, smoke: bool = False
) -> Dict:
    """Time both kernels on every workload x regime.

    Returns ``{"rows": result dicts, "gate": the long-lived coarse
    speedup the CI job asserts on}``.
    """
    rows: List[Dict] = []
    gate: Optional[float] = None
    for workload, (outer, inner) in _workloads(cardinality, smoke).items():
        for regime, regime_kwargs in REGIMES.items():
            times = _best_times(outer, inner, regime_kwargs, repeats)
            speedup = times["naive"] / times["sweep"]
            rows.append(
                {
                    "workload": workload,
                    "cardinality": cardinality,
                    "regime": regime,
                    "k": regime_kwargs.get("k_outer"),
                    "naive_ms": times["naive"] * 1e3,
                    "sweep_ms": times["sweep"] * 1e3,
                    "speedup": speedup,
                }
            )
            if workload == "long-lived" and regime == "coarse":
                gate = speedup
    return {"rows": rows, "gate": gate}


def _report(cardinality: int, sweep: Dict) -> None:
    heading(
        "Join-kernel speedup — naive vs forward-scan sweep "
        f"(n = {cardinality:,} per relation)"
    )
    table(
        ["workload", "regime", "naive ms", "sweep ms", "speedup"],
        [
            [
                row["workload"],
                row["regime"] if row["k"] is None else f"k={row['k']}",
                f"{row['naive_ms']:.1f}",
                f"{row['sweep_ms']:.1f}",
                f"{row['speedup']:.2f}x",
            ]
            for row in sweep["rows"]
        ],
    )
    emit(
        "(Both kernels emit identical pairs and charge identical model "
        "costs.  In the auto regime the derived k leaves few false "
        "candidates, so the kernels tie; with k pinned coarse the sweep "
        f"skips what the naive loop compares one by one.  Gate: >= "
        f"{SPEEDUP_BUDGET:.1f}x on the long-lived coarse row.)"
    )


def _write_results(cardinality: int, sweep: Dict) -> None:
    document = {
        "benchmark": "kernel_speedup",
        "cardinality": cardinality,
        "budget_speedup": SPEEDUP_BUDGET,
        "gate_row": {"workload": "long-lived", "regime": "coarse"},
        "gate_speedup": sweep["gate"],
        "rows": sweep["rows"],
    }
    with open(RESULTS_FILE, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    emit(f"(results written to {RESULTS_FILE})")


def _enforce_budget_with_retries(
    cardinality: int, repeats: int, floor: float, attempts: int = 3
) -> float:
    """Assert the speedup floor, re-measuring on a miss.

    The measured margin is ~2.5x against a 1.5x floor, so a miss is
    overwhelmingly a scheduler artefact; fresh sweeps (up to
    ``attempts`` total) assert on the *best* gate speedup seen.  A
    genuine regression stays below the floor in every attempt and still
    fails.
    """
    best = 0.0
    for attempt in range(attempts):
        sweep = run_speedup_sweep(cardinality, repeats=repeats, smoke=True)
        best = max(best, sweep["gate"])
        if best >= floor:
            return best
        emit(
            f"(speedup {sweep['gate']:.2f}x below the {floor:.1f}x floor "
            f"on attempt {attempt + 1}/{attempts}; re-measuring)"
        )
    assert best >= floor, (
        f"sweep kernel speedup {best:.2f}x is below the "
        f"{floor:.1f}x floor on the long-lived coarse workload"
    )
    return best


def test_kernel_speedup(benchmark):
    cardinality = scaled(SMOKE_N)
    sweep = benchmark.pedantic(
        lambda: run_speedup_sweep(cardinality, repeats=3, smoke=True),
        rounds=1,
        iterations=1,
    )
    _report(cardinality, sweep)
    # Lenient CI floor; the documented gate is 1.5x and --smoke
    # enforces it with best-of-attempts retries.
    if sweep["gate"] < 1.2:
        _enforce_budget_with_retries(cardinality, repeats=3, floor=1.2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Join-kernel speedup benchmark (naive vs sweep)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="long-lived workload only, and assert the >= 1.5x gate",
    )
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="skip writing BENCH_kernels.json",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cardinality = args.cardinality or SMOKE_N
        repeats = args.repeats or 5
    else:
        cardinality = args.cardinality or scaled(N)
        repeats = args.repeats or 3

    sweep = run_speedup_sweep(cardinality, repeats=repeats, smoke=args.smoke)
    _report(cardinality, sweep)
    if args.smoke:
        if sweep["gate"] < SPEEDUP_BUDGET:
            sweep["gate"] = _enforce_budget_with_retries(
                cardinality, repeats, floor=SPEEDUP_BUDGET
            )
        emit(
            f"sweep kernel {sweep['gate']:.2f}x over naive — meets the "
            f"{SPEEDUP_BUDGET:.1f}x floor"
        )
    else:
        _write_results(cardinality, sweep)
    return 0


if __name__ == "__main__":
    sys.exit(main())
