"""Figure 11: disk-resident data — block IOs, AFR and runtime while the
inner cardinality grows, under a large OS cache (the paper's 64-GB
server, panel (c)) and a small one (the 4-GB server, panel (d)).

Setup mirrors the paper: the outer relation is 1% of the inner, tuple
durations up to 0.1% of the time range, c_io 200x c_cpu, 4-KB blocks.
Expected shape: the loose quadtree needs the fewest device reads but
burns CPU on false hits; the OIPJOIN reads mostly sequentially and
degrades least when the cache shrinks; the segment tree is worst on IO
(duplicate fetches).
"""

import pytest

from repro.baselines import ALGORITHMS
from repro.storage import BufferPool, DeviceProfile, UnboundedBufferPool
from repro.workloads import scaling_pair

from .common import heading, run_contenders, scaled, table

CONTENDERS = ("oip", "lqt", "sgt", "smj")
INNER_SIZES = (4_000, 8_000, 16_000)
SMALL_CACHE_BLOCKS = 8

CACHES = {
    "64GB-server (unbounded cache)": UnboundedBufferPool,
    f"4GB-server ({SMALL_CACHE_BLOCKS}-block LRU)": (
        lambda: BufferPool(SMALL_CACHE_BLOCKS)
    ),
}


@pytest.mark.parametrize("cache_label", list(CACHES), ids=["64GB", "4GB"])
def test_fig11_scaling(benchmark, cache_label):
    cache_factory = CACHES[cache_label]

    def sweep():
        rows = []
        for inner_n in INNER_SIZES:
            outer, inner = scaling_pair(
                scaled(inner_n),
                outer_percent=1.0,
                max_duration_fraction=0.001,
                seed=5,
            )
            factories = {
                name: (
                    lambda name=name: ALGORITHMS[name](
                        device=DeviceProfile.disk(),
                        buffer_pool=cache_factory(),
                    )
                )
                for name in CONTENDERS
            }
            results = run_contenders(factories, outer, inner)
            for name in CONTENDERS:
                result, elapsed = results[name]
                counters = result.counters
                rows.append(
                    (
                        f"{scaled(inner_n):,}",
                        name,
                        f"{counters.block_reads:,}",
                        f"{counters.sequential_reads:,}",
                        f"{counters.random_reads:,}",
                        f"{result.false_hit_ratio * 100:.1f}%",
                        f"{elapsed * 1e3:.0f}",
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        f"Figure 11 — disk-resident scaling, {cache_label} "
        "(outer = 1% of inner, durations <= 0.1%, c_io/c_cpu = 200)"
    )
    table(
        [
            "inner n",
            "algo",
            "device reads",
            "sequential",
            "random",
            "AFR",
            "runtime ms",
        ],
        rows,
    )
