"""Extended baseline comparison: all eleven join implementations on one
long-lived-mixture workload.

Beyond the paper's five evaluated algorithms, the library implements the
related-work approaches of Section 2 (grace partition join, R-tree,
size separation spatial join) plus the regular quadtree and the
nested-loop oracle.  This bench lines all of them up so the DESIGN.md
claims about each one's failure mode show up as numbers in one table.
"""

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.workloads import long_lived_mixture

from .common import heading, run_contenders, scaled, table

N = 1_200
TIME_RANGE = Interval(1, 2**20)
CONTENDERS = (
    "oip", "lqt", "qt", "rit", "sgt", "smj", "grace", "rtr", "s3j", "spj", "nlj",
)


def test_extended_baselines(benchmark):
    outer = long_lived_mixture(scaled(N), 0.3, TIME_RANGE, seed=1, name="r")
    inner = long_lived_mixture(scaled(N), 0.3, TIME_RANGE, seed=2, name="s")

    def run():
        results = run_contenders(
            {name: ALGORITHMS[name] for name in CONTENDERS}, outer, inner
        )
        rows = []
        for name in CONTENDERS:
            result, elapsed = results[name]
            counters = result.counters
            rows.append(
                (
                    name,
                    f"{elapsed * 1e3:.0f} ms",
                    f"{counters.false_hits:,}",
                    f"{counters.partition_accesses:,}",
                    f"{counters.total_ios:,}",
                    f"{counters.cpu_comparisons:,}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading(
        "Extended baselines — all eleven algorithms, 30% long-lived mixture "
        f"(n = {scaled(N):,} per relation; identical results verified)"
    )
    table(
        [
            "algo",
            "runtime",
            "false hits",
            "partition/node accesses",
            "block IO",
            "cpu comparisons",
        ],
        rows,
    )
