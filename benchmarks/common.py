"""Shared benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md section 4 for the index).  The joins run at reduced
cardinality — pure Python cannot process the paper's 10M-1.5G tuples —
and the harness therefore reports, next to wall-clock time, the
*model-level* metrics (block IOs, CPU comparisons, false-hit ratios,
partition accesses) whose shape is scale-independent.

Scale can be raised with the ``REPRO_BENCH_SCALE`` environment variable
(a float multiplier on all cardinalities, default 1.0).

Tables are emitted through :func:`emit`, which buffers the lines; the
``benchmarks/conftest.py`` terminal-summary hook prints the buffer after
the run (outside pytest's capture) and mirrors it to
``benchmarks/report.txt``, so ``pytest benchmarks/ --benchmark-only |
tee bench_output.txt`` records the paper-style rows alongside
pytest-benchmark's timing summary.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Sequence

from repro.core.base import JoinResult, OverlapJoinAlgorithm
from repro.core.relation import TemporalRelation

#: Multiplier applied to every benchmark cardinality.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Lines accumulated by :func:`emit`, flushed by the conftest hook.
REPORT_LINES: List[str] = []


def scaled(cardinality: int) -> int:
    """Apply the global scale factor to a cardinality."""
    return max(1, int(cardinality * SCALE))


def emit(line: str = "") -> None:
    """Record *line* for the end-of-run report (pytest captures stdout
    at the file-descriptor level, so tables are buffered and printed by
    the terminal-summary hook in conftest.py)."""
    REPORT_LINES.append(line)
    print(line)


def heading(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Emit an aligned text table."""
    columns = [
        [str(header)] + [str(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    emit(
        " | ".join(
            str(header).rjust(width)
            for header, width in zip(headers, widths)
        )
    )
    emit("-+-".join("-" * width for width in widths))
    for row in rows:
        emit(
            " | ".join(
                str(cell).rjust(width) for cell, width in zip(row, widths)
            )
        )


def timed_join(
    algorithm: OverlapJoinAlgorithm,
    outer: TemporalRelation,
    inner: TemporalRelation,
) -> "tuple[JoinResult, float]":
    """Run one join and return (result, elapsed seconds)."""
    started = time.perf_counter()
    result = algorithm.join(outer, inner)
    return result, time.perf_counter() - started


def run_contenders(
    factories: Dict[str, Callable[[], OverlapJoinAlgorithm]],
    outer: TemporalRelation,
    inner: TemporalRelation,
    verify: bool = True,
) -> Dict[str, "tuple[JoinResult, float]"]:
    """Run several algorithms on one input pair, optionally verifying
    that they all return the same pair set."""
    results: Dict[str, "tuple[JoinResult, float]"] = {}
    reference: List = []
    for name, factory in factories.items():
        result, elapsed = timed_join(factory(), outer, inner)
        if verify:
            keys = result.pair_keys()
            if not reference:
                reference.append(keys)
            elif keys != reference[0]:
                raise AssertionError(
                    f"algorithm {name!r} disagreed with the others"
                )
        results[name] = (result, elapsed)
    return results


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


def fmt_pct(fraction: float) -> str:
    return f"{fraction * 100:.2f}%"


def structural_afr_oip(
    relation: TemporalRelation,
    samples: int = 300,
    k: int = 0,
) -> "tuple[float, int]":
    """Sampled Definition-5 AFR of an OIP partitioning of *relation*:
    average false hits per point query over the relation cardinality.
    ``k = 0`` derives k self-adjustingly.  Returns ``(afr, k)``."""
    import random

    from repro.core.granules import cost_model_for, derive_k
    from repro.core.interval import Interval
    from repro.core.lazy_list import oip_create
    from repro.core.oip import OIPConfiguration

    if k <= 0:
        k = derive_k(cost_model_for(relation, relation)).k
    config = OIPConfiguration.for_relation(relation, k)
    built = oip_create(relation, config)
    rng = random.Random(0)
    span = relation.time_range
    false_hits = 0
    for _ in range(samples):
        x = rng.randint(span.start, span.end)
        s, e = config.query_indices(Interval(x, x))
        for node in built.iter_relevant(s, e):
            for tup in node.run.iter_tuples():
                if not tup.start <= x <= tup.end:
                    false_hits += 1
    return false_hits / samples / relation.cardinality, k


def structural_afr_lqt(
    relation: TemporalRelation, samples: int = 300
) -> float:
    """Sampled Definition-5 AFR of a loose-quadtree partitioning."""
    import random

    from repro.baselines.loose_quadtree import LooseIntervalQuadtree
    from repro.core.interval import Interval
    from repro.storage.manager import StorageManager
    from repro.storage.metrics import CostCounters

    tree = LooseIntervalQuadtree.build(relation, StorageManager())
    rng = random.Random(0)
    span = relation.time_range
    counters = CostCounters()
    false_hits = 0
    for _ in range(samples):
        x = rng.randint(span.start, span.end)
        query = Interval(x, x)
        for node in tree.iter_overlapping(query, counters):
            for tup in node.run.iter_tuples():
                if not tup.start <= x <= tup.end:
                    false_hits += 1
    return false_hits / samples / relation.cardinality
