"""Sweep vs numpy join kernels on the paper's probe workloads.

The numpy kernel (:func:`repro.core.kernels.numpy_matches`) vectorizes
the partition-pair match step — broadcasted endpoint comparisons for
small pairs, ``searchsorted`` range pruning for large ones — while
emitting the identical pairs and charging the identical model costs as
``naive`` and ``sweep``.  This benchmark documents what the
vectorization buys and calibrates the planner threshold
(:data:`repro.core.kernels.AUTO_NUMPY_CANDIDATES`).

Two measurements:

* **kernel-level** — the match step alone, on the exact partition-pair
  set the coarse-``k`` (``k = 2``) Figure 8 workload produces.  Coarse
  partitioning is the memory-constrained regime where partition pairs
  carry hundreds of thousands of candidates, the regime the numpy tier
  exists for.  Decoded runs are reused across repeats the way the
  decoded-run cache reuses them across outer partitions (APA, Lemma 5),
  so numpy's per-run column views amortise exactly as in production.
  The acceptance bar lives here: **numpy >= 2x sweep**.
* **end-to-end** — full ``OIPJoin`` wall clock per kernel in the auto
  and coarse regimes, for context (IO, partitioning and analytic
  charging dominate there, so the end-to-end margin is smaller) and as
  the measured basis of the ``AUTO_NUMPY_CANDIDATES`` threshold: the
  numpy tier must never lose end-to-end where auto selection picks it.

The standalone script records both sweeps in ``BENCH_numpy.json`` at
the repository root; ``--smoke`` (the CI ``kernel-smoke`` numpy leg)
asserts the kernel-level gate on a small input with min-of-repeats
timing and best-of-attempts retries so scheduler noise cannot flake it.
Without numpy installed the script reports the fallback and exits
cleanly (the kernel tier itself degrades to ``sweep`` the same way).

    PYTHONPATH=src python benchmarks/bench_numpy_kernel.py
    PYTHONPATH=src python benchmarks/bench_numpy_kernel.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.core import kernels
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.kernels import DecodedRun, KERNEL_FUNCS, numpy_available
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration
from repro.storage.manager import StorageManager
from repro.workloads import long_lived_mixture

N = 1_200  # the Figure 8 scale
SMOKE_N = 400
TIME_RANGE = Interval(1, 2**20)
LONG_SHARE = 0.5
COARSE_K = 2
KERNELS = ("naive", "sweep", "numpy")
REGIMES = {"auto": {}, "coarse": {"k_outer": COARSE_K, "k_inner": COARSE_K}}

#: The CI gate: numpy over sweep, kernel-level, on the coarse-k pairs.
SPEEDUP_BUDGET = 2.0

RESULTS_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_numpy.json",
)


def _figure8_pair(cardinality: int):
    return (
        long_lived_mixture(
            cardinality, LONG_SHARE, TIME_RANGE, seed=1, name="r"
        ),
        long_lived_mixture(
            cardinality, LONG_SHARE, TIME_RANGE, seed=2, name="s"
        ),
    )


def _partition_pairs(
    outer, inner, k: int
) -> List[Tuple[DecodedRun, DecodedRun]]:
    """The decoded partition-pair set an OIPJOIN at granule count *k*
    hands to its kernel (every outer x inner combination — at k=2 the
    Lemma 1 pruning keeps essentially all of them anyway)."""
    storage = StorageManager()
    outer_list = oip_create(
        outer, OIPConfiguration.for_relation(outer, k), storage
    )
    inner_list = oip_create(
        inner, OIPConfiguration.for_relation(inner, k), storage
    )
    inner_decoded = [
        DecodedRun.from_tuples(list(storage.read_run(node.run)))
        for node in inner_list.iter_nodes()
    ]
    pairs: List[Tuple[DecodedRun, DecodedRun]] = []
    for outer_node in outer_list.iter_nodes():
        outer_decoded = DecodedRun.from_tuples(
            list(storage.read_run(outer_node.run))
        )
        for decoded in inner_decoded:
            pairs.append((outer_decoded, decoded))
    return pairs


def run_kernel_sweep(cardinality: int, repeats: int = 5) -> Dict:
    """Time the bare match step per kernel on the coarse-k pair set.

    Min-of-repeats, kernels interleaved within a repeat so scheduler
    noise hits all of them equally.  The first (warm-up) pass builds
    numpy's cached column views, mirroring how the decoded-run cache
    amortises them across the outer partitions of a real probe.
    """
    outer, inner = _figure8_pair(cardinality)
    pairs = _partition_pairs(outer, inner, COARSE_K)
    candidates = sum(o.length * i.length for o, i in pairs)
    for kernel in KERNELS:  # warm-up, untimed
        for outer_run, inner_run in pairs:
            KERNEL_FUNCS[kernel](outer_run, inner_run)
    best = {kernel: float("inf") for kernel in KERNELS}
    for _ in range(repeats):
        for kernel in KERNELS:
            fn = KERNEL_FUNCS[kernel]
            started = time.perf_counter()
            for outer_run, inner_run in pairs:
                fn(outer_run, inner_run)
            best[kernel] = min(
                best[kernel], time.perf_counter() - started
            )
    return {
        "cardinality": cardinality,
        "k": COARSE_K,
        "partition_pairs": len(pairs),
        "candidates": candidates,
        "times_ms": {k: v * 1e3 for k, v in best.items()},
        "numpy_over_sweep": best["sweep"] / best["numpy"],
        "sweep_over_naive": best["naive"] / best["sweep"],
    }


def _one_join(kernel: str, outer, inner, regime_kwargs: Dict) -> float:
    join = OIPJoin(kernel=kernel, **regime_kwargs)
    started = time.perf_counter()
    join.join(outer, inner)
    return time.perf_counter() - started


def run_join_sweep(cardinality: int, repeats: int = 3) -> List[Dict]:
    """End-to-end OIPJoin wall clock per kernel x regime (context rows
    and the measured basis of the AUTO_NUMPY_CANDIDATES threshold)."""
    outer, inner = _figure8_pair(cardinality)
    estimated = kernels.estimate_candidates(outer, inner)
    rows: List[Dict] = []
    for regime, regime_kwargs in REGIMES.items():
        for kernel in KERNELS:  # warm-up, untimed
            _one_join(kernel, outer, inner, regime_kwargs)
        best = {kernel: float("inf") for kernel in KERNELS}
        for _ in range(repeats):
            for kernel in KERNELS:
                best[kernel] = min(
                    best[kernel],
                    _one_join(kernel, outer, inner, regime_kwargs),
                )
        rows.append(
            {
                "workload": "long-lived",
                "cardinality": cardinality,
                "regime": regime,
                "k": regime_kwargs.get("k_outer"),
                "estimated_candidates": estimated,
                "times_ms": {k: v * 1e3 for k, v in best.items()},
                "numpy_over_sweep": best["sweep"] / best["numpy"],
            }
        )
    return rows


def _report(cardinality: int, kernel_row: Dict, join_rows: List[Dict]) -> None:
    heading(
        "numpy kernel — vectorized match step vs sweep "
        f"(n = {cardinality:,} per relation, Figure 8 mixture)"
    )
    emit(
        f"kernel-level, k={COARSE_K} "
        f"({kernel_row['partition_pairs']} partition pairs, "
        f"{kernel_row['candidates']:,} candidates):"
    )
    table(
        ["kernel", "match ms", "vs sweep"],
        [
            [
                kernel,
                f"{kernel_row['times_ms'][kernel]:.2f}",
                f"{kernel_row['times_ms']['sweep'] / kernel_row['times_ms'][kernel]:.2f}x",
            ]
            for kernel in KERNELS
        ],
    )
    emit()
    emit("end-to-end OIPJoin wall clock (IO + partitioning included):")
    table(
        ["regime", "naive ms", "sweep ms", "numpy ms", "numpy/sweep"],
        [
            [
                row["regime"] if row["k"] is None else f"k={row['k']}",
                f"{row['times_ms']['naive']:.1f}",
                f"{row['times_ms']['sweep']:.1f}",
                f"{row['times_ms']['numpy']:.1f}",
                f"{row['numpy_over_sweep']:.2f}x",
            ]
            for row in join_rows
        ],
    )
    emit(
        "(All kernels emit identical pairs and charge identical model "
        "costs.  The gate is kernel-level: the match step is what the "
        f"numpy tier replaces; floor >= {SPEEDUP_BUDGET:.1f}x over "
        "sweep on the coarse-k pairs.  End-to-end rows show numpy never "
        "losing where AUTO_NUMPY_CANDIDATES would select it.)"
    )


def _write_results(
    cardinality: int, kernel_row: Dict, join_rows: List[Dict]
) -> None:
    document = {
        "benchmark": "numpy_kernel",
        "cardinality": cardinality,
        "budget_speedup": SPEEDUP_BUDGET,
        "gate": "kernel-level numpy over sweep, coarse-k Figure 8",
        "gate_speedup": kernel_row["numpy_over_sweep"],
        "auto_numpy_candidates": kernels.AUTO_NUMPY_CANDIDATES,
        "kernel_level": kernel_row,
        "end_to_end": join_rows,
    }
    with open(RESULTS_FILE, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    emit(f"(results written to {RESULTS_FILE})")


def _enforce_budget_with_retries(
    cardinality: int, repeats: int, floor: float, attempts: int = 3
) -> float:
    """Assert the kernel-level speedup floor, re-measuring on a miss.

    The measured margin is ~4x against a 2x floor, so a miss is
    overwhelmingly a scheduler artefact; fresh sweeps (up to
    ``attempts`` total) assert on the *best* gate speedup seen.  A
    genuine regression stays below the floor in every attempt and still
    fails.
    """
    best = 0.0
    for attempt in range(attempts):
        row = run_kernel_sweep(cardinality, repeats=repeats)
        best = max(best, row["numpy_over_sweep"])
        if best >= floor:
            return best
        emit(
            f"(speedup {row['numpy_over_sweep']:.2f}x below the "
            f"{floor:.1f}x floor on attempt {attempt + 1}/{attempts}; "
            "re-measuring)"
        )
    assert best >= floor, (
        f"numpy kernel speedup {best:.2f}x is below the "
        f"{floor:.1f}x floor on the coarse-k long-lived workload"
    )
    return best


def test_numpy_kernel_speedup(benchmark):
    if not numpy_available():
        import pytest

        pytest.skip("numpy is not installed; the tier falls back to sweep")
    cardinality = scaled(SMOKE_N)
    kernel_row = benchmark.pedantic(
        lambda: run_kernel_sweep(cardinality, repeats=3),
        rounds=1,
        iterations=1,
    )
    _report(cardinality, kernel_row, run_join_sweep(cardinality, repeats=1))
    # Lenient CI floor; the documented gate is 2x and --smoke enforces
    # it with best-of-attempts retries.
    if kernel_row["numpy_over_sweep"] < 1.5:
        _enforce_budget_with_retries(cardinality, repeats=3, floor=1.5)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="numpy join-kernel benchmark (vectorized match vs sweep)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "kernel-level measurement only, and assert the "
            f">= {SPEEDUP_BUDGET:.0f}x gate"
        ),
    )
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="skip writing BENCH_numpy.json",
    )
    args = parser.parse_args(argv)

    if not numpy_available():
        emit(
            "numpy is not installed: the numpy kernel tier falls back to "
            "sweep (nothing to measure); see BENCH_kernels.json for the "
            "sweep-vs-naive numbers"
        )
        return 0

    if args.smoke:
        cardinality = args.cardinality or SMOKE_N
        repeats = args.repeats or 5
    else:
        cardinality = args.cardinality or scaled(N)
        repeats = args.repeats or 5

    kernel_row = run_kernel_sweep(cardinality, repeats=repeats)
    join_rows = run_join_sweep(
        cardinality, repeats=max(1, (args.repeats or 3) // 2 + 1)
    )
    _report(cardinality, kernel_row, join_rows)
    if args.smoke:
        gate = kernel_row["numpy_over_sweep"]
        if gate < SPEEDUP_BUDGET:
            gate = _enforce_budget_with_retries(
                cardinality, repeats, floor=SPEEDUP_BUDGET
            )
        emit(
            f"numpy kernel {gate:.2f}x over sweep — meets the "
            f"{SPEEDUP_BUDGET:.1f}x floor"
        )
    elif not args.no_write:
        _write_results(cardinality, kernel_row, join_rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
