"""What the scale-out tier buys: cores and cache hits.

The single-process service is GIL-bound — N handler threads still
execute roughly one core of probe work.  The scale-out tier attacks the
ceiling twice, and this benchmark measures both on the Figure 8
workload (long-lived mixture):

* **Multi-worker throughput** — a fixed batch of end-to-end TCP
  queries driven by concurrent clients against a pre-fork pool
  (``serve --workers N``) at 1, 2, and 4 workers.  Speedup is
  min-of-repeats elapsed at 1 worker over min-of-repeats at N.
  Gate: **>= 2x at 4 workers** — enforced only where the hardware can
  possibly deliver it (``os.cpu_count() >= 4``); a 1-core container
  records honest numbers with the gate marked unenforced rather than
  pretending forked processes conjure cores.
* **Warm cache hits** — per-query latency with the result cache cold
  (invalidated before every sample) vs warm (same fingerprint, same
  generation).  A hit skips admission, snapshot pin, and the entire
  join, so the floor is steep.  Gate: **>= 5x**, enforced everywhere.

Bit-identity is asserted throughout — pooled, sharded, and cached
answers are compared against the offline oracle fingerprint — so the
smoke run is meaningful even on hardware where the worker gate cannot
be enforced.  The standalone run writes ``BENCH_scaleout.json`` at the
repository root; ``--smoke`` (the CI ``scaleout-smoke`` job) asserts
the gates with best-of-attempts retries.

    PYTHONPATH=src python benchmarks/bench_scaleout_throughput.py
    PYTHONPATH=src python benchmarks/bench_scaleout_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

import tempfile

from repro.core.interval import Interval
from repro.service import (
    JoinService,
    ServiceClient,
    WorkerSupervisor,
    offline_query,
)
from repro.storage import save_index
from repro.workloads import long_lived_mixture

CARDINALITY = 1_200  # the Figure 8 scale
WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4
WORKER_SPEEDUP_FLOOR = 2.0
CACHE_SPEEDUP_FLOOR = 5.0
QUERIES = 16
CLIENT_THREADS = 8
REPEATS = 2
CACHE_SAMPLES = 5


def _make_snapshot(cardinality: int) -> str:
    outer = long_lived_mixture(
        cardinality, 0.3, Interval(1, 20_000), seed=61, name="outer"
    )
    inner = long_lived_mixture(
        cardinality, 0.3, Interval(1, 20_000), seed=62, name="inner"
    )
    tmpdir = tempfile.mkdtemp(prefix="bench_scaleout_")
    path = os.path.join(tmpdir, "bench.oip")
    save_index(path, outer, inner)
    return path


def _drive_pool(
    port: int, queries: int, threads: int, expected_fingerprint: int
) -> Dict[str, Any]:
    """Drive a fixed query batch through *threads* concurrent TCP
    clients; returns elapsed seconds and the mismatch count."""
    per_thread = queries // threads
    mismatches = [0] * threads
    barrier = threading.Barrier(threads + 1)

    def client(slot: int) -> None:
        with ServiceClient("127.0.0.1", port, retries=2) as conn:
            barrier.wait()
            for _ in range(per_thread):
                body = conn.join()
                if body["fingerprint"] != expected_fingerprint:
                    mismatches[slot] += 1

    pool = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    return {"elapsed_s": elapsed, "mismatches": sum(mismatches)}


def bench_workers(path: str, expected_fingerprint: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for workers in WORKER_COUNTS:
        supervisor = WorkerSupervisor(path, workers=workers)
        supervisor.start()
        runner = threading.Thread(target=supervisor.run, daemon=True)
        runner.start()
        try:
            best, mismatches = float("inf"), 0
            for _ in range(REPEATS):
                outcome = _drive_pool(
                    supervisor.port,
                    QUERIES,
                    CLIENT_THREADS,
                    expected_fingerprint,
                )
                best = min(best, outcome["elapsed_s"])
                mismatches += outcome["mismatches"]
            rows.append(
                {
                    "workers": workers,
                    "queries": QUERIES,
                    "elapsed_s": best,
                    "throughput_qps": QUERIES / best,
                    "mismatches": mismatches,
                }
            )
        finally:
            supervisor.initiate_shutdown()
            supervisor.shutdown()
            runner.join(timeout=10.0)
    base = rows[0]["throughput_qps"]
    for row in rows:
        row["speedup"] = row["throughput_qps"] / base
    return rows


def bench_cache(path: str, expected_fingerprint: int) -> Dict[str, Any]:
    service = JoinService(path, result_cache_size=8)
    service.start()
    mismatches = 0
    miss_ms = float("inf")
    for _ in range(CACHE_SAMPLES):
        service.result_cache.invalidate()
        started = time.perf_counter()
        body = service.query("join")
        miss_ms = min(miss_ms, (time.perf_counter() - started) * 1e3)
        if body["fingerprint"] != expected_fingerprint:
            mismatches += 1
    hit_ms = float("inf")
    for _ in range(CACHE_SAMPLES):
        started = time.perf_counter()
        body = service.query("join")
        hit_ms = min(hit_ms, (time.perf_counter() - started) * 1e3)
        if not body["cached"] or body["fingerprint"] != expected_fingerprint:
            mismatches += 1
    service.drain(timeout_s=5.0)
    return {
        "miss_ms": miss_ms,
        "hit_ms": hit_ms,
        "speedup": miss_ms / hit_ms if hit_ms > 0 else float("inf"),
        "mismatches": mismatches,
    }


def bench_sharded(path: str, expected_fingerprint: int) -> Dict[str, Any]:
    """Sharded execution for the record (and the identity check); on a
    single core the scatter-gather is pure overhead, which the JSON
    records honestly."""
    service = JoinService(path)
    service.start()
    unsharded_ms = float("inf")
    for _ in range(REPEATS + 1):
        started = time.perf_counter()
        service.query("join")
        unsharded_ms = min(
            unsharded_ms, (time.perf_counter() - started) * 1e3
        )
    mismatches = 0
    sharded_ms = float("inf")
    for _ in range(REPEATS + 1):
        started = time.perf_counter()
        body = service.query("join", shards=4)
        sharded_ms = min(sharded_ms, (time.perf_counter() - started) * 1e3)
        if body["fingerprint"] != expected_fingerprint:
            mismatches += 1
    service.drain(timeout_s=5.0)
    return {
        "unsharded_ms": unsharded_ms,
        "sharded_ms": sharded_ms,
        "shards": 4,
        "mismatches": mismatches,
    }


def run(smoke: bool) -> int:
    heading("Scale-out serving: workers, result cache, time shards")
    cardinality = scaled(CARDINALITY)
    cpu_count = os.cpu_count() or 1
    workers_gate_enforced = cpu_count >= GATE_WORKERS
    path = _make_snapshot(cardinality)
    expected = offline_query(path)["fingerprint"]
    emit(
        f"n={cardinality}, cores={cpu_count}, "
        f"{QUERIES} queries x {CLIENT_THREADS} clients, "
        f"min of {REPEATS} repeats"
    )

    attempts = 3 if smoke else 1
    worker_rows: List[Dict[str, Any]] = []
    cache_row: Dict[str, Any] = {}
    for attempt in range(attempts):
        worker_rows = bench_workers(path, expected)
        cache_row = bench_cache(path, expected)
        gate_row = next(
            row for row in worker_rows if row["workers"] == GATE_WORKERS
        )
        workers_ok = (
            not workers_gate_enforced
            or gate_row["speedup"] >= WORKER_SPEEDUP_FLOOR
        )
        cache_ok = cache_row["speedup"] >= CACHE_SPEEDUP_FLOOR
        if workers_ok and cache_ok:
            break
        if smoke and attempt < attempts - 1:
            emit(
                f"  retrying: workers {gate_row['speedup']:.2f}x, "
                f"cache {cache_row['speedup']:.2f}x"
            )
    sharded_row = bench_sharded(path, expected)

    table(
        ["workers", "elapsed", "qps", "speedup", "mismatches"],
        [
            [
                row["workers"],
                f"{row['elapsed_s'] * 1e3:.0f} ms",
                f"{row['throughput_qps']:.1f}",
                f"{row['speedup']:.2f}x",
                row["mismatches"],
            ]
            for row in worker_rows
        ],
    )
    emit()
    emit(
        f"cache: miss {cache_row['miss_ms']:.2f} ms, hit "
        f"{cache_row['hit_ms']:.3f} ms -> {cache_row['speedup']:.1f}x "
        f"(floor {CACHE_SPEEDUP_FLOOR}x)"
    )
    emit(
        f"shards(4): {sharded_row['sharded_ms']:.1f} ms vs unsharded "
        f"{sharded_row['unsharded_ms']:.1f} ms on {cpu_count} core(s)"
    )
    gate_row = next(
        row for row in worker_rows if row["workers"] == GATE_WORKERS
    )
    emit(
        f"workers gate @ {GATE_WORKERS}: {gate_row['speedup']:.2f}x "
        f"(floor {WORKER_SPEEDUP_FLOOR}x, "
        f"{'enforced' if workers_gate_enforced else f'not enforced on {cpu_count} core(s)'})"
    )
    mismatches = (
        sum(row["mismatches"] for row in worker_rows)
        + cache_row["mismatches"]
        + sharded_row["mismatches"]
    )
    emit(f"bit-identity mismatches: {mismatches}")

    if not smoke:
        out = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_scaleout.json",
        )
        with open(out, "w") as handle:
            json.dump(
                {
                    "benchmark": "scaleout_throughput",
                    "cardinality": cardinality,
                    "cpu_count": cpu_count,
                    "queries": QUERIES,
                    "client_threads": CLIENT_THREADS,
                    "repeats": REPEATS,
                    "worker_speedup_floor": WORKER_SPEEDUP_FLOOR,
                    "workers_gate_enforced": workers_gate_enforced,
                    "gate_workers": GATE_WORKERS,
                    "gate_worker_speedup": gate_row["speedup"],
                    "cache_speedup_floor": CACHE_SPEEDUP_FLOOR,
                    "cache_speedup": cache_row["speedup"],
                    "mismatches": mismatches,
                    "workers": worker_rows,
                    "cache": cache_row,
                    "sharded": sharded_row,
                },
                handle,
                indent=1,
            )
            handle.write("\n")
        emit(f"wrote {out}")

    failed = []
    if mismatches:
        failed.append(f"{mismatches} bit-identity mismatch(es)")
    if (
        workers_gate_enforced
        and gate_row["speedup"] < WORKER_SPEEDUP_FLOOR
    ):
        failed.append(
            f"worker speedup {gate_row['speedup']:.2f}x < "
            f"{WORKER_SPEEDUP_FLOOR}x at {GATE_WORKERS} workers"
        )
    if cache_row["speedup"] < CACHE_SPEEDUP_FLOOR:
        failed.append(
            f"cache speedup {cache_row['speedup']:.2f}x < "
            f"{CACHE_SPEEDUP_FLOOR}x"
        )
    if failed and smoke:
        emit(f"SMOKE GATE FAILED: {'; '.join(failed)}")
        return 1
    return 0


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert the gates; exit 1 on failure",
    )
    args = parser.parse_args(argv or sys.argv[1:])
    return run(smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
