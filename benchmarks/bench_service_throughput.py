"""What the serving layer buys — and what it costs.

A stateless deployment pays the full snapshot pipeline on **every**
query: read the file, parse and checksum the sections, reconstruct the
source relations, restore both partition lists, then join.  The
:class:`~repro.service.JoinService` pays the file-side work once per
*generation* and keeps it pinned in memory; each query restores from
the pinned parsed sections and goes straight to the probe.  In exchange
the service adds real machinery per query: admission control, budget
plumbing, breaker checks, ``service.*`` metrics, and the response
fingerprint.

This benchmark separates those two claims and gates both:

* **Amortization** — per-query load phase, stateless
  (``ServingGeneration.load`` + restore) vs pinned (restore from parsed
  sections only).  Gate: **pinned >= 2x faster** at the gate
  cardinality (measured ~5x).
* **Overhead** — end-to-end query latency through the full service
  stack vs the stateless :func:`~repro.service.offline_query` oracle.
  Gate: **service <= 1.35x stateless** (measured ~1.05x) — robustness
  must not tax the hot path.

It also records hot-swap latency (``refresh(force=True)`` while
serving) and multi-client throughput for the record.  The standalone
run writes ``BENCH_service.json`` at the repository root; ``--smoke``
(the CI ``service-smoke`` job) asserts both gates with best-of-attempts
retries.

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from typing import Dict, List, Sequence

if __package__:
    from .common import emit, heading, scaled, table
else:
    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

    def emit(line: str = "") -> None:
        print(line)

    def heading(title: str) -> None:
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        columns = [
            [str(header)] + [str(row[i]) for row in rows]
            for i, header in enumerate(headers)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        emit(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rows:
            emit(
                " | ".join(
                    str(cell).rjust(w) for cell, w in zip(row, widths)
                )
            )

    def scaled(cardinality: int) -> int:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        return max(1, int(cardinality * scale))

from repro.core.interval import Interval
from repro.service import JoinService, offline_query
from repro.service.snapshots import ServingGeneration
from repro.storage import StorageManager, save_index
from repro.workloads import long_lived_mixture

CARDINALITIES = (400, 1200, 3600)
GATE_CARDINALITY = 3600
AMORTIZATION_FLOOR = 2.0
OVERHEAD_CEILING = 1.35
REPEATS = 3
CLIENT_THREADS = 4
CLIENT_QUERIES = 8


def _best(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1e3


def bench_cardinality(cardinality: int) -> Dict[str, float]:
    outer = long_lived_mixture(
        cardinality, 0.3, Interval(1, 20_000), seed=51, name="outer"
    )
    inner = long_lived_mixture(
        cardinality, 0.3, Interval(1, 20_000), seed=52, name="inner"
    )
    tmpdir = tempfile.mkdtemp(prefix="bench_service_")
    path = os.path.join(tmpdir, "bench.oip")
    save_index(path, outer, inner)

    # -- amortization: per-query load phase ------------------------------
    def stateless_load():
        generation = ServingGeneration.load(path)
        generation(
            generation.outer, generation.inner, storage=StorageManager()
        )

    pinned_generation = ServingGeneration.load(path)

    def pinned_restore():
        pinned_generation(
            pinned_generation.outer,
            pinned_generation.inner,
            storage=StorageManager(),
        )

    stateless_load_ms = _best(stateless_load, repeats=REPEATS + 2)
    pinned_restore_ms = _best(pinned_restore, repeats=REPEATS + 2)

    # -- overhead: end-to-end query latency ------------------------------
    stateless_query_ms = _best(lambda: offline_query(path))
    service = JoinService(path, max_active=CLIENT_THREADS, max_queued=32)
    service.start()
    service.query("join")  # warm decode caches
    service_query_ms = _best(lambda: service.query("join"))

    # -- swap latency while serving --------------------------------------
    swap_ms = _best(lambda: service.refresh(force=True))

    # -- concurrent-client throughput (for the record) -------------------
    def client():
        for _ in range(CLIENT_QUERIES // CLIENT_THREADS):
            service.query("join")

    threads = [
        threading.Thread(target=client) for _ in range(CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    throughput_qps = CLIENT_QUERIES / elapsed
    service.drain(timeout_s=10.0)

    return {
        "cardinality": cardinality,
        "stateless_load_ms": stateless_load_ms,
        "pinned_restore_ms": pinned_restore_ms,
        "amortization": stateless_load_ms / pinned_restore_ms,
        "stateless_query_ms": stateless_query_ms,
        "service_query_ms": service_query_ms,
        "overhead": service_query_ms / stateless_query_ms,
        "swap_ms": swap_ms,
        "throughput_qps": throughput_qps,
    }


def run(smoke: bool) -> int:
    heading("Service throughput: pinned generations vs stateless loads")
    gate = scaled(GATE_CARDINALITY)
    cardinalities = (
        (gate,) if smoke else tuple(scaled(c) for c in CARDINALITIES)
    )
    rows: List[Dict[str, float]] = []
    for cardinality in cardinalities:
        attempts = 3 if smoke else 1
        row = None
        for attempt in range(attempts):
            row = bench_cardinality(cardinality)
            if (
                row["amortization"] >= AMORTIZATION_FLOOR
                and row["overhead"] <= OVERHEAD_CEILING
            ):
                break
            if smoke and attempt < attempts - 1:
                emit(
                    f"  retrying n={cardinality}: amortization "
                    f"{row['amortization']:.2f}x, overhead "
                    f"{row['overhead']:.2f}x"
                )
        rows.append(row)
    table(
        [
            "n", "load/query (stateless)", "restore (pinned)",
            "amortize", "stateless q", "service q", "overhead",
            "swap ms", "qps x4",
        ],
        [
            [
                row["cardinality"],
                f"{row['stateless_load_ms']:.2f} ms",
                f"{row['pinned_restore_ms']:.2f} ms",
                f"{row['amortization']:.2f}x",
                f"{row['stateless_query_ms']:.1f} ms",
                f"{row['service_query_ms']:.1f} ms",
                f"{row['overhead']:.2f}x",
                f"{row['swap_ms']:.1f}",
                f"{row['throughput_qps']:.1f}",
            ]
            for row in rows
        ],
    )
    gate_row = next(
        (row for row in rows if row["cardinality"] == gate), rows[-1]
    )
    emit()
    emit(
        f"gate @ n={gate_row['cardinality']}: amortization "
        f"{gate_row['amortization']:.2f}x (floor {AMORTIZATION_FLOOR}x), "
        f"overhead {gate_row['overhead']:.2f}x "
        f"(ceiling {OVERHEAD_CEILING}x)"
    )
    if not smoke:
        out = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_service.json",
        )
        with open(out, "w") as handle:
            json.dump(
                {
                    "benchmark": "service_throughput",
                    "amortization_floor": AMORTIZATION_FLOOR,
                    "overhead_ceiling": OVERHEAD_CEILING,
                    "gate_cardinality": gate_row["cardinality"],
                    "gate_amortization": gate_row["amortization"],
                    "gate_overhead": gate_row["overhead"],
                    "rows": rows,
                },
                handle,
                indent=1,
            )
            handle.write("\n")
        emit(f"wrote {out}")
    failed = []
    if gate_row["amortization"] < AMORTIZATION_FLOOR:
        failed.append(
            f"amortization {gate_row['amortization']:.2f}x < "
            f"{AMORTIZATION_FLOOR}x"
        )
    if gate_row["overhead"] > OVERHEAD_CEILING:
        failed.append(
            f"overhead {gate_row['overhead']:.2f}x > {OVERHEAD_CEILING}x"
        )
    if failed and smoke:
        emit(f"SMOKE GATE FAILED: {'; '.join(failed)}")
        return 1
    return 0


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="gate cardinality only; exit 1 if a gate fails",
    )
    args = parser.parse_args(argv or sys.argv[1:])
    return run(smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
