"""Benchmark-suite plumbing: flush the tables emitted by the bench
modules after pytest's own output (outside capture) and mirror them to
``benchmarks/report.txt``."""

import pathlib

from .common import REPORT_LINES

REPORT_PATH = pathlib.Path(__file__).parent / "report.txt"


def pytest_terminal_summary(terminalreporter):
    if not REPORT_LINES:
        return
    terminalreporter.section("paper tables and figures (reproduction)")
    for line in REPORT_LINES:
        terminalreporter.write_line(line)
    REPORT_PATH.write_text("\n".join(REPORT_LINES) + "\n")
    terminalreporter.write_line(f"\n[written to {REPORT_PATH}]")
