"""Figure 8: long-lived tuples.

(a) runtime and AFR of oip / lqt / rit / sgt / smj while the share of
    long-lived tuples (duration up to 8% of the range, average 4%)
    sweeps from 0% to 100%;
(b) the same while the maximum tuple duration sweeps from ~0% to 10%.

The paper's message: the OIPJOIN's false hits stay near zero and its
runtime flat, the loose quadtree's AFR explodes, the relational interval
tree and segment tree pay ever more index work (sgt worst), and the
sort-merge join degrades with the longest duration.
"""

import pytest

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.workloads import long_lived_mixture, uniform_relation

from .common import (
    emit,
    heading,
    run_contenders,
    scaled,
    structural_afr_lqt,
    structural_afr_oip,
    table,
)

CONTENDERS = ("oip", "lqt", "rit", "sgt", "smj")
N = 1_200
TIME_RANGE = Interval(1, 2**20)

LONG_SHARES = (0, 25, 50, 75, 100)
MAX_DURATIONS = (0.001, 0.02, 0.04, 0.06, 0.08, 0.10)


def _factories():
    return {name: ALGORITHMS[name] for name in CONTENDERS}


def test_fig8a_share_of_long_lived(benchmark):
    def sweep():
        rows = []
        for share in LONG_SHARES:
            outer = long_lived_mixture(
                scaled(N), share / 100, TIME_RANGE, seed=1, name="r"
            )
            inner = long_lived_mixture(
                scaled(N), share / 100, TIME_RANGE, seed=2, name="s"
            )
            results = run_contenders(_factories(), outer, inner)
            row = [f"{share}%"]
            for name in CONTENDERS:
                result, elapsed = results[name]
                row.append(
                    f"{elapsed * 1e3:6.0f}ms/"
                    f"{result.false_hit_ratio * 100:5.1f}%"
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        "Figure 8(a) — runtime / AFR vs share of long-lived tuples "
        f"(n = {scaled(N):,} per relation; paper: 10M)"
    )
    table(["long-lived"] + list(CONTENDERS), rows)


def test_fig8b_max_duration(benchmark):
    def sweep():
        rows = []
        for fraction in MAX_DURATIONS:
            outer = uniform_relation(
                scaled(N), TIME_RANGE, fraction, seed=3, name="r"
            )
            inner = uniform_relation(
                scaled(N), TIME_RANGE, fraction, seed=4, name="s"
            )
            results = run_contenders(_factories(), outer, inner)
            row = [f"{fraction * 100:.1f}%"]
            for name in CONTENDERS:
                result, elapsed = results[name]
                row.append(
                    f"{elapsed * 1e3:6.0f}ms/"
                    f"{result.false_hit_ratio * 100:5.1f}%"
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        "Figure 8(b) — runtime / AFR vs maximum tuple duration "
        f"(n = {scaled(N):,} per relation; paper: 10M)"
    )
    table(["max duration"] + list(CONTENDERS), rows)


def test_fig8a_structural_afr(benchmark):
    """The AFR panel of Figure 8(a) proper: Definition-5 AFR of the
    built partitionings (sampled point queries), which is independent of
    the result density that distorts the operational ratio at reduced
    scale.  Paper shape: oip flat near its 1/k bound, lqt rising
    drastically with the long-lived share."""

    def sweep():
        rows = []
        for share in LONG_SHARES:
            inner = long_lived_mixture(
                scaled(4 * N), share / 100, TIME_RANGE, seed=2, name="s"
            )
            oip_afr, k = structural_afr_oip(inner)
            lqt_afr = structural_afr_lqt(inner)
            rows.append(
                (
                    f"{share}%",
                    f"{oip_afr * 100:.3f}%",
                    f"{100 / k:.3f}% (k={k})",
                    f"{lqt_afr * 100:.3f}%",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    heading(
        "Figure 8(a) AFR panel — Definition-5 AFR of the partitioning "
        f"(n = {scaled(4 * N):,}, sampled point queries)"
    )
    table(
        ["long-lived", "oip AFR", "Theorem-1 bound 1/k", "lqt AFR"], rows
    )
    emit(
        "expected paper shape: oip flat and below its bound; lqt rises "
        "with the long-lived share"
    )


@pytest.mark.parametrize("name", CONTENDERS)
def test_fig8_single_algorithm_timing(benchmark, name):
    """Per-algorithm timing point for pytest-benchmark's comparison
    table (50% long-lived, the middle of the Figure 8(a) sweep)."""
    outer = long_lived_mixture(
        scaled(N), 0.5, TIME_RANGE, seed=1, name="r"
    )
    inner = long_lived_mixture(
        scaled(N), 0.5, TIME_RANGE, seed=2, name="s"
    )
    benchmark.pedantic(
        lambda: ALGORITHMS[name]().join(outer, inner),
        rounds=1,
        iterations=1,
    )
