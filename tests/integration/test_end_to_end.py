"""Integration tests: full pipelines across workloads, storage, joins,
analysis and the query engine."""

import pytest

from repro import OIPJoin, TemporalRelation
from repro.analysis import (
    apa_bound,
    average_false_hit_ratio,
    measured_tightening_factor,
    partition_views_from_lazy_list,
    theoretical_afr_bound,
)
from repro.baselines import ALGORITHMS
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration
from repro.engine import (
    JoinPlanner,
    OverlapJoinOperator,
    ScanOperator,
    overlaps_at_least,
)
from repro.storage import BufferPool, CostWeights, DeviceProfile
from repro.workloads import (
    incumbent_standin,
    long_lived_mixture,
    uniform_relation,
)
from tests.conftest import oracle_pairs


class TestAllAlgorithmsOnWorkloads:
    """Every algorithm, on every workload family, equals the oracle."""

    @pytest.fixture(scope="class")
    def workloads(self):
        from repro.core.interval import Interval

        range_ = Interval(1, 2**14)
        return {
            "uniform": (
                uniform_relation(120, range_, 0.01, seed=1, name="r"),
                uniform_relation(150, range_, 0.01, seed=2, name="s"),
            ),
            "long-lived": (
                long_lived_mixture(120, 0.5, range_, seed=3, name="r"),
                long_lived_mixture(150, 0.5, range_, seed=4, name="s"),
            ),
            "incumbent": (
                incumbent_standin(cardinality=100, seed=5, name="r"),
                incumbent_standin(cardinality=150, seed=6, name="s"),
            ),
        }

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize(
        "workload", ["uniform", "long-lived", "incumbent"]
    )
    def test_correct_on_workload(self, algorithm, workload, workloads):
        outer, inner = workloads[workload]
        result = ALGORITHMS[algorithm]().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_correct_on_disk_profile_with_small_buffer(
        self, algorithm, workloads
    ):
        outer, inner = workloads["uniform"]
        join = ALGORITHMS[algorithm](
            device=DeviceProfile.disk(),
            buffer_pool=BufferPool(capacity_blocks=8),
        )
        result = join.join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)


class TestAnalysisAgreesWithExecution:
    """The Section 5 theory holds on generated data end to end."""

    def test_afr_bound_on_realistic_workload(self):
        relation = uniform_relation(400, max_duration_fraction=0.02, seed=9)
        for k in (4, 16, 64):
            config = OIPConfiguration.for_relation(relation, k)
            built = oip_create(relation, config)
            views = partition_views_from_lazy_list(built)
            # Sampled Definition-5 AFR (a full point sweep over 2^24
            # positions is too slow): average |F(P, [x, x])| / n over
            # random positions.  Theorem 1 proves < 1/k for duration-
            # complete relations; sparse uniform data stays well below.
            afr = self._sampled_afr(views, relation, samples=300)
            assert afr < theoretical_afr_bound(k)

    @staticmethod
    def _sampled_afr(views, relation, samples):
        import random

        from repro.analysis.afr import false_hits
        from repro.core.interval import Interval

        rng = random.Random(0)
        span = relation.time_range
        total_false = 0
        for _ in range(samples):
            x = rng.randint(span.start, span.end)
            total_false += len(false_hits(views, Interval(x, x)))
        return total_false / samples / relation.cardinality

    def test_apa_bound_on_realistic_workload(self):
        relation = uniform_relation(400, max_duration_fraction=0.02, seed=10)
        k = 32
        config = OIPConfiguration.for_relation(relation, k)
        built = oip_create(relation, config)
        tau = measured_tightening_factor(built)
        total = 0
        count = 0
        for e in range(k):
            for s in range(e + 1):
                total += sum(1 for _ in built.iter_relevant(s, e))
                count += 1
        assert total / count <= apa_bound(k, tau, len(relation)) + 1e-9


class TestQuerySurface:
    def test_motivating_example_full_pipeline(self):
        """The Section 1 query: employees employed >= 5 months while a
        project is ongoing, via planner-chosen join and refinement."""
        employees = TemporalRelation.from_records(
            [(1, 400, "ann"), (100, 130, "bob"), (390, 420, "cho")],
            name="employees",
        )
        projects = TemporalRelation.from_records(
            [(80, 280, "apollo"), (410, 800, "gemini")],
            name="projects",
        )
        query = OverlapJoinOperator(
            ScanOperator(employees),
            ScanOperator(projects),
            algorithm=JoinPlanner().plan(employees, projects).algorithm,
        ).refine(overlaps_at_least(5 * 30))
        rows = query.execute()
        assert [(a.payload, b.payload) for a, b, _ in rows] == [
            ("ann", "apollo")
        ]

    def test_month_scale_quickstart(self, paper_r, paper_s):
        """The README quickstart shape: join and read shared intervals."""
        rows = OverlapJoinOperator(
            ScanOperator(paper_r), ScanOperator(paper_s)
        ).execute()
        assert len(rows) == 8
        for outer_tuple, inner_tuple, shared in rows:
            assert shared.duration >= 1
            assert outer_tuple.interval.contains(shared)
            assert inner_tuple.interval.contains(shared)


class TestCostComparability:
    """Counters are comparable across algorithms on the same input."""

    def test_oip_beats_lqt_on_long_lived_modelled_cost(self):
        from repro.core.interval import Interval

        range_ = Interval(1, 2**16)
        outer = long_lived_mixture(400, 0.5, range_, seed=11, name="r")
        inner = long_lived_mixture(400, 0.5, range_, seed=12, name="s")
        weights = CostWeights.main_memory()
        oip = ALGORITHMS["oip"]().join(outer, inner)
        lqt = ALGORITHMS["lqt"]().join(outer, inner)
        assert oip.modelled_cost(weights) < lqt.modelled_cost(weights)

    def test_smj_wins_on_point_data(self):
        from repro.workloads import point_relation

        outer = point_relation(400, seed=13, name="r")
        inner = point_relation(400, seed=14, name="s")
        weights = CostWeights.main_memory()
        smj = ALGORITHMS["smj"]().join(outer, inner)
        oip = ALGORITHMS["oip"]().join(outer, inner)
        assert smj.modelled_cost(weights) < oip.modelled_cost(weights)
