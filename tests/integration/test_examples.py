"""Smoke tests: the example scripts must run end to end.

The heavyweight sweeps (algorithm_comparison, disk_vs_memory) are
shrunk by monkeypatching their module constants before ``main()``.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "8 pairs" in out
        assert "false_hits" in out

    def test_employee_projects(self, capsys):
        load_example("employee_projects").main()
        out = capsys.readouterr().out
        assert "planner chose: oip" in out
        assert "ann" in out

    def test_cost_model_tuning(self, capsys):
        load_example("cost_model_tuning")
        module = sys.modules["example_cost_model_tuning"]
        module.example_8()
        module.figure_6_sweep()
        out = capsys.readouterr().out
        assert "converged to k" in out
        assert "16,521" in out  # the paper's value is printed

    def test_algorithm_comparison_small(self, capsys):
        module = load_example("algorithm_comparison")
        module.CARDINALITY = 150
        module.main()
        out = capsys.readouterr().out
        assert "identical results" in out

    def test_disk_vs_memory_small(self, capsys):
        module = load_example("disk_vs_memory")
        module.CARDINALITY = 1_000
        module.main()
        out = capsys.readouterr().out
        assert "64GB server" in out
        assert "cold (no cache)" in out

    def test_incremental_updates(self, capsys):
        load_example("incremental_updates").main()
        out = capsys.readouterr().out
        assert "all OIP invariants hold" in out
        assert "k grew to" in out

    def test_all_examples_have_docstrings_and_main(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            source = path.read_text()
            assert source.startswith("#!/usr/bin/env python3"), path
            assert '"""' in source, path
            assert "def main()" in source, path
