"""Tests for the relational interval tree and its join (``rit``)."""

import random

import pytest

from repro.baselines.rit import RelationalIntervalTree, RITJoin
from repro.core.relation import TemporalRelation
from repro.storage.manager import StorageManager
from tests.conftest import oracle_pairs, random_relation


def build_tree(relation):
    return RelationalIntervalTree(relation, StorageManager())


class TestBackbone:
    def test_paper_key_lists_example(self):
        """Section 2: indexed range [1, 64], query [5, 7] -> key point
        list {32, 16, 8} and key range list {[4, 4], [5, 7]}.  The point
        list is our right-node descent (nodes above QE), the [4, 4] range
        is our left-node descent (nodes below QS), and [5, 7] is the
        inner fork-range scan.  Our backbone is one level taller (root 64
        so that the point 64 itself is a valid fork)."""
        relation = TemporalRelation.from_pairs([(1, 64)])
        tree = build_tree(relation)
        assert tree.root == 64
        assert set(tree.right_nodes(7)) >= {32, 16, 8}
        assert tree.left_nodes(5) == [4]

    def test_root_is_power_of_two(self):
        relation = TemporalRelation.from_pairs([(1, 100)])
        tree = build_tree(relation)
        assert tree.root & (tree.root - 1) == 0

    def test_fork_node_inside_interval(self):
        rng = random.Random(0)
        relation = random_relation(rng, 200, 1000, 100)
        tree = build_tree(relation)
        for tup in relation:
            fork = tree.fork_node(
                tup.start - tree.offset, tup.end - tree.offset
            )
            assert tup.start - tree.offset <= fork <= tup.end - tree.offset

    def test_fork_node_is_first_on_root_path(self):
        """The fork is the highest backbone node inside the interval."""
        relation = TemporalRelation.from_pairs([(1, 64)])
        tree = build_tree(relation)
        # Interval containing the root forks at the root.
        assert tree.fork_node(1, 64) == tree.root
        assert tree.fork_node(60, 64) == tree.fork_node(60, 64)
        # [5, 7]: path 64 -> 32 -> 16 -> 8 -> 4 -> 6: fork = 6.
        assert tree.fork_node(5, 7) == 6

    def test_left_right_nodes_disjoint_from_query_range(self):
        relation = TemporalRelation.from_pairs([(1, 256)])
        tree = build_tree(relation)
        for qs, qe in [(5, 9), (100, 200), (1, 1), (250, 256)]:
            assert all(node < qs for node in tree.left_nodes(qs))
            assert all(node > qe for node in tree.right_nodes(qe))

    def test_negative_time_domain_shifted(self):
        relation = TemporalRelation.from_pairs([(-50, -10), (-30, 20)])
        tree = build_tree(relation)
        assert len(tree.overlap_query(-40, -35)) == 1
        assert len(tree.overlap_query(-25, -20)) == 2
        assert len(tree.overlap_query(0, 5)) == 1
        assert tree.overlap_query(-100, -60) == []


class TestOverlapQuery:
    @pytest.mark.parametrize("seed", range(5))
    def test_query_matches_filter_oracle(self, seed):
        rng = random.Random(seed)
        relation = random_relation(rng, 150, 600, 80)
        tree = build_tree(relation)
        for _ in range(25):
            qs = rng.randint(0, 700)
            qe = qs + rng.randint(0, 100)
            found = sorted(
                t.payload for _, t in tree.overlap_query(qs, qe)
            )
            expected = sorted(
                t.payload
                for t in relation
                if t.start <= qe and qs <= t.end
            )
            assert found == expected

    def test_no_duplicates(self):
        rng = random.Random(7)
        relation = random_relation(rng, 200, 500, 200)
        tree = build_tree(relation)
        found = [t.payload for _, t in tree.overlap_query(100, 300)]
        assert len(found) == len(set(found))

    def test_query_outside_domain(self):
        relation = TemporalRelation.from_pairs([(10, 20)])
        tree = build_tree(relation)
        assert tree.overlap_query(500, 600) == []
        assert tree.overlap_query(-100, -50) == []


class TestJoin:
    def test_paper_example(self, paper_r, paper_s):
        result = RITJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed + 11)
        outer = random_relation(rng, rng.randint(1, 120), 700, 90, "r")
        inner = random_relation(rng, rng.randint(1, 120), 700, 90, "s")
        result = RITJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_produces_no_false_hits(self, paper_r, paper_s):
        """Section 7: the AFR of rit is omitted because it has none."""
        result = RITJoin().join(paper_r, paper_s)
        assert result.counters.false_hits == 0

    def test_long_tuples_cost_more_index_operations(self):
        """Long-lived tuples fork high (inner side: more index node
        touches) and widen the probe ranges (outer side: more CPU)."""
        from repro.core.interval import Interval
        from repro.workloads import long_lived_mixture

        range_ = Interval(1, 2**14)
        outer_short = long_lived_mixture(300, 0.0, range_, seed=1, name="r")
        outer_long = long_lived_mixture(300, 0.8, range_, seed=1, name="r")
        inner_short = long_lived_mixture(300, 0.0, range_, seed=2, name="s")
        inner_long = long_lived_mixture(300, 0.8, range_, seed=2, name="s")
        baseline = RITJoin().join(outer_short, inner_short)
        long_inner = RITJoin().join(outer_short, inner_long)
        long_outer = RITJoin().join(outer_long, inner_short)
        assert (
            long_inner.counters.partition_accesses
            > baseline.counters.partition_accesses
        )
        assert (
            long_outer.counters.cpu_comparisons
            > baseline.counters.cpu_comparisons
        )

    def test_details(self, paper_r, paper_s):
        result = RITJoin().join(paper_r, paper_s)
        assert result.details["backbone_height"] >= 4
        assert result.details["lower_index_height"] >= 1
