"""Tests for the regular 1-D quadtree and its join (``qt``)."""

import random

import pytest

from repro.baselines.quadtree import IntervalQuadtree, QuadtreeJoin
from repro.core.interval import Interval
from repro.core.relation import TemporalRelation, TemporalTuple
from repro.storage.manager import StorageManager
from tests.conftest import oracle_pairs, random_relation


def build_tree(relation, capacity=2):
    storage = StorageManager()
    return IntervalQuadtree.build(relation, storage, block_capacity=capacity)


class TestStructure:
    def test_root_cell_padded_to_power_of_two(self):
        relation = TemporalRelation.from_pairs([(1, 20)])
        tree = build_tree(relation)
        assert tree.root.cell == Interval(1, 32)

    def test_boundary_tuple_stays_at_root(self):
        """The paper's Section 2 example: in range [1, 32] the tuple
        [16, 17] crosses the first split boundary and stays at the top."""
        tuples = [(16, 17)] + [(i, i) for i in range(1, 9)]
        relation = TemporalRelation.from_pairs(tuples)
        tree = build_tree(relation, capacity=2)
        root_payloads = [
            (t.start, t.end) for t in tree.root.run.iter_tuples()
        ]
        assert (16, 17) in root_payloads

    def test_density_based_splitting(self):
        """Nodes split only when the block is full."""
        relation = TemporalRelation.from_pairs([(1, 1), (30, 30)])
        tree = build_tree(relation, capacity=4)
        assert not tree.root.is_split  # only 2 tuples, capacity 4

    def test_split_pushes_fitting_tuples_down(self):
        relation = TemporalRelation.from_pairs(
            [(1, 1), (2, 2), (30, 30), (31, 31), (3, 3)]
        )
        tree = build_tree(relation, capacity=2)
        assert tree.root.is_split
        assert tree.root.run.tuple_count == 0  # all points fit children

    def test_all_tuples_stored_exactly_once(self):
        rng = random.Random(1)
        relation = random_relation(rng, 120, 400, 60)
        tree = build_tree(relation, capacity=4)
        stored = sorted(
            t.payload
            for node in tree.iter_nodes()
            for t in node.run.iter_tuples()
        )
        assert stored == sorted(t.payload for t in relation)

    def test_tuples_fit_their_node_bounds(self):
        rng = random.Random(2)
        relation = random_relation(rng, 120, 400, 60)
        tree = build_tree(relation, capacity=4)
        for node in tree.iter_nodes():
            for tup in node.run.iter_tuples():
                assert node.bounds.contains(tup.interval)

    def test_width_one_cells_never_split(self):
        relation = TemporalRelation.from_pairs([(0, 0)] * 20)
        tree = build_tree(relation, capacity=2)
        for node in tree.iter_nodes():
            if node.cell.duration == 1:
                assert not node.is_split


class TestJoin:
    def test_paper_example(self, paper_r, paper_s):
        result = QuadtreeJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed)
        outer = random_relation(rng, rng.randint(1, 120), 700, 90, "r")
        inner = random_relation(rng, rng.randint(1, 120), 700, 90, "s")
        result = QuadtreeJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_boundary_crossers_cause_false_hits(self):
        """Tuples stuck high in the tree are fetched for most queries."""
        boundary = [(2**i, 2**i + 1) for i in range(3, 9)]
        points = [(3 * i + 1, 3 * i + 1) for i in range(60)]
        outer = TemporalRelation.from_pairs(points, name="r")
        inner = TemporalRelation.from_pairs(boundary + points, name="s")
        result = QuadtreeJoin(block_capacity=2).join(outer, inner)
        assert result.counters.false_hits > 0

    def test_details(self, paper_r, paper_s):
        result = QuadtreeJoin().join(paper_r, paper_s)
        assert result.details["inner_nodes"] >= 1
        assert result.details["outer_height"] >= 1
