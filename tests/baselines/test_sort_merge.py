"""Tests for the sort-merge overlap join (``smj``)."""

import random

import pytest

from repro.baselines.nested_loop import NestedLoopJoin
from repro.baselines.sort_merge import SortMergeJoin
from repro.workloads import long_lived_mixture, point_relation
from repro.core.interval import Interval
from tests.conftest import oracle_pairs, random_relation


class TestCorrectness:
    def test_paper_example(self, paper_r, paper_s):
        result = SortMergeJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed)
        outer = random_relation(rng, rng.randint(1, 150), 800, 100, "r")
        inner = random_relation(rng, rng.randint(1, 150), 800, 100, "s")
        result = SortMergeJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_long_lived_inner_tuples(self):
        """The backtracking window must still find tuples that start far
        before the outer tuple."""
        from repro import TemporalRelation

        outer = TemporalRelation.from_pairs([(500, 501)])
        inner = TemporalRelation.from_pairs([(0, 1000), (499, 499), (502, 502)])
        result = SortMergeJoin().join(outer, inner)
        assert result.cardinality == 1

    def test_point_data(self):
        outer = point_relation(80, Interval(0, 200), seed=1)
        inner = point_relation(80, Interval(0, 200), seed=2)
        result = SortMergeJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)


class TestScanWindowCost:
    def test_longest_tuple_inflates_false_hits(self):
        """Section 7: smj is 'highly affected by the longest tuple'."""
        range_ = Interval(0, 50_000)
        outer = point_relation(200, range_, seed=3, name="r")
        short_inner = long_lived_mixture(
            200, 0.0, range_, short_max_fraction=0.0002, seed=4
        )
        long_inner = long_lived_mixture(
            200, 0.05, range_, long_max_fraction=0.5, seed=4
        )
        few_false = SortMergeJoin().join(outer, short_inner)
        many_false = SortMergeJoin().join(outer, long_inner)
        assert (
            many_false.counters.false_hits > few_false.counters.false_hits
        )

    def test_cheaper_than_nested_loop_on_sparse_data(self):
        rng = random.Random(9)
        outer = random_relation(rng, 150, 100_000, 5, "r")
        inner = random_relation(rng, 150, 100_000, 5, "s")
        smj = SortMergeJoin().join(outer, inner)
        nlj = NestedLoopJoin().join(outer, inner)
        assert smj.counters.cpu_comparisons < nlj.counters.cpu_comparisons

    def test_details_reported(self, paper_r, paper_s):
        result = SortMergeJoin().join(paper_r, paper_s)
        assert result.details["max_inner_duration"] == 7
        assert result.details["inner_blocks"] >= 1
