"""Tests for the loose quadtree and its join (``lqt``)."""

import random

import pytest

from repro.baselines.loose_quadtree import (
    LooseIntervalQuadtree,
    LooseQuadtreeJoin,
)
from repro.baselines.quadtree import IntervalQuadtree
from repro.core.interval import Interval
from repro.core.relation import TemporalRelation
from repro.storage.manager import StorageManager
from tests.conftest import oracle_pairs, random_relation


def build_tree(relation, capacity=2, p=1.0):
    storage = StorageManager()
    return LooseIntervalQuadtree.build(
        relation, storage, block_capacity=capacity, expansion=p
    )


class TestExpandedCells:
    def test_paper_expansion_example(self):
        """Section 2: with p = 1, range [1, 32] splits into the expanded
        cells [1, 24] and [9, 32]."""
        relation = TemporalRelation.from_pairs([(1, 1), (32, 32)])
        tree = build_tree(relation)
        left = tree.root.left if tree.root.is_split else None
        if left is None:
            # Force a split by inserting more points.
            relation = TemporalRelation.from_pairs(
                [(1, 1), (2, 2), (31, 31), (32, 32)]
            )
            tree = build_tree(relation, capacity=2)
        assert tree.root.left.bounds == Interval(1, 24)
        assert tree.root.right.bounds == Interval(9, 32)

    def test_boundary_tuple_descends(self):
        """The [16, 17] tuple from the Section 2 example reaches a
        width-2 cell ([14, 17] or [16, 19]) instead of the root."""
        points = [(i, i) for i in range(1, 33, 2)]
        relation = TemporalRelation.from_pairs([(16, 17)] + points)
        tree = build_tree(relation, capacity=2)
        holder = next(
            node
            for node in tree.iter_nodes()
            if any(
                (t.start, t.end) == (16, 17) for t in node.run.iter_tuples()
            )
        )
        assert holder.cell.duration == 2
        assert holder.bounds in (Interval(14, 17), Interval(16, 19))

    def test_expansion_rejects_non_positive_p(self):
        relation = TemporalRelation.from_pairs([(0, 1)])
        with pytest.raises(ValueError):
            build_tree(relation, p=0.0)

    def test_tuples_fit_expanded_bounds(self):
        rng = random.Random(4)
        relation = random_relation(rng, 150, 500, 80)
        tree = build_tree(relation, capacity=4)
        for node in tree.iter_nodes():
            for tup in node.run.iter_tuples():
                assert node.bounds.contains(tup.interval)

    def test_looser_than_regular_quadtree(self):
        """Boundary crossers descend deeper than in the regular tree."""
        # Cells are 1-based, so the split boundaries lie between 2^i and
        # 2^i + 1: these tuples cross them and stick high in the regular
        # tree.
        boundary_tuples = [(2**i, 2**i + 1) for i in range(2, 8)]
        filler = [(i, i) for i in range(1, 250, 2)]
        relation = TemporalRelation.from_pairs(boundary_tuples + filler)
        storage = StorageManager()
        regular = IntervalQuadtree.build(relation, storage, block_capacity=2)
        loose = build_tree(relation, capacity=2)

        def depth_of_boundary_tuples(tree):
            depths = {}

            def visit(node, depth):
                for tup in node.run.iter_tuples():
                    key = (tup.start, tup.end)
                    if key in set(boundary_tuples):
                        depths[key] = depth
                if node.is_split:
                    visit(node.left, depth + 1)
                    visit(node.right, depth + 1)

            visit(tree.root, 0)
            return depths

        regular_depths = depth_of_boundary_tuples(regular)
        loose_depths = depth_of_boundary_tuples(loose)
        assert sum(loose_depths.values()) > sum(regular_depths.values())


class TestJoin:
    def test_paper_example(self, paper_r, paper_s):
        result = LooseQuadtreeJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed + 50)
        outer = random_relation(rng, rng.randint(1, 120), 700, 90, "r")
        inner = random_relation(rng, rng.randint(1, 120), 700, 90, "s")
        result = LooseQuadtreeJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_any_expansion_is_correct(self, p, paper_r, paper_s):
        result = LooseQuadtreeJoin(expansion=p).join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_clustering_guarantee_is_not_constant(self):
        """Section 2: the loose quadtree's clustering guarantee weakens
        with tuple duration — the slack between a tuple and its cell
        grows — while OIP's stays below 2d regardless (Lemma 2)."""
        from repro.core.oip import OIPConfiguration
        from repro.core.relation import TemporalTuple

        span = Interval(1, 2048)
        filler = [(i, i) for i in range(1, 2048, 4)]
        short_tuple = (100, 101)
        long_tuple = (100, 612)  # duration 513: needs a 1024-wide cell
        relation = TemporalRelation.from_pairs(
            [short_tuple, long_tuple] + filler
        )
        tree = build_tree(relation, capacity=2)

        def slack_of(key):
            for node in tree.iter_nodes():
                for tup in node.run.iter_tuples():
                    if (tup.start, tup.end) == key:
                        return node.bounds.duration - tup.duration
            raise AssertionError(f"tuple {key} not found")

        # lqt: the long tuple's slack is far larger than the short one's.
        assert slack_of(long_tuple) > 4 * slack_of(short_tuple)

        # OIP with a comparable resolution keeps both below 2d.
        config = OIPConfiguration.for_time_range(span, 64)
        for key in (short_tuple, long_tuple):
            slack = config.clustering_slack(TemporalTuple(*key))
            assert slack < 2 * config.d

    def test_worse_than_oip_at_equal_resolution(self):
        """Figure 8(a)'s mechanism at reduced scale: with long-lived
        tuples present and a comparable partition resolution, the loose
        quadtree fetches more false hits than OIP."""
        from repro.core.join import OIPJoin
        from repro.workloads import long_lived_mixture

        range_ = Interval(1, 2**16)
        outer = long_lived_mixture(600, 0.5, range_, seed=1, name="r")
        inner = long_lived_mixture(600, 0.5, range_, seed=2, name="s")
        lqt = LooseQuadtreeJoin().join(outer, inner)
        oip = OIPJoin(k=64).join(outer, inner)
        assert lqt.pair_keys() == oip.pair_keys()
        assert lqt.counters.false_hits > 2 * oip.counters.false_hits
