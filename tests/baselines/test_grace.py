"""Tests for the grace partition join (related-work baseline)."""

import random

import pytest

from repro.baselines.grace import GracePartitionJoin
from repro.core.relation import TemporalRelation
from tests.conftest import oracle_pairs, random_relation


class TestCorrectness:
    def test_paper_example(self, paper_r, paper_s):
        result = GracePartitionJoin(partitions=3).join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("partitions", [1, 2, 5, 16])
    def test_matches_oracle_random(self, seed, partitions):
        rng = random.Random(seed * 100 + partitions)
        outer = random_relation(rng, rng.randint(1, 100), 600, 120, "r")
        inner = random_relation(rng, rng.randint(1, 100), 600, 120, "s")
        result = GracePartitionJoin(partitions=partitions).join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_no_duplicates_despite_migration(self):
        """A pair of long tuples spans many partitions but is emitted in
        exactly one."""
        outer = TemporalRelation.from_pairs([(0, 999)], name="r")
        inner = TemporalRelation.from_pairs([(0, 999), (500, 999)], name="s")
        result = GracePartitionJoin(partitions=10).join(outer, inner)
        assert result.cardinality == 2

    def test_default_partition_count(self, paper_r, paper_s):
        result = GracePartitionJoin().join(paper_r, paper_s)
        assert result.details["partitions"] >= 1


class TestMigrationOverhead:
    def test_long_tuples_migrate(self):
        outer = TemporalRelation.from_pairs([(0, 999)], name="r")
        inner = TemporalRelation.from_pairs([(500, 501)], name="s")
        result = GracePartitionJoin(partitions=10).join(outer, inner)
        # The outer tuple spans all 10 partitions: 9 migrations.
        assert result.counters.extras.get("migrations", 0) == 9

    def test_short_tuples_do_not_migrate(self):
        outer = TemporalRelation.from_pairs([(5, 6), (100, 101)], name="r")
        inner = TemporalRelation.from_pairs([(900, 901)], name="s")
        result = GracePartitionJoin(partitions=10).join(outer, inner)
        assert result.counters.extras.get("migrations", 0) == 0

    def test_migration_cost_grows_with_long_lived_share(self):
        """The paper: grace is 'only efficient for few long-lived
        tuples, where the overhead of migration is low'."""
        from repro.core.interval import Interval
        from repro.workloads import long_lived_mixture

        range_ = Interval(1, 2**14)
        outer = long_lived_mixture(150, 0.0, range_, seed=1, name="r")
        few = long_lived_mixture(150, 0.05, range_, seed=2, name="s")
        many = long_lived_mixture(150, 0.8, range_, seed=2, name="s")
        join = GracePartitionJoin(partitions=20)
        cheap = join.join(outer, few)
        costly = join.join(outer, many)
        assert costly.counters.extras.get(
            "migrations", 0
        ) > cheap.counters.extras.get("migrations", 0)

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(ValueError):
            GracePartitionJoin(partitions=0)
