"""Tests for the interval R-tree baseline (``rtr``)."""

import random

import pytest

from repro.baselines.rtree import IntervalRTree, RTreeJoin
from repro.core.interval import Interval
from repro.core.relation import TemporalRelation
from repro.storage.manager import StorageManager
from tests.conftest import oracle_pairs, random_relation


def build_tree(relation, fanout=4):
    return IntervalRTree(relation, StorageManager(), fanout=fanout)


class TestStructure:
    def test_root_bounds_cover_relation(self):
        rng = random.Random(1)
        relation = random_relation(rng, 100, 500, 60)
        tree = build_tree(relation)
        assert tree.root.bounds.contains(relation.time_range)

    def test_node_bounds_cover_children(self):
        rng = random.Random(2)
        relation = random_relation(rng, 150, 500, 60)
        tree = build_tree(relation)

        def visit(node):
            if node.is_leaf:
                for tup in node.run.iter_tuples():
                    assert node.bounds.contains(tup.interval)
            else:
                for child in node.children:
                    assert node.bounds.contains(child.bounds)
                    visit(child)

        visit(tree.root)

    def test_fanout_respected(self):
        rng = random.Random(3)
        relation = random_relation(rng, 200, 500, 60)
        tree = build_tree(relation, fanout=8)

        def visit(node):
            if node.is_leaf:
                assert node.run.tuple_count <= 8
            else:
                assert len(node.children) <= 8
                for child in node.children:
                    visit(child)

        visit(tree.root)

    def test_height_logarithmic(self):
        rng = random.Random(4)
        relation = random_relation(rng, 300, 2000, 60)
        tree = build_tree(relation, fanout=8)
        assert tree.height <= 4  # ceil(log_8 300) + leaf level

    def test_single_tuple(self):
        relation = TemporalRelation.from_pairs([(3, 9)])
        tree = build_tree(relation)
        assert tree.root.is_leaf
        assert tree.root.bounds == Interval(3, 9)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            RTreeJoin(fanout=1)

    def test_long_tuples_inflate_mbr_overlap(self):
        """The Section 2 claim: long-lived tuples grow the MBRs and the
        sibling overlap degree."""
        points = [(i, i) for i in range(0, 1000, 7)]
        short_tree = build_tree(TemporalRelation.from_pairs(points))
        long_tree = build_tree(
            TemporalRelation.from_pairs(
                points + [(j, j + 700) for j in range(0, 300, 60)]
            )
        )
        assert (
            long_tree.mbr_overlap_degree()
            > short_tree.mbr_overlap_degree()
        )


class TestJoin:
    def test_paper_example(self, paper_r, paper_s):
        result = RTreeJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed + 31)
        outer = random_relation(rng, rng.randint(1, 120), 700, 90, "r")
        inner = random_relation(rng, rng.randint(1, 120), 700, 90, "s")
        result = RTreeJoin(fanout=4).join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_false_hits_from_page_fetches(self):
        """Fetched pages contain non-matching tuples (page faults in the
        paper's wording)."""
        rng = random.Random(9)
        outer = random_relation(rng, 60, 2000, 10, "r")
        inner = random_relation(rng, 200, 2000, 10, "s")
        result = RTreeJoin(fanout=8).join(outer, inner)
        assert result.counters.false_hits > 0

    def test_details(self, paper_r, paper_s):
        result = RTreeJoin().join(paper_r, paper_s)
        assert result.details["tree_height"] >= 1
        assert result.details["mbr_overlap_degree"] >= 1.0
