"""Tests for the size separation spatial join (``s3j``)."""

import random

import pytest

from repro.baselines.s3j import SizeSeparationJoin, level_of
from repro.core.relation import TemporalRelation, TemporalTuple
from tests.conftest import oracle_pairs, random_relation


class TestLevelAssignment:
    def test_small_aligned_tuple_goes_deep(self):
        # Width 16: [0, 0] fits a width-1 cell at level 4.
        assert level_of(TemporalTuple(0, 0), 0, 16, 12) == 4

    def test_boundary_crosser_stays_high(self):
        """The Section 2 point: small objects crossing high-level
        boundaries are not stored at a low level."""
        # [7, 8] crosses the level-1 boundary of width 16 (cells [0,7]
        # and [8,15]), so it stays at level 0.
        assert level_of(TemporalTuple(7, 8), 0, 16, 12) == 0

    def test_full_range_tuple_at_level_zero(self):
        assert level_of(TemporalTuple(0, 15), 0, 16, 12) == 0

    def test_max_level_caps_descent(self):
        assert level_of(TemporalTuple(0, 0), 0, 1024, 3) == 3

    def test_level_cell_contains_tuple(self):
        rng = random.Random(1)
        width = 1024
        for _ in range(200):
            start = rng.randint(0, width - 1)
            end = min(start + rng.randint(0, 200), width - 1)
            tup = TemporalTuple(start, end)
            level = level_of(tup, 0, width, 12)
            cell_width = width >> level
            assert start // cell_width == end // cell_width


class TestJoin:
    def test_paper_example(self, paper_r, paper_s):
        result = SizeSeparationJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed + 61)
        outer = random_relation(rng, rng.randint(1, 120), 700, 90, "r")
        inner = random_relation(rng, rng.randint(1, 120), 700, 90, "s")
        result = SizeSeparationJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    @pytest.mark.parametrize("max_level", [0, 1, 4, 16])
    def test_any_level_cap_is_correct(self, max_level, paper_r, paper_s):
        result = SizeSeparationJoin(max_level=max_level).join(
            paper_r, paper_s
        )
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_level_sizes_reported(self, paper_r, paper_s):
        result = SizeSeparationJoin().join(paper_r, paper_s)
        assert sum(result.details["level_sizes"].values()) == len(paper_s)

    def test_invalid_max_level_rejected(self):
        with pytest.raises(ValueError):
            SizeSeparationJoin(max_level=-1)

    def test_deep_levels_have_short_windows(self):
        """Tuples at deep levels are only scanned within narrow windows,
        so point-heavy data costs far less than level-0-heavy data."""
        rng = random.Random(5)
        # Anchor tuples pin the joint span to exactly [0, 4095] so the
        # level-0 cell boundary falls between 2047 and 2048.
        anchors = [(0, 0), (4095, 4095)]
        outer = TemporalRelation.from_pairs(
            anchors
            + [
                (s, min(s + rng.randint(0, 3), 4095))
                for s in (rng.randint(0, 4000) for _ in range(100))
            ],
            name="r",
        )
        deep_inner = TemporalRelation.from_pairs(
            anchors
            + [
                (s, min(s + rng.randint(0, 3), 4095))
                for s in (rng.randint(0, 4000) for _ in range(300))
            ],
            name="s",
        )
        # Same sizes but every tuple straddles the top-level boundary.
        shallow_inner = TemporalRelation.from_pairs(
            anchors + [(2047, 2050 + i % 3) for i in range(300)], name="s"
        )
        cheap = SizeSeparationJoin().join(outer, deep_inner)
        costly = SizeSeparationJoin().join(outer, shallow_inner)
        cheap_scanned = (
            cheap.counters.false_hits + cheap.counters.result_tuples
        )
        costly_scanned = (
            costly.counters.false_hits + costly.counters.result_tuples
        )
        assert costly_scanned > cheap_scanned
