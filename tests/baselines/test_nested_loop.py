"""Tests for the block nested-loop oracle."""

import random

from repro.baselines.nested_loop import NestedLoopJoin
from tests.conftest import oracle_pairs, random_relation


class TestNestedLoop:
    def test_paper_example(self, paper_r, paper_s):
        result = NestedLoopJoin().join(paper_r, paper_s)
        assert result.cardinality == 8
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_comparison_count_is_product(self, paper_r, paper_s):
        result = NestedLoopJoin().join(paper_r, paper_s)
        # Two CPU comparisons per candidate pair.
        assert result.counters.cpu_comparisons == 2 * 3 * 7

    def test_false_hits_are_non_matches(self, paper_r, paper_s):
        result = NestedLoopJoin().join(paper_r, paper_s)
        assert result.counters.false_hits == 3 * 7 - 8

    def test_inner_rescanned_per_outer_block(self):
        rng = random.Random(0)
        outer = random_relation(rng, 30, name="r")  # 3 blocks at b=14
        inner = random_relation(rng, 14, name="s")  # 1 block
        result = NestedLoopJoin().join(outer, inner)
        # 3 outer block reads + 3 x 1 inner block reads.
        assert result.counters.block_reads == 6

    def test_empty_input(self, paper_s):
        from repro import TemporalRelation

        result = NestedLoopJoin().join(TemporalRelation([]), paper_s)
        assert result.pairs == []
        assert result.counters.cpu_comparisons == 0
