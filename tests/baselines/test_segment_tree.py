"""Tests for the segment tree and its join (``sgt``)."""

import random

import pytest

from repro.baselines.segment_tree import (
    SegmentTree,
    SegmentTreeJoin,
    elementary_segments,
)
from repro.core.interval import Interval
from repro.core.relation import TemporalRelation
from repro.storage.manager import StorageManager
from tests.conftest import oracle_pairs, random_relation


class TestElementarySegments:
    def test_paper_example(self):
        """Section 2: tuples [1,5], [3,9], [8,9] give the leaf segments
        [1,2], [3,5], [6,7], [8,9]."""
        relation = TemporalRelation.from_pairs([(1, 5), (3, 9), (8, 9)])
        segments = elementary_segments(relation.tuples)
        assert segments == [
            Interval(1, 2),
            Interval(3, 5),
            Interval(6, 7),
            Interval(8, 9),
        ]

    def test_segments_are_disjoint_and_cover_range(self):
        rng = random.Random(1)
        relation = random_relation(rng, 50, 200, 30)
        segments = elementary_segments(relation.tuples)
        for left, right in zip(segments, segments[1:]):
            assert left.end + 1 == right.start
        assert segments[0].start == relation.time_range.start
        assert segments[-1].end == relation.time_range.end

    def test_empty_input(self):
        assert elementary_segments([]) == []

    def test_single_tuple(self):
        relation = TemporalRelation.from_pairs([(3, 8)])
        assert elementary_segments(relation.tuples) == [Interval(3, 8)]


class TestCanonicalAssignment:
    def test_paper_duplication_example(self):
        """Tuple [3, 9] is stored twice: at [3, 5] and at [6, 9]."""
        relation = TemporalRelation.from_pairs([(1, 5), (3, 9), (8, 9)])
        tree = SegmentTree(relation, StorageManager())
        holders = []

        def visit(node):
            if node is None:
                return
            for tup in node.run.iter_tuples():
                if (tup.start, tup.end) == (3, 9):
                    holders.append(node.segment)
            visit(node.left)
            visit(node.right)

        visit(tree.root)
        assert sorted(holders) == [Interval(3, 5), Interval(6, 9)]

    def test_stored_entries_exceed_cardinality_with_long_tuples(self):
        # The long tuple does not align with the root segment, so its
        # canonical cover needs several nodes.
        relation = TemporalRelation.from_pairs(
            [(10, 90)] + [(i, i) for i in range(1, 100, 7)]
        )
        tree = SegmentTree(relation, StorageManager())
        assert tree.stored_entries() > len(relation)

    def test_stored_segments_covered_by_tuple(self):
        rng = random.Random(2)
        relation = random_relation(rng, 80, 300, 60)
        tree = SegmentTree(relation, StorageManager())

        def visit(node):
            if node is None:
                return
            for tup in node.run.iter_tuples():
                assert tup.interval.contains(node.segment)
            visit(node.left)
            visit(node.right)

        visit(tree.root)


class TestJoin:
    def test_paper_example(self, paper_r, paper_s):
        result = SegmentTreeJoin().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed + 77)
        outer = random_relation(rng, rng.randint(1, 120), 700, 90, "r")
        inner = random_relation(rng, rng.randint(1, 120), 700, 90, "s")
        result = SegmentTreeJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_no_duplicate_pairs(self):
        """The 'intersection starts before this segment' test removes
        every duplicate exactly."""
        rng = random.Random(3)
        outer = random_relation(rng, 60, 300, 150, "r")
        inner = random_relation(rng, 60, 300, 150, "s")
        result = SegmentTreeJoin().join(outer, inner)
        keys = result.pair_keys()
        assert len(keys) == len(set(keys))

    def test_duplicate_fetches_counted(self):
        """Duplicates are skipped from the result but their fetch cost is
        recorded (the overhead the paper measures)."""
        outer = TemporalRelation.from_pairs([(1, 9)], name="r")
        inner = TemporalRelation.from_pairs(
            [(1, 5), (3, 9), (8, 9)], name="s"
        )
        result = SegmentTreeJoin().join(outer, inner)
        assert result.counters.extras.get("duplicates", 0) > 0

    def test_produces_no_false_hits(self, paper_r, paper_s):
        """Every fetched non-duplicate is a result tuple."""
        result = SegmentTreeJoin().join(paper_r, paper_s)
        assert result.counters.false_hits == 0

    def test_query_outside_tree_range(self):
        outer = TemporalRelation.from_pairs([(1000, 1001)], name="r")
        inner = TemporalRelation.from_pairs([(1, 5)], name="s")
        assert SegmentTreeJoin().join(outer, inner).pairs == []

    def test_point_query_example(self):
        """The paper's [5, 6] query fetches r2 twice but reports once."""
        outer = TemporalRelation.from_pairs([(5, 6)], name="r")
        inner = TemporalRelation.from_pairs(
            [(1, 5), (3, 9), (8, 9)], name="s"
        )
        result = SegmentTreeJoin().join(outer, inner)
        payloads = sorted(b.payload for _, b in result.pairs)
        assert payloads == [0, 1]  # [1,5] and [3,9] overlap [5,6]
        assert result.counters.extras.get("duplicates", 0) >= 1
