"""Tests for the spatially partitioned temporal join (``spj``)."""

import random

import pytest

from repro.baselines.spatial_grid import SpatialGridJoin
from repro.core.interval import Interval
from repro.core.relation import TemporalRelation
from tests.conftest import oracle_pairs, random_relation


class TestCorrectness:
    def test_paper_example(self, paper_r, paper_s):
        result = SpatialGridJoin(grid_size=4).join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("grid_size", [1, 3, 16])
    def test_matches_oracle_random(self, seed, grid_size):
        rng = random.Random(seed * 10 + grid_size)
        outer = random_relation(rng, rng.randint(1, 100), 700, 120, "r")
        inner = random_relation(rng, rng.randint(1, 100), 700, 120, "s")
        result = SpatialGridJoin(grid_size=grid_size).join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_grid_of_one_degenerates_to_nested_loop(self, paper_r, paper_s):
        result = SpatialGridJoin(grid_size=1).join(paper_r, paper_s)
        assert result.details["outer_regions"] == 1
        assert result.details["inner_regions"] == 1
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            SpatialGridJoin(grid_size=0)


class TestParameterBehaviour:
    def test_regions_only_upper_triangle(self):
        """Interval points satisfy end >= start, so populated regions
        sit on or above the diagonal."""
        rng = random.Random(3)
        outer = random_relation(rng, 5, 1000, 100, "r")
        inner = random_relation(rng, 200, 1000, 100, "s")
        join = SpatialGridJoin(grid_size=8)
        result = join.join(outer, inner)
        assert result.details["inner_regions"] <= 8 * 9 // 2

    def test_finer_grid_fewer_false_hits(self):
        rng = random.Random(4)
        outer = random_relation(rng, 150, 3000, 200, "r")
        inner = random_relation(rng, 150, 3000, 200, "s")
        coarse = SpatialGridJoin(grid_size=2).join(outer, inner)
        fine = SpatialGridJoin(grid_size=32).join(outer, inner)
        assert fine.counters.false_hits < coarse.counters.false_hits

    def test_finer_grid_more_region_accesses(self):
        rng = random.Random(4)
        outer = random_relation(rng, 150, 3000, 200, "r")
        inner = random_relation(rng, 150, 3000, 200, "s")
        coarse = SpatialGridJoin(grid_size=2).join(outer, inner)
        fine = SpatialGridJoin(grid_size=32).join(outer, inner)
        assert (
            fine.counters.partition_accesses
            > coarse.counters.partition_accesses
        )

    def test_long_lived_tuples_spread_regions(self):
        """Long-lived tuples land far off the diagonal, populating more
        region rows and forcing more region pairs to be scanned."""
        from repro.workloads import long_lived_mixture

        range_ = Interval(1, 2**14)
        outer = long_lived_mixture(200, 0.0, range_, seed=1, name="r")
        short = long_lived_mixture(200, 0.0, range_, seed=2, name="s")
        longs = long_lived_mixture(200, 0.8, range_, seed=2, name="s")
        join = SpatialGridJoin(grid_size=16)
        cheap = join.join(outer, short)
        costly = join.join(outer, longs)
        assert (
            costly.details["inner_regions"] > cheap.details["inner_regions"]
        )
        assert (
            costly.counters.partition_accesses
            >= cheap.counters.partition_accesses
        )

    def test_empty_inputs(self, paper_s):
        empty = TemporalRelation([])
        assert SpatialGridJoin().join(empty, paper_s).pairs == []
