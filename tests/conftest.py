"""Shared fixtures: the paper's running example and random-relation
helpers.

The canonical sample relations reproduce Figures 1 and 2 exactly.  The
interval endpoints not printed in the paper were solved from its stated
facts: the lazy-partition-list of Example 5, the Q=[2012-5] false hits,
the Figure 1 join output (8 results, 3 false hits, 5 partition accesses)
and the SFR of 14/7 = 2 — months are mapped to integers 1..12.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro import TemporalRelation
from repro.core.relation import TemporalTuple


def make_paper_s() -> TemporalRelation:
    """Relation s of Figure 2 (time range 2012-1 .. 2012-12)."""
    return TemporalRelation.from_records(
        [
            (1, 1, "s1"),
            (2, 3, "s2"),
            (2, 5, "s3"),
            (5, 11, "s4"),
            (5, 5, "s5"),
            (6, 10, "s6"),
            (8, 12, "s7"),
        ],
        name="s",
    )


def make_paper_r() -> TemporalRelation:
    """Relation r of Figure 1 (time range 2012-5 .. 2012-11)."""
    return TemporalRelation.from_records(
        [(5, 5, "r1"), (6, 6, "r2"), (8, 11, "r3")],
        name="r",
    )


@pytest.fixture
def paper_s() -> TemporalRelation:
    return make_paper_s()


@pytest.fixture
def paper_r() -> TemporalRelation:
    return make_paper_r()


def random_relation(
    rng: random.Random,
    cardinality: int,
    range_size: int = 500,
    max_duration: int = 50,
    name: str = "r",
) -> TemporalRelation:
    """Small random relation for cross-checking algorithms."""
    tuples: List[TemporalTuple] = []
    for index in range(cardinality):
        start = rng.randint(0, range_size)
        duration = rng.randint(1, max_duration)
        tuples.append(TemporalTuple(start, start + duration - 1, index))
    return TemporalRelation(tuples, name=name)


def oracle_pairs(
    outer: TemporalRelation, inner: TemporalRelation
) -> List[Tuple]:
    """Sorted canonical keys of the true overlap-join result."""
    keys = []
    for outer_tuple in outer:
        for inner_tuple in inner:
            if outer_tuple.overlaps(inner_tuple):
                keys.append(
                    (
                        outer_tuple.start,
                        outer_tuple.end,
                        outer_tuple.payload,
                        inner_tuple.start,
                        inner_tuple.end,
                        inner_tuple.payload,
                    )
                )
    return sorted(keys)
