"""Tests for the run-report diff (repro.obs.compare)."""

import json

from repro.obs.compare import (
    DEFAULT_REGRESSION_THRESHOLD,
    compare_reports,
    format_comparison,
    main,
)


def make_report(
    algorithm="oip",
    elapsed_ms=10.0,
    pairs=100,
    counters=None,
    resilience=None,
    phases=None,
):
    return {
        "version": 1,
        "algorithm": algorithm,
        "elapsed_ms": elapsed_ms,
        "completed": True,
        "result": {"pairs": pairs, "false_hit_ratio": 0.25},
        "config": {
            "device": "main-memory",
            "weights": {"cpu": 0.5, "io": 10.0},
        },
        "counters": counters if counters is not None else {"cpu": 10},
        "resilience": resilience if resilience is not None else {},
        "phases": phases if phases is not None else [],
        "trace": {
            "spans": 1,
            "events": 0,
            "root": {"name": "join", "start_ms": 0.0, "duration_ms": 0.0},
        },
    }


class TestCompareReports:
    def test_identical_reports_have_no_deltas(self):
        report = make_report(
            phases=[{"name": "probe", "duration_ms": 5.0, "spans": 1}]
        )
        comparison = compare_reports(report, report)
        assert comparison["counters"] == []
        assert comparison["resilience"] == []
        assert comparison["regressions"] == 0
        assert comparison["headline"]["elapsed_ms"]["delta"] == 0.0
        probe = comparison["phases"][0]
        assert probe["delta_ms"] == 0.0
        assert probe["regression"] is False

    def test_counter_deltas_only_for_differing_keys(self):
        base = make_report(counters={"cpu": 10, "reads": 5})
        other = make_report(counters={"cpu": 10, "reads": 8, "writes": 2})
        rows = compare_reports(base, other)["counters"]
        assert rows == [
            {"name": "reads", "base": 5, "other": 8, "delta": 3},
            {"name": "writes", "base": 0, "other": 2, "delta": 2},
        ]

    def test_phase_regression_flagged_above_threshold(self):
        base = make_report(
            phases=[
                {"name": "probe", "duration_ms": 10.0, "spans": 1},
                {"name": "oipcreate", "duration_ms": 2.0, "spans": 2},
            ]
        )
        other = make_report(
            phases=[
                {"name": "probe", "duration_ms": 12.0, "spans": 1},
                {"name": "oipcreate", "duration_ms": 2.1, "spans": 2},
            ]
        )
        comparison = compare_reports(
            base, other, threshold=DEFAULT_REGRESSION_THRESHOLD
        )
        by_name = {row["name"]: row for row in comparison["phases"]}
        assert by_name["probe"]["regression"] is True  # +20% > 10%
        assert by_name["oipcreate"]["regression"] is False  # +5%
        assert comparison["regressions"] == 1

    def test_threshold_is_configurable(self):
        base = make_report(
            phases=[{"name": "probe", "duration_ms": 10.0, "spans": 1}]
        )
        other = make_report(
            phases=[{"name": "probe", "duration_ms": 12.0, "spans": 1}]
        )
        assert compare_reports(base, other, threshold=0.5)["regressions"] == 0

    def test_phase_only_in_other_has_no_ratio(self):
        base = make_report(phases=[])
        other = make_report(
            phases=[{"name": "enumerate", "duration_ms": 1.0, "spans": 1}]
        )
        row = compare_reports(base, other)["phases"][0]
        assert row["ratio"] is None
        assert row["regression"] is False


class TestFormatComparison:
    def test_table_contains_sections(self):
        base = make_report(
            counters={"cpu": 10},
            phases=[{"name": "probe", "duration_ms": 10.0, "spans": 1}],
        )
        other = make_report(
            counters={"cpu": 15},
            phases=[{"name": "probe", "duration_ms": 20.0, "spans": 1}],
        )
        text = format_comparison(compare_reports(base, other))
        assert "compare: oip (base) vs oip (other)" in text
        assert "phase times:" in text
        assert "REGRESSION" in text
        assert "counters deltas:" in text
        assert "cpu" in text

    def test_identical_sections_say_so(self):
        report = make_report()
        text = format_comparison(compare_reports(report, report))
        assert "(identical)" in text


class TestMain:
    def write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_exit_zero_and_table(self, tmp_path, capsys):
        base = self.write(
            tmp_path,
            "base.json",
            make_report(
                phases=[{"name": "probe", "duration_ms": 5.0, "spans": 1}]
            ),
        )
        other = self.write(
            tmp_path,
            "other.json",
            make_report(
                phases=[{"name": "probe", "duration_ms": 9.0, "spans": 1}]
            ),
        )
        assert main([base, other]) == 0
        out = capsys.readouterr().out
        assert "phase times:" in out
        assert "probe" in out

    def test_json_output(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_report())
        other = self.write(tmp_path, "other.json", make_report(pairs=101))
        assert main([base, other, "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["headline"]["pairs"]["delta"] == 1
