"""Deterministic quantile estimation: the estimate is a pure function
of the bucket layout and counts — observation order, merge order, and
repeated evaluation cannot change it."""

import random

import pytest

from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    bucket_quantile,
    quantiles_from_counts,
    summarize_latency,
)
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS_MS, Histogram


def _histogram(values, name="h"):
    h = Histogram(name, DEFAULT_LATENCY_BUCKETS_MS)
    for value in values:
        h.observe(value)
    return h


class TestBucketQuantile:
    def test_worked_example(self):
        # 2 observations in (0, 1], 2 in (1, 2], none past 4.
        assert bucket_quantile([1.0, 2.0, 4.0], [0, 2, 4, 4], 0.5) == 2.0
        assert bucket_quantile([1.0, 2.0, 4.0], [0, 2, 4, 4], 0.25) == 1.5

    def test_empty_histogram_is_zero(self):
        assert bucket_quantile([1.0, 2.0], [0, 0, 0], 0.5) == 0.0

    def test_q_bounds(self):
        buckets = [1.0, 2.0, 4.0]
        counts = [1, 3, 4, 4]
        assert bucket_quantile(buckets, counts, 0.0) == 0.0
        assert bucket_quantile(buckets, counts, 1.0) == 4.0

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            bucket_quantile([1.0], [0, 0], -0.1)
        with pytest.raises(ValueError, match="quantile"):
            bucket_quantile([1.0], [0, 0], 1.5)

    def test_count_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="Inf bucket"):
            bucket_quantile([1.0, 2.0], [0, 1], 0.5)

    def test_overflow_clamps_to_highest_finite_bound(self):
        # Every observation past the last finite bucket.
        assert bucket_quantile([1.0, 2.0], [0, 0, 5], 0.99) == 2.0

    def test_boundary_value_lands_in_its_upper_bucket(self):
        # A single observation exactly on a bound: quantile(1.0) must
        # return the bound exactly (bisect_left semantics).
        h = _histogram([5.0])
        assert h.quantile(1.0) == 5.0

    def test_matches_histogram_observe_semantics(self):
        h = _histogram([0.05, 0.3, 0.3, 7.0, 40.0])
        snap = h.snapshot()
        assert h.quantile(0.5) == bucket_quantile(
            snap["buckets"], snap["counts"], 0.5
        )


class TestDeterminism:
    def test_observation_order_is_irrelevant(self):
        values = [random.Random(7).uniform(0.01, 900.0) for _ in range(500)]
        shuffled = list(values)
        random.Random(13).shuffle(shuffled)
        a, b = _histogram(values), _histogram(shuffled)
        for q in (0.0, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert a.quantile(q) == b.quantile(q)

    def test_merged_counts_equal_single_stream(self):
        rng = random.Random(21)
        stream_a = [rng.uniform(0.01, 400.0) for _ in range(200)]
        stream_b = [rng.uniform(0.01, 400.0) for _ in range(300)]
        merged = _histogram(stream_a + stream_b)
        ha, hb = _histogram(stream_a), _histogram(stream_b)
        summed = [x + y for x, y in zip(ha.counts, hb.counts)]
        # Rebuild cumulative counts from the per-bucket merge.
        cumulative, running = [], 0
        for count in summed:
            running += count
            cumulative.append(running)
        for q in DEFAULT_QUANTILES:
            assert merged.quantile(q) == bucket_quantile(
                list(merged.buckets), cumulative, q
            )

    def test_repeated_evaluation_is_stable(self):
        h = _histogram([0.2, 1.1, 3.0, 3.0, 80.0, 2000.0])
        first = [h.quantile(q) for q in DEFAULT_QUANTILES]
        for _ in range(5):
            assert [h.quantile(q) for q in DEFAULT_QUANTILES] == first


class TestSummaries:
    def test_quantiles_from_counts_labels(self):
        out = quantiles_from_counts([1.0, 2.0], [0, 2, 2])
        assert sorted(out) == ["p50", "p95", "p99"]

    def test_fractional_quantile_label(self):
        out = quantiles_from_counts([1.0], [1, 1], qs=(0.999,))
        assert list(out) == ["p99_9"]

    def test_summarize_latency(self):
        h = _histogram([1.0, 3.0])
        summary = summarize_latency(h.snapshot())
        assert summary["count"] == 2
        assert summary["mean_ms"] == pytest.approx(2.0)
        assert set(summary) == {
            "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
        }

    def test_summarize_empty(self):
        summary = summarize_latency(Histogram("h", [1.0]).snapshot())
        assert summary == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0,
        }
