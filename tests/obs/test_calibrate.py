"""Cost-constant calibration: exact recovery on clean corpora,
degenerate-corpus fallbacks, persistence, and the CLI."""

import json

import pytest

from repro.obs.calibrate import (
    Calibration,
    CalibrationError,
    Observation,
    calibrate_reports,
    fit_observations,
    load_calibration,
    main as calibrate_main,
    observation_from_report,
    save_calibration,
)
from repro.storage.metrics import CostWeights


def _obs(rows):
    return [Observation(cpu=c, io=i, elapsed_ms=t) for c, i, t in rows]


class TestFit:
    def test_exact_recovery_of_planted_constants(self):
        cpu_ms, io_ms = 0.002, 0.5
        rows = [
            (1000.0, 10.0, 1000.0 * cpu_ms + 10.0 * io_ms),
            (5000.0, 80.0, 5000.0 * cpu_ms + 80.0 * io_ms),
            (20000.0, 300.0, 20000.0 * cpu_ms + 300.0 * io_ms),
            (400.0, 900.0, 400.0 * cpu_ms + 900.0 * io_ms),
        ]
        cal = fit_observations(_obs(rows))
        assert cal.cpu_ms == pytest.approx(cpu_ms)
        assert cal.io_ms == pytest.approx(io_ms)
        assert cal.r_squared == pytest.approx(1.0)
        assert cal.residual_rms_ms == pytest.approx(0.0, abs=1e-9)
        assert cal.samples == 4

    def test_predict_ms_is_equation_two(self):
        cal = Calibration(
            cpu_ms=0.5, io_ms=10.0, r_squared=1.0, samples=1,
            residual_rms_ms=0.0,
        )
        assert cal.predict_ms(100.0, 3.0) == pytest.approx(80.0)

    def test_collinear_corpus_falls_back_to_one_predictor(self):
        # io is always exactly cpu / 10: the 2x2 system is singular.
        rows = [(c, c / 10.0, c * 0.01) for c in (100.0, 500.0, 2000.0)]
        cal = fit_observations(_obs(rows))
        assert cal.io_ms == 0.0
        assert cal.cpu_ms > 0.0
        # All cost attributed to the surviving predictor, residual-free.
        assert cal.predict_ms(1000.0, 100.0) == pytest.approx(10.0)

    def test_io_only_corpus(self):
        rows = [(0.0, 10.0, 5.0), (0.0, 40.0, 20.0)]
        cal = fit_observations(_obs(rows))
        assert cal.cpu_ms == 0.0
        assert cal.io_ms == pytest.approx(0.5)

    def test_negative_constant_clamped_and_refit(self):
        # Strongly anti-correlated noise drives one constant negative in
        # the unconstrained solution; the fit must stay physical.
        rows = [
            (1000.0, 100.0, 10.0),
            (2000.0, 90.0, 20.0),
            (4000.0, 10.0, 40.0),
        ]
        cal = fit_observations(_obs(rows))
        assert cal.cpu_ms >= 0.0 and cal.io_ms >= 0.0

    def test_empty_and_all_zero_corpora_raise(self):
        with pytest.raises(CalibrationError, match="no usable"):
            fit_observations([])
        with pytest.raises(CalibrationError, match="no usable"):
            fit_observations(_obs([(0.0, 0.0, 5.0)]))

    def test_to_weights(self):
        cal = Calibration(
            cpu_ms=0.01, io_ms=0.2, r_squared=1.0, samples=2,
            residual_rms_ms=0.0,
        )
        assert cal.to_weights() == CostWeights(cpu=0.01, io=0.2)
        dead = Calibration(
            cpu_ms=0.0, io_ms=0.0, r_squared=0.0, samples=2,
            residual_rms_ms=0.0,
        )
        with pytest.raises(CalibrationError, match="no cost signal"):
            dead.to_weights()


class TestReports:
    def test_observation_from_report(self):
        report = {
            "elapsed_ms": 12.5,
            "counters": {
                "cpu_comparisons": 100,
                "block_reads": 7,
                "block_writes": 3,
            },
        }
        obs = observation_from_report(report, "r.json")
        assert obs == Observation(
            cpu=100.0, io=10.0, elapsed_ms=12.5, source="r.json"
        )

    def test_malformed_reports_raise(self):
        with pytest.raises(CalibrationError, match="no counters"):
            observation_from_report({"elapsed_ms": 1.0})
        with pytest.raises(CalibrationError, match="no elapsed_ms"):
            observation_from_report({"counters": {}})


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "cal.json")
        cal = fit_observations(
            _obs([(100.0, 5.0, 3.0), (400.0, 50.0, 30.0)])
        )
        save_calibration(path, cal)
        assert load_calibration(path) == cal
        document = json.loads(open(path).read())
        assert document["kind"] == "cost_calibration"

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "not_cal.json")
        with open(path, "w") as handle:
            json.dump({"kind": "run_report"}, handle)
        with pytest.raises(CalibrationError, match="not a calibration"):
            load_calibration(path)


class TestCli:
    def _write_report(self, path, cardinality, seed, cpu_ms, io_ms):
        """Run a real join, then plant a noise-free elapsed_ms so the
        fit must recover (cpu_ms, io_ms) exactly from schema-valid
        report files."""
        from repro.core.interval import Interval
        from repro.core.join import OIPJoin
        from repro.obs.report import write_report
        from repro.workloads import long_lived_mixture

        outer = long_lived_mixture(
            cardinality, 0.3, Interval(1, 5_000), seed=seed, name="outer"
        )
        inner = long_lived_mixture(
            cardinality, 0.3, Interval(1, 5_000), seed=seed + 1, name="inner"
        )
        result = OIPJoin(collect_report=True).join(outer, inner)
        report = dict(result.report)
        counters = report["counters"]
        io = counters["block_reads"] + counters["block_writes"]
        report["elapsed_ms"] = (
            counters["cpu_comparisons"] * cpu_ms + io * io_ms
        )
        write_report(report, path)

    def test_cli_fits_and_writes(self, tmp_path, capsys):
        cpu_ms, io_ms = 0.001, 0.1
        reports = []
        for index, cardinality in enumerate((60, 150, 400)):
            path = str(tmp_path / f"r{index}.json")
            self._write_report(path, cardinality, 10 + index, cpu_ms, io_ms)
            reports.append(path)
        out = str(tmp_path / "cal.json")
        assert calibrate_main(reports + ["--out", out, "--json"]) == 0
        loaded = load_calibration(out)
        assert loaded.cpu_ms == pytest.approx(cpu_ms)
        assert loaded.io_ms == pytest.approx(io_ms)
        assert loaded.samples == 3
        printed = json.loads(
            capsys.readouterr().out.split("wrote")[0]
        )
        assert printed["kind"] == "cost_calibration"

    def test_cli_failure_exit_code(self, tmp_path, capsys):
        assert calibrate_main([str(tmp_path / "missing.json")]) == 2
        assert "calibration failed" in capsys.readouterr().err

    def test_calibrate_reports_validates(self, tmp_path):
        bogus = str(tmp_path / "bogus.json")
        with open(bogus, "w") as handle:
            json.dump({"kind": "something_else"}, handle)
        with pytest.raises(ValueError):
            calibrate_reports([bogus])
