"""Wire-propagation trace plumbing: trace ids, the server-side ring of
finished trees, and client/server stitching."""

import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TraceBuffer,
    Tracer,
    new_trace_id,
    stitch_traces,
)


def _tree(trace_id, name="service.query"):
    return {
        "name": name,
        "start_ms": 0.0,
        "duration_ms": 1.0,
        "attributes": {"trace_id": trace_id},
    }


class TestTraceIds:
    def test_ids_are_short_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex or raise

    def test_tracer_stamps_root_with_trace_id(self):
        tracer = Tracer(trace_id="cafe")
        with tracer.span("service.query"):
            with tracer.span("join"):
                pass
        root = tracer.last_root
        assert root.attributes["trace_id"] == "cafe"
        assert "trace_id" not in root.children[0].attributes

    def test_null_tracer_has_no_trace_id(self):
        assert NULL_TRACER.trace_id is None


class TestTraceBuffer:
    def test_fifo_and_len(self):
        buffer = TraceBuffer(capacity=8)
        for i in range(3):
            buffer.add(_tree(f"t{i}"))
        assert len(buffer) == 3
        assert [t["attributes"]["trace_id"] for t in buffer.dump()] == [
            "t0", "t1", "t2",
        ]

    def test_eviction_counts_dropped(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(5):
            buffer.add(_tree(f"t{i}"))
        assert len(buffer) == 2
        assert buffer.dropped == 3
        assert [t["attributes"]["trace_id"] for t in buffer.dump()] == [
            "t3", "t4",
        ]

    def test_dump_filters_by_trace_id_and_limit(self):
        buffer = TraceBuffer()
        buffer.add(_tree("a"))
        buffer.add(_tree("b"))
        buffer.add(_tree("a"))
        assert len(buffer.dump(trace_id="a")) == 2
        assert len(buffer.dump(limit=1)) == 1
        assert buffer.dump(limit=1)[0]["attributes"]["trace_id"] == "a"
        assert buffer.dump(trace_id="missing") == []

    def test_clear(self):
        buffer = TraceBuffer()
        buffer.add(_tree("a"))
        buffer.clear()
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)

    def test_concurrent_adds_are_safe(self):
        buffer = TraceBuffer(capacity=64)
        barrier = threading.Barrier(4)

        def worker(worker_id):
            barrier.wait()
            for i in range(50):
                buffer.add(_tree(f"w{worker_id}-{i}"))

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(buffer) == 64
        assert buffer.dropped == 200 - 64


class TestStitching:
    def test_server_tree_grafts_under_matching_client_span(self):
        client = {
            "name": "client.request",
            "start_ms": 0.0,
            "duration_ms": 5.0,
            "attributes": {"op": "join", "trace_id": "abc"},
            "children": [],
        }
        server = _tree("abc")
        merged = stitch_traces(client, server)
        assert merged["children"][-1] is server
        # The input client tree is left untouched.
        assert client["children"] == []

    def test_anchor_found_anywhere_in_client_tree(self):
        client = {
            "name": "session",
            "attributes": {},
            "children": [
                {"name": "client.request", "attributes": {"trace_id": "x"}},
                {"name": "client.request", "attributes": {"trace_id": "y"}},
            ],
        }
        merged = stitch_traces(client, _tree("y"))
        anchors = merged["children"]
        assert "children" not in anchors[0]
        assert anchors[1]["children"][0]["attributes"]["trace_id"] == "y"

    def test_missing_ids_raise(self):
        client = {"name": "client.request", "attributes": {"trace_id": "a"}}
        with pytest.raises(ValueError, match="no trace_id"):
            stitch_traces(client, {"name": "service.query", "attributes": {}})
        with pytest.raises(ValueError, match="no span with trace_id"):
            stitch_traces(client, _tree("other"))
