"""Tests for the span/event tracer and its JSONL sink."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Tracer,
    span_tree,
)


class FakeClock:
    """Deterministic clock: each call advances by *step* seconds."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("join", algorithm="oip"):
            with tracer.span("oipcreate", side="outer"):
                pass
            with tracer.span("probe"):
                with tracer.span("probe.partition", partition=0):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "join"
        assert root.attributes == {"algorithm": "oip"}
        assert [child.name for child in root.children] == [
            "oipcreate",
            "probe",
        ]
        probe = root.children[1]
        assert [child.name for child in probe.children] == ["probe.partition"]
        assert tracer.span_count == 4
        assert tracer.last_root is root

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("join"):
            pass
        root = tracer.roots[0]
        assert root.duration_ms > 0
        assert root.end_ms is not None

    def test_mid_span_attribute(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("oipcreate") as span:
            span.set("partitions", 27)
        assert tracer.roots[0].attributes["partitions"] == 27

    def test_events_attach_to_innermost_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("join"):
            with tracer.span("probe"):
                tracer.event("storage.retry", block_id=7, attempt=1)
        root = tracer.roots[0]
        assert root.events == []
        probe = root.children[0]
        assert len(probe.events) == 1
        event = probe.events[0]
        assert event.name == "storage.retry"
        assert event.attributes == {"block_id": 7, "attempt": 1}
        assert tracer.event_count == 1

    def test_event_without_open_span_is_counted(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("governor.checkpoint", partitions_completed=3)
        assert tracer.event_count == 1

    def test_exception_records_error_and_closes_tree(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("join"):
                with tracer.span("probe"):
                    raise RuntimeError("boom")
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.attributes["error"] == "RuntimeError"
        assert root.children[0].attributes["error"] == "RuntimeError"
        # Nothing left open: a fresh span becomes a new root.
        with tracer.span("join"):
            pass
        assert len(tracer.roots) == 2

    def test_reuse_across_runs_accumulates_roots(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("join"):
                pass
        assert len(tracer.roots) == 3
        assert tracer.span_count == 3

    def test_as_dict_shape(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("join", algorithm="oip"):
            tracer.event("boundary", index=0)
            with tracer.span("probe"):
                pass
        data = tracer.roots[0].as_dict()
        assert data["name"] == "join"
        assert data["attributes"] == {"algorithm": "oip"}
        assert data["events"][0]["name"] == "boundary"
        assert data["children"][0]["name"] == "probe"
        # JSON-serializable end to end.
        json.dumps(data)

    def test_non_json_attribute_coerced_to_repr(self):
        tracer = Tracer(clock=FakeClock())
        marker = object()
        with tracer.span("join", weird=marker):
            pass
        data = tracer.roots[0].as_dict()
        assert data["attributes"]["weird"] == repr(marker)
        json.dumps(data)


class TestNullTracer:
    def test_singleton_and_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False

    def test_span_returns_shared_noop(self):
        first = NULL_TRACER.span("join", algorithm="oip")
        second = NULL_TRACER.span("probe")
        assert first is second  # preallocated: no per-call allocation
        with first as span:
            span.set("k", 1)  # silently ignored
        assert first.as_dict()["name"] == "noop"

    def test_event_returns_none_and_counts_nothing(self):
        assert NULL_TRACER.event("storage.retry", block_id=1) is None
        assert NULL_TRACER.event_count == 0
        assert NULL_TRACER.span_count == 0
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.last_root is None


class TestJsonlSink:
    def test_streams_spans_and_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer(sink=sink, clock=FakeClock())
        with tracer.span("join"):
            tracer.event("boundary", index=0)
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == sink.lines_written == 2
        records = [json.loads(line) for line in lines]
        kinds = [record["kind"] for record in records]
        assert kinds == ["event", "span"]  # events stream first
        span_record = records[1]
        assert span_record["name"] == "join"
        assert span_record["events"][0]["name"] == "boundary"

    def test_emit_after_close_is_ignored(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.emit("event", {"name": "late"})
        assert sink.lines_written == 0
        sink.close()  # idempotent


class TestSpanTree:
    def test_none_degrades_to_stub(self):
        stub = span_tree(None)
        assert stub == {"name": "join", "start_ms": 0.0, "duration_ms": 0.0}

    def test_real_span_round_trips(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("join"):
            pass
        assert span_tree(tracer.roots[0])["name"] == "join"
