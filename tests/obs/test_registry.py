"""Tests for the metrics registry: instruments, determinism, exposition."""

import json
import random

import pytest

from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_rejects_negative(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.snapshot() == 12


class TestHistogram:
    def test_fixed_buckets_validated(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [1, 1])
        with pytest.raises(ValueError):
            Histogram("h", [2, 1])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, float("inf")])

    def test_observe_le_semantics(self):
        """A value equal to a bound lands in that bound's bucket
        (Prometheus ``le`` semantics)."""
        histogram = Histogram("h", [1, 4, 16])
        for value in (0, 1, 2, 4, 5, 100):
            histogram.observe(value)
        # Non-cumulative: (<=1): 0,1 -> 2; (<=4): 2,4 -> 2; (<=16): 5 -> 1;
        # +Inf: 100 -> 1.
        assert histogram.counts == [2, 2, 1, 1]
        snap = histogram.snapshot()
        assert snap["buckets"] == [1.0, 4.0, 16.0]
        assert snap["counts"] == [2, 4, 5, 6]  # cumulative on export
        assert snap["count"] == 6
        assert snap["sum"] == 112

    def test_default_bucket_families(self):
        assert DEFAULT_COUNT_BUCKETS[0] == 1
        assert all(
            b2 > b1
            for b1, b2 in zip(DEFAULT_COUNT_BUCKETS, DEFAULT_COUNT_BUCKETS[1:])
        )
        assert all(
            b2 > b1
            for b1, b2 in zip(
                DEFAULT_LATENCY_BUCKETS_MS, DEFAULT_LATENCY_BUCKETS_MS[1:]
            )
        )

    def test_deterministic_snapshot_same_seed(self):
        """Same seed => byte-identical exported snapshot (the bucket
        boundaries are fixed, never rebalanced from data)."""

        def run(seed: int) -> str:
            registry = MetricsRegistry()
            histogram = registry.histogram("oip.partition_blocks")
            rng = random.Random(seed)
            for _ in range(500):
                histogram.observe(rng.randint(0, 2_000))
            return registry.to_json()

        assert run(seed=42) == run(seed=42)
        assert run(seed=42) != run(seed=43)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("join.pairs")
        second = registry.counter("join.pairs")
        assert first is second
        first.inc(3)
        assert registry.get("join.pairs").snapshot() == 3
        assert "join.pairs" in registry
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=[1, 2])
        registry.histogram("h", buckets=[1, 2])  # identical: fine
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=[1, 2, 3])

    def test_publish_dict_set_by_increment(self):
        """Re-publishing a monotone snapshot never double-counts."""
        registry = MetricsRegistry()
        registry.publish_dict("admission", {"admitted": 5, "rejected": 1})
        registry.publish_dict("admission", {"admitted": 8, "rejected": 1})
        assert registry.get("admission.admitted").snapshot() == 8
        assert registry.get("admission.rejected").snapshot() == 1

    def test_publish_dict_gauges(self):
        registry = MetricsRegistry()
        registry.publish_dict("pool", {"active": 3}, kind="gauge")
        registry.publish_dict("pool", {"active": 1}, kind="gauge")
        assert registry.get("pool.active").snapshot() == 1

    def test_snapshot_sorted_and_grouped(self):
        registry = MetricsRegistry()
        registry.counter("b.counter").inc(2)
        registry.counter("a.counter").inc(1)
        registry.gauge("z.gauge").set(7)
        registry.histogram("m.hist", buckets=[1, 2]).observe(1)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.counter", "b.counter"]
        assert list(snap["gauges"]) == ["z.gauge"]
        assert list(snap["histograms"]) == ["m.hist"]
        json.dumps(snap)

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c"] == 3


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("join.counters.block_reads", help="device reads").inc(
            42
        )
        registry.gauge("buffer.resident_blocks").set(7)
        text = registry.to_prometheus_text()
        assert "# HELP join_counters_block_reads device reads" in text
        assert "# TYPE join_counters_block_reads counter" in text
        assert "join_counters_block_reads 42" in text
        assert "# TYPE buffer_resident_blocks gauge" in text
        assert "buffer_resident_blocks 7" in text
        assert text.endswith("\n")

    def test_histogram_lines_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=[1, 4])
        for value in (0, 2, 100):
            histogram.observe(value)
        text = registry.to_prometheus_text()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="4"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 102" in text
        assert "h_count 3" in text

    def test_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("join.counters.extra.block-reads").inc(1)
        text = registry.to_prometheus_text()
        assert "join_counters_extra_block_reads 1" in text

    def test_empty_registry_is_empty_text(self):
        assert MetricsRegistry().to_prometheus_text() == ""
