"""QueryLog: atomic NDJSON lines, deterministic per-trace sampling,
severity gating, and the slow-query lane."""

import io
import threading

import pytest

from repro.obs.log import (
    LEVELS,
    NULL_QUERY_LOG,
    NullQueryLog,
    QueryLog,
    _sample_passes,
    read_log_lines,
)


def _log(**kwargs):
    stream = io.StringIO()
    return QueryLog(stream, clock=lambda: 123.0, **kwargs), stream


class TestEmission:
    def test_one_line_per_event_sorted_keys(self):
        log, stream = _log()
        assert log.emit("query.completed", trace_id="abc", elapsed_ms=4.2)
        (record,) = read_log_lines(io.StringIO(stream.getvalue()))
        assert record == {
            "elapsed_ms": 4.2,
            "event": "query.completed",
            "level": "info",
            "trace_id": "abc",
            "ts": 123.0,
        }
        line = stream.getvalue()
        assert line.endswith("\n") and line.count("\n") == 1
        assert log.emitted == 1 and log.dropped == 0

    def test_severity_gate(self):
        log, stream = _log(min_level="warning")
        assert not log.emit("noise", level="info")
        assert log.emit("problem", level="warning")
        events = [r["event"] for r in read_log_lines(io.StringIO(stream.getvalue()))]
        assert events == ["problem"]
        assert log.dropped == 1

    def test_unknown_level_raises(self):
        log, _ = _log()
        with pytest.raises(ValueError, match="unknown level"):
            log.emit("x", level="loud")
        with pytest.raises(ValueError, match="unknown level"):
            QueryLog(io.StringIO(), min_level="loud")

    def test_exactly_one_of_stream_or_path(self):
        with pytest.raises(ValueError, match="exactly one"):
            QueryLog()
        with pytest.raises(ValueError, match="exactly one"):
            QueryLog(io.StringIO(), path="/tmp/x")

    def test_path_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "q.ndjson")
        log = QueryLog(path=path)
        log.emit("a")
        log.emit("b")
        log.close()
        assert [r["event"] for r in read_log_lines(path)] == ["a", "b"]


class TestSampling:
    def test_sampling_is_deterministic_per_trace(self):
        kept = {
            tid
            for tid in (f"trace-{i}" for i in range(200))
            if _sample_passes(tid, 0.25)
        }
        # The same ids pass on every evaluation (pure hash), and the
        # rate is roughly honoured.
        for tid in (f"trace-{i}" for i in range(200)):
            assert _sample_passes(tid, 0.25) == (tid in kept)
        assert 20 <= len(kept) <= 80

    def test_sampled_events_respect_rate(self):
        log, stream = _log(sample_rate=0.0)
        assert not log.emit("hot", trace_id="t1", sampled=True)
        # warning+ bypasses sampling entirely.
        assert log.emit("hot", trace_id="t1", sampled=True, level="warning")
        # No trace id -> nothing to hash -> always kept.
        assert log.emit("hot", sampled=True)
        events = [r["event"] for r in read_log_lines(io.StringIO(stream.getvalue()))]
        assert len(events) == 2

    def test_rate_one_keeps_everything(self):
        log, _ = _log(sample_rate=1.0)
        assert all(
            log.emit("e", trace_id=f"t{i}", sampled=True) for i in range(50)
        )

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError, match="sample_rate"):
            QueryLog(io.StringIO(), sample_rate=1.5)


class TestSlowLane:
    def test_slow_query_promoted_to_warning_unsampled(self):
        log, stream = _log(sample_rate=0.0, slow_query_ms=10.0)
        log.query_event("query.completed", trace_id="t", elapsed_ms=3.0)
        log.query_event("query.completed", trace_id="t", elapsed_ms=10.0)
        records = read_log_lines(io.StringIO(stream.getvalue()))
        # The fast query was sampled away; the slow one always lands.
        assert len(records) == 1
        (slow,) = records
        assert slow["level"] == "warning"
        assert slow["slow"] is True
        assert slow["elapsed_ms"] == 10.0

    def test_is_slow_threshold_inclusive(self):
        log, _ = _log(slow_query_ms=5.0)
        assert not log.is_slow(4.9)
        assert log.is_slow(5.0)
        assert not log.is_slow(None)

    def test_no_threshold_never_slow(self):
        log, stream = _log()
        log.query_event("query.completed", trace_id="t", elapsed_ms=1e9)
        (record,) = read_log_lines(io.StringIO(stream.getvalue()))
        assert record["level"] == "info" and "slow" not in record

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError, match="slow_query_ms"):
            QueryLog(io.StringIO(), slow_query_ms=-1.0)


class TestNullLog:
    def test_null_log_is_falsy_and_inert(self):
        assert not NULL_QUERY_LOG
        assert not NULL_QUERY_LOG.enabled
        assert NULL_QUERY_LOG.emit("e") is False
        assert NULL_QUERY_LOG.query_event("e", trace_id="t") is None
        assert not NULL_QUERY_LOG.is_slow(1e9)
        assert isinstance(NULL_QUERY_LOG, NullQueryLog)
        assert QueryLog(io.StringIO())  # the real sink is truthy


class TestReader:
    def test_torn_line_is_reported_with_line_number(self):
        stream = io.StringIO('{"event":"a"}\n{"event": tor\n')
        with pytest.raises(ValueError, match="line 2"):
            read_log_lines(stream)

    def test_blank_lines_skipped(self):
        stream = io.StringIO('\n{"event":"a"}\n\n')
        assert [r["event"] for r in read_log_lines(stream)] == ["a"]

    def test_bad_source_type(self):
        with pytest.raises(TypeError, match="path or stream"):
            read_log_lines(42)


class TestConcurrency:
    def test_concurrent_emitters_never_tear_lines(self):
        stream = io.StringIO()
        log = QueryLog(stream)
        barrier = threading.Barrier(8)

        def worker(worker_id):
            barrier.wait()
            for i in range(100):
                log.emit(
                    "query.completed",
                    trace_id=f"w{worker_id}-{i}",
                    payload="x" * 50,
                )

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = read_log_lines(io.StringIO(stream.getvalue()))
        assert len(records) == 800
        assert log.emitted == 800
        assert {r["trace_id"] for r in records} == {
            f"w{w}-{i}" for w in range(8) for i in range(100)
        }


def test_levels_are_ordered():
    assert (
        LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
    )
