"""Tests for run-report building, schema validation and persistence."""

import json
import os

import pytest

from repro import MetricsRegistry, OIPJoin, TemporalRelation, Tracer
from repro.obs.report import (
    REPORT_VERSION,
    ReportValidationError,
    build_report,
    dumps_report,
    load_report,
    load_schema,
    phase_table,
    validate_report,
    write_report,
)
from repro.obs.trace import Tracer as RawTracer


def small_inputs():
    outer = TemporalRelation.from_records(
        [(1, 10, "a"), (4, 8, "b"), (2, 3, "c"), (7, 20, "d")], name="outer"
    )
    inner = TemporalRelation.from_records(
        [(5, 12, "x"), (1, 2, "y"), (15, 18, "z")], name="inner"
    )
    return outer, inner


def traced_run(**kwargs):
    outer, inner = small_inputs()
    algorithm = OIPJoin(collect_report=True, **kwargs)
    return algorithm.join(outer, inner)


class TestBuildReport:
    def test_report_shape_and_schema(self):
        result = traced_run()
        report = result.report
        assert report is not None
        assert report["version"] == REPORT_VERSION
        assert report["algorithm"] == "oip"
        assert report["completed"] is True
        assert report["elapsed_ms"] == result.elapsed_ms > 0
        assert report["result"]["pairs"] == len(result.pairs)
        assert report["counters"] == result.counters.snapshot()
        assert report["resilience"] == result.resilience.snapshot()
        assert report["config"]["device"] == "main-memory"
        assert set(report["config"]["weights"]) == {"cpu", "io"}
        validate_report(report)

    def test_phases_follow_execution_order(self):
        report = traced_run().report
        names = [phase["name"] for phase in report["phases"]]
        assert names == ["derive_k", "oipcreate", "probe"]
        oipcreate = report["phases"][1]
        assert oipcreate["spans"] == 2  # outer + inner side aggregated
        assert all(phase["duration_ms"] >= 0 for phase in report["phases"])

    def test_trace_section_counts_spans(self):
        result = traced_run()
        trace = result.report["trace"]
        assert trace["spans"] >= 4  # join, derive_k, 2x oipcreate, probe...
        assert trace["root"]["name"] == "join"
        assert trace["root"]["attributes"]["algorithm"] == "oip"

    def test_external_tracer_is_used(self):
        outer, inner = small_inputs()
        tracer = Tracer()
        result = OIPJoin(tracer=tracer, collect_report=True).join(outer, inner)
        assert result.report["trace"]["spans"] == tracer.span_count
        assert tracer.last_root.name == "join"

    def test_metrics_section_present_when_registry_attached(self):
        result = traced_run(metrics=MetricsRegistry())
        metrics = result.report["metrics"]
        assert metrics is not None
        assert metrics["counters"]["join.counters.result_tuples"] == len(
            result.pairs
        )
        validate_report(result.report)

    def test_metrics_section_null_without_registry(self):
        assert traced_run().report["metrics"] is None

    def test_json_serializable(self):
        json.dumps(traced_run().report)


class TestPhaseTable:
    def test_empty_for_none(self):
        assert phase_table(None) == []

    def test_aggregates_repeated_names(self):
        tracer = RawTracer()
        with tracer.span("join"):
            with tracer.span("oipcreate"):
                pass
            with tracer.span("oipcreate"):
                pass
            with tracer.span("probe"):
                pass
        rows = phase_table(tracer.last_root)
        assert [row["name"] for row in rows] == ["oipcreate", "probe"]
        assert rows[0]["spans"] == 2
        assert rows[1]["spans"] == 1


class TestPersistence:
    def test_write_load_round_trip(self, tmp_path):
        report = traced_run().report
        path = str(tmp_path / "run.json")
        assert write_report(report, path) == path
        assert load_report(path) == report
        assert not os.path.exists(path + ".tmp")  # atomic: tmp renamed away

    def test_file_bytes_match_dumps(self, tmp_path):
        """--json stdout and --report file share one serialization."""
        report = traced_run().report
        path = str(tmp_path / "run.json")
        write_report(report, path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == dumps_report(report)

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ReportValidationError):
            load_report(str(path))


class TestValidation:
    def test_schema_loads_and_caches(self):
        schema = load_schema()
        assert schema is load_schema()
        assert "version" in schema["required"]

    def test_missing_required_key(self):
        report = traced_run().report
        broken = dict(report)
        del broken["counters"]
        with pytest.raises(ReportValidationError, match="counters"):
            validate_report(broken)

    def test_wrong_version_rejected(self):
        report = dict(traced_run().report)
        report["version"] = 99
        with pytest.raises(ReportValidationError, match="version"):
            validate_report(report)

    def test_non_integer_counter_rejected(self):
        report = traced_run().report
        broken = dict(report)
        broken["counters"] = dict(report["counters"])
        broken["counters"]["block_reads"] = "many"
        with pytest.raises(ReportValidationError, match="block_reads"):
            validate_report(broken)

    def test_negative_phase_duration_rejected(self):
        report = traced_run().report
        broken = dict(report)
        broken["phases"] = [
            {"name": "probe", "duration_ms": -1.0, "spans": 1}
        ]
        with pytest.raises(ReportValidationError, match="minimum"):
            validate_report(broken)

    def test_unexpected_top_level_key_rejected(self):
        report = dict(traced_run().report)
        report["surprise"] = True
        with pytest.raises(ReportValidationError, match="surprise"):
            validate_report(report)


class TestSequentialParallelEquivalence:
    """Acceptance: sequential and parallel runs of the same join produce
    reports with identical counter sections and schema-valid span trees."""

    def workload(self):
        from repro.workloads import long_lived_mixture
        from repro.core.interval import Interval

        time_range = Interval(1, 2 ** 16)
        outer = long_lived_mixture(300, 0.5, time_range, seed=11, name="outer")
        inner = long_lived_mixture(300, 0.5, time_range, seed=12, name="inner")
        return outer, inner

    def test_counter_sections_identical(self):
        outer, inner = self.workload()
        sequential = OIPJoin(collect_report=True).join(outer, inner)
        parallel = OIPJoin(
            parallelism=2, collect_report=True
        ).join(outer, inner)
        assert sequential.report["counters"] == parallel.report["counters"]
        assert (
            sequential.report["result"]["pairs"]
            == parallel.report["result"]["pairs"]
        )
        # Device-level resilience is schedule-deterministic across modes.
        storage_keys = sequential.resilience.STORAGE_FIELDS
        assert {
            k: sequential.report["resilience"][k] for k in storage_keys
        } == {k: parallel.report["resilience"][k] for k in storage_keys}
        validate_report(sequential.report)
        validate_report(parallel.report)
        # The parallel run additionally carries its execution report.
        assert parallel.report["execution"] is not None
        assert parallel.report["execution"]["backend"] == "thread"
        assert sequential.report["execution"] is None
