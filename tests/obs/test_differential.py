"""Differential guarantee: observability off == observability on.

The acceptance bar for the observability layer is that it *observes*
without *perturbing*: for every algorithm in the registry, running with
a tracer, a metrics registry and report collection attached must produce
bit-identical join results and cost counters to a bare run — and with
nothing attached, the code paths are the pre-observability ones.
"""

import random

import pytest

from repro import MetricsRegistry, Tracer
from repro.baselines import ALGORITHMS
from repro.obs.report import validate_report

from ..conftest import oracle_pairs, random_relation


def make_inputs(seed=7, cardinality=60):
    rng = random.Random(seed)
    outer = random_relation(rng, cardinality, name="outer")
    inner = random_relation(rng, cardinality, name="inner")
    return outer, inner


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestObservabilityIsPure:
    def test_results_and_counters_bit_identical(self, name):
        outer, inner = make_inputs()
        bare = ALGORITHMS[name]().join(outer, inner)
        observed = ALGORITHMS[name](
            tracer=Tracer(),
            metrics=MetricsRegistry(),
            collect_report=True,
        ).join(outer, inner)
        assert observed.pair_keys() == bare.pair_keys()
        assert observed.counters.snapshot() == bare.counters.snapshot()
        assert observed.resilience.snapshot() == bare.resilience.snapshot()
        assert bare.pair_keys() == oracle_pairs(outer, inner)

    def test_report_collected_and_valid(self, name):
        outer, inner = make_inputs()
        result = ALGORITHMS[name](collect_report=True).join(outer, inner)
        assert result.report is not None
        assert result.report["algorithm"] == name
        validate_report(result.report)

    def test_bare_run_attaches_nothing(self, name):
        outer, inner = make_inputs(cardinality=20)
        result = ALGORITHMS[name]().join(outer, inner)
        assert result.report is None
        assert result.elapsed_ms > 0


class TestMetricsPublishing:
    def test_counters_published_per_run(self):
        outer, inner = make_inputs(cardinality=30)
        registry = MetricsRegistry()
        algorithm = ALGORITHMS["oip"](metrics=registry)
        first = algorithm.join(outer, inner)
        published = registry.get("join.counters.cpu_comparisons").snapshot()
        assert published == first.counters.cpu_comparisons
        second = algorithm.join(outer, inner)
        # Plain .inc(): totals accumulate across runs.
        assert (
            registry.get("join.counters.cpu_comparisons").snapshot()
            == first.counters.cpu_comparisons
            + second.counters.cpu_comparisons
        )

    def test_partition_block_histogram_observed(self):
        outer, inner = make_inputs(cardinality=40)
        registry = MetricsRegistry()
        ALGORITHMS["oip"](metrics=registry).join(outer, inner)
        histogram = registry.get("oip.partition_blocks")
        assert histogram is not None
        snap = histogram.snapshot()
        assert snap["count"] > 0

    def test_buffer_pool_publishes_gauges(self):
        from repro.storage.buffer import BufferPool

        outer, inner = make_inputs(cardinality=30)
        registry = MetricsRegistry()
        pool = BufferPool(capacity_blocks=8)
        ALGORITHMS["oip"](buffer_pool=pool, metrics=registry).join(
            outer, inner
        )
        assert registry.get("buffer.capacity_blocks").snapshot() == 8
        assert registry.get("buffer.resident_blocks").snapshot() >= 0
