"""Tests for the synthetic workload generators."""

import pytest

from repro.core.interval import Interval
from repro.workloads.synthetic import (
    PAPER_TIME_RANGE,
    clustered_relation,
    long_lived_mixture,
    point_relation,
    scaling_pair,
    uniform_relation,
)


class TestUniformRelation:
    def test_cardinality(self):
        assert len(uniform_relation(100, seed=1)) == 100

    def test_deterministic_per_seed(self):
        a = uniform_relation(50, seed=7)
        b = uniform_relation(50, seed=7)
        assert [(t.start, t.end) for t in a] == [(t.start, t.end) for t in b]

    def test_different_seeds_differ(self):
        a = uniform_relation(50, seed=1)
        b = uniform_relation(50, seed=2)
        assert [(t.start, t.end) for t in a] != [
            (t.start, t.end) for t in b
        ]

    def test_durations_bounded(self):
        range_ = Interval(0, 9_999)
        relation = uniform_relation(
            200, range_, max_duration_fraction=0.01, seed=3
        )
        assert all(t.duration <= 100 for t in relation)

    def test_tuples_inside_time_range(self):
        range_ = Interval(100, 200)
        relation = uniform_relation(100, range_, 0.5, seed=4)
        assert all(
            100 <= t.start and t.end <= 200 for t in relation
        )

    def test_paper_time_range(self):
        assert PAPER_TIME_RANGE == Interval(1, 2**24)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            uniform_relation(-1)
        with pytest.raises(ValueError):
            uniform_relation(10, max_duration_fraction=0.0)
        with pytest.raises(ValueError):
            uniform_relation(10, max_duration_fraction=1.5)


class TestLongLivedMixture:
    def test_share_of_long_tuples(self):
        range_ = Interval(0, 99_999)
        relation = long_lived_mixture(1_000, 0.3, range_, seed=5)
        short_bound = int(0.0001 * range_.duration) + 1
        long_count = sum(1 for t in relation if t.duration > short_bound)
        assert long_count == pytest.approx(300, abs=40)

    def test_zero_share_all_short(self):
        range_ = Interval(0, 99_999)
        relation = long_lived_mixture(500, 0.0, range_, seed=6)
        assert all(t.duration <= 10 for t in relation)

    def test_full_share_averages_half_max(self):
        """Uniform durations up to 8% average 4% (the Figure 8 setup)."""
        range_ = Interval(0, 99_999)
        relation = long_lived_mixture(2_000, 1.0, range_, seed=7)
        mean = sum(t.duration for t in relation) / len(relation)
        assert mean / range_.duration == pytest.approx(0.04, abs=0.005)

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            long_lived_mixture(10, 1.5)


class TestPointRelation:
    def test_all_durations_one(self):
        relation = point_relation(300, seed=8)
        assert all(t.duration == 1 for t in relation)


class TestClusteredRelation:
    def test_density_is_skewed(self):
        """Most tuples fall near a few centres, unlike uniform data."""
        range_ = Interval(0, 99_999)
        relation = clustered_relation(
            1_000, range_, cluster_count=3, seed=9
        )
        bins = [0] * 20
        for tup in relation:
            bins[min(19, tup.start * 20 // 100_000)] += 1
        top_three = sum(sorted(bins, reverse=True)[:3])
        assert top_three > 0.5 * len(relation)

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            clustered_relation(10, cluster_count=0)


class TestScalingPair:
    def test_outer_is_percentage_of_inner(self):
        outer, inner = scaling_pair(10_000, outer_percent=1.0, seed=10)
        assert len(inner) == 10_000
        assert len(outer) == 100

    def test_independent_seeds(self):
        outer, inner = scaling_pair(100, outer_percent=100.0, seed=11)
        assert [(t.start, t.end) for t in outer] != [
            (t.start, t.end) for t in inner
        ]
