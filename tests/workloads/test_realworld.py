"""Tests for the real-world dataset stand-ins (Table 2 / Figure 9)."""

import pytest

from repro.workloads.realworld import (
    DATASET_GENERATORS,
    PAPER_DATASET_PROPERTIES,
    feed_standin,
    incumbent_standin,
    webkit_standin,
)
from repro.workloads.stats import (
    dataset_properties,
    duration_histogram,
    temporal_distribution,
)


class TestTableTwoFidelity:
    """Stand-ins must match the published dataset shape."""

    def test_incumbent_time_range(self):
        props = dataset_properties(incumbent_standin(seed=0))
        paper = PAPER_DATASET_PROPERTIES["incumbent"]
        assert props.time_range == pytest.approx(paper.time_range, rel=0.02)

    def test_incumbent_duration_profile(self):
        props = dataset_properties(incumbent_standin(seed=0))
        paper = PAPER_DATASET_PROPERTIES["incumbent"]
        assert props.min_duration == paper.min_duration
        assert props.max_duration == paper.max_duration
        assert props.avg_duration == pytest.approx(
            paper.avg_duration, rel=0.15
        )

    def test_feed_duration_profile(self):
        props = dataset_properties(feed_standin(seed=0))
        paper = PAPER_DATASET_PROPERTIES["feed"]
        assert props.time_range == paper.time_range
        assert props.avg_duration == pytest.approx(
            paper.avg_duration, rel=0.15
        )
        assert props.max_duration > 0.8 * 8_589

    def test_webkit_scale(self):
        props = dataset_properties(webkit_standin(seed=0))
        paper = PAPER_DATASET_PROPERTIES["webkit"]
        assert props.time_range == pytest.approx(paper.time_range, rel=0.01)
        # Average duration within a factor of two of 2^34.
        assert (
            paper.avg_duration / 2
            < props.avg_duration
            < paper.avg_duration * 2
        )

    def test_long_lived_share_in_paper_band(self):
        """Section 7: 0.03%-20% of tuples exceed 8% of the time range."""
        for name, generator in DATASET_GENERATORS.items():
            relation = generator(seed=0)
            span = relation.time_range_duration
            share = sum(
                1 for t in relation if t.duration > 0.08 * span
            ) / len(relation)
            assert 0.0003 <= share <= 0.20, name

    def test_cardinality_configurable(self):
        assert len(incumbent_standin(cardinality=500, seed=1)) == 500
        assert len(feed_standin(cardinality=500, seed=1)) == 500
        assert len(webkit_standin(cardinality=500, seed=1)) == 500

    def test_deterministic(self):
        a = incumbent_standin(cardinality=300, seed=5)
        b = incumbent_standin(cardinality=300, seed=5)
        assert [(t.start, t.end) for t in a] == [
            (t.start, t.end) for t in b
        ]


class TestDistributionShapes:
    def test_duration_histograms_are_heavy_headed(self):
        """Figure 9 right column: the shortest-duration bin dominates."""
        for generator in (incumbent_standin, feed_standin):
            histogram = duration_histogram(generator(seed=0), bins=20)
            assert histogram[0] == max(histogram)
            assert histogram[0] > 50.0

    def test_temporal_distribution_is_skewed(self):
        """Figure 9 left column: density varies over time (no dataset is
        temporally uniform)."""
        for generator in DATASET_GENERATORS.values():
            values = temporal_distribution(generator(seed=0), 40)
            assert max(values) > 1.8 * (sum(values) / len(values))


class TestStatsHelpers:
    def test_dataset_properties_row_format(self):
        props = dataset_properties(incumbent_standin(cardinality=100, seed=2))
        row = props.as_row()
        assert row[0] == "incumbent"
        assert len(row) == 7

    def test_duration_histogram_sums_to_100(self):
        histogram = duration_histogram(feed_standin(cardinality=500, seed=3))
        assert sum(histogram) == pytest.approx(100.0)

    def test_histogram_of_empty_relation(self):
        from repro.core.relation import TemporalRelation

        assert duration_histogram(TemporalRelation([]), 5) == [0.0] * 5

    def test_temporal_distribution_bounds(self):
        values = temporal_distribution(
            incumbent_standin(cardinality=500, seed=4), 30
        )
        assert len(values) == 30
        assert all(0.0 <= value <= 100.0 for value in values)

    def test_properties_of_empty_relation_rejected(self):
        from repro.core.relation import TemporalRelation

        with pytest.raises(ValueError):
            dataset_properties(TemporalRelation([]))

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            duration_histogram(incumbent_standin(cardinality=10), 0)
        with pytest.raises(ValueError):
            temporal_distribution(incumbent_standin(cardinality=10), 0)
