"""Tests for the Section 6.3 complexity bounds and Table 1 growth
predictions."""

import pytest

from repro.analysis.complexity import (
    OIP_LOWER,
    OIP_UPPER,
    SMJ_LOWER,
    SMJ_UPPER,
    asymptotic_k,
    growth_factor,
)


class TestGrowthFactors:
    """Table 1's doubling factors."""

    def test_oip_lower_bound(self):
        # 2^(2/3) * 2^(2/3) ~ 2.52.
        assert growth_factor(OIP_LOWER) == pytest.approx(2.52, abs=0.01)

    def test_oip_upper_bound(self):
        # 2^(4/5) * 2^(4/5) ~ 3.03.
        assert growth_factor(OIP_UPPER) == pytest.approx(3.03, abs=0.01)

    def test_smj_upper_bound_quadratic(self):
        assert growth_factor(SMJ_UPPER) == pytest.approx(4.0)

    def test_smj_lower_bound_linear(self):
        assert growth_factor(SMJ_LOWER) == pytest.approx(2.0)

    def test_other_scales(self):
        assert growth_factor(OIP_LOWER, scale=4.0) == pytest.approx(
            4 ** (4 / 3)
        )

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            growth_factor(OIP_LOWER, scale=0.0)


class TestCostShapes:
    def test_lower_bound_cheaper_than_upper(self):
        n = 10**6
        assert OIP_LOWER.cost(n, n) < OIP_UPPER.cost(n, n)

    def test_oip_upper_beats_smj_upper_asymptotically(self):
        n = 10**6
        assert OIP_UPPER.cost(n, n) < SMJ_UPPER.cost(n, n)

    def test_paper_table_1_ordering(self):
        """Table 1: SMJ LB < OIP LB < OIP UB < SMJ UB for large inputs."""
        n = 5 * 10**6
        costs = [
            SMJ_LOWER.cost(n, n),
            OIP_LOWER.cost(n, n),
            OIP_UPPER.cost(n, n),
            SMJ_UPPER.cost(n, n),
        ]
        assert costs == sorted(costs)


class TestAsymptoticK:
    def test_tight_regime(self):
        assert asymptotic_k(10**6, 10**6, tight=True) == pytest.approx(
            (10**12) ** (1 / 3)
        )

    def test_loose_regime(self):
        assert asymptotic_k(10**6, 10**6, tight=False) == pytest.approx(
            (10**12) ** (1 / 5)
        )

    def test_tight_regime_uses_more_granules(self):
        assert asymptotic_k(10**6, 10**6, True) > asymptotic_k(
            10**6, 10**6, False
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            asymptotic_k(-1, 10, True)
