"""Tests for partition-access counting (Section 5.2): Lemma 5 and
Theorem 2."""

import pytest

from repro.analysis.apa import (
    access_count,
    access_count_enumerated,
    apa_bound,
    average_partition_accesses,
    average_partition_accesses_enumerated,
    measured_tightening_factor,
)
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration, possible_partition_count


class TestAccessCount:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 9, 14])
    def test_closed_form_matches_enumeration(self, k):
        for e in range(k):
            for s in range(e + 1):
                assert access_count(k, s, e) == access_count_enumerated(
                    k, s, e
                )

    def test_full_range_query_accesses_everything(self):
        k = 7
        assert access_count(k, 0, k - 1) == possible_partition_count(k)

    def test_point_query_in_first_granule(self):
        # Query in granule 0: partitions with i = 0 (all k of them).
        assert access_count(5, 0, 0) == 5

    def test_point_query_in_last_granule(self):
        # Query in granule k-1: partitions with j = k-1 (all k of them).
        k = 5
        assert access_count(k, k - 1, k - 1) == k

    def test_invalid_indices_rejected(self):
        with pytest.raises(ValueError):
            access_count(4, 2, 1)
        with pytest.raises(ValueError):
            access_count(4, 0, 4)
        with pytest.raises(ValueError):
            access_count(4, -1, 2)


class TestLemma5:
    @pytest.mark.parametrize("k", [1, 2, 3, 8, 21])
    def test_average_closed_form(self, k):
        """APA = (k^2 + k + 1)/3 equals the enumerated average."""
        assert average_partition_accesses(k) == pytest.approx(
            average_partition_accesses_enumerated(k)
        )

    def test_k_one(self):
        assert average_partition_accesses(1) == pytest.approx(1.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            average_partition_accesses(0)


class TestTheorem2:
    def test_bound_shrinks_with_tau(self):
        assert apa_bound(10, 0.1, 10**6) == pytest.approx(
            0.1 * average_partition_accesses(10)
        )

    def test_bound_capped_by_cardinality(self):
        assert apa_bound(1000, 1.0, 50) == 50.0

    def test_rejects_invalid_tau(self):
        with pytest.raises(ValueError):
            apa_bound(10, 0.0, 100)
        with pytest.raises(ValueError):
            apa_bound(10, 1.5, 100)

    def test_rejects_negative_cardinality(self):
        with pytest.raises(ValueError):
            apa_bound(10, 0.5, -1)


class TestMeasuredTighteningFactor:
    def test_paper_partitioning(self, paper_s):
        """Figure 2 uses 5 of 10 possible partitions: tau = 0.5."""
        config = OIPConfiguration.for_relation(paper_s, 4)
        built = oip_create(paper_s, config)
        assert measured_tightening_factor(built) == pytest.approx(0.5)

    def test_measured_apa_respects_theorem_2(self, paper_s):
        """Average relevant partitions over all (s, e) queries is below
        the Theorem 2 bound computed from the measured tau."""
        config = OIPConfiguration.for_relation(paper_s, 4)
        built = oip_create(paper_s, config)
        tau = measured_tightening_factor(built)
        k = config.k
        total = 0
        count = 0
        for e in range(k):
            for s in range(e + 1):
                total += sum(1 for _ in built.iter_relevant(s, e))
                count += 1
        measured_apa = total / count
        assert measured_apa <= apa_bound(k, tau, len(paper_s)) + 1e-9
