"""Tests for duration-complete relations (Section 5.1)."""

import pytest

from repro.analysis.duration_complete import (
    duration_complete_cardinality,
    duration_complete_relation,
)
from repro.core.interval import Interval


class TestGeneration:
    def test_paper_example_r2_03(self):
        """r^2_[0,3] contains exactly [0,0], [1,1], [2,2], [3,3],
        [0,1], [1,2], [2,3]."""
        relation = duration_complete_relation(Interval(0, 3), 2)
        intervals = sorted(
            (t.start, t.end) for t in relation
        )
        assert intervals == [
            (0, 0),
            (0, 1),
            (1, 1),
            (1, 2),
            (2, 2),
            (2, 3),
            (3, 3),
        ]

    def test_every_interval_up_to_l_present_once(self):
        time_range = Interval(5, 14)
        l = 4
        relation = duration_complete_relation(time_range, l)
        seen = set()
        for tup in relation:
            assert tup.duration <= l
            assert time_range.contains(tup.interval)
            key = (tup.start, tup.end)
            assert key not in seen
            seen.add(key)
        expected = {
            (start, start + duration - 1)
            for duration in range(1, l + 1)
            for start in range(
                time_range.start, time_range.end - duration + 2
            )
        }
        assert seen == expected

    def test_l_equal_range(self):
        relation = duration_complete_relation(Interval(0, 4), 5)
        assert any(t.duration == 5 for t in relation)

    def test_distinct_payloads(self):
        relation = duration_complete_relation(Interval(0, 9), 3)
        payloads = [t.payload for t in relation]
        assert len(payloads) == len(set(payloads))


class TestCardinality:
    @pytest.mark.parametrize(
        "span,l", [(4, 1), (4, 2), (10, 3), (10, 10), (7, 5)]
    )
    def test_closed_form_matches_generation(self, span, l):
        time_range = Interval(0, span - 1)
        relation = duration_complete_relation(time_range, l)
        assert len(relation) == duration_complete_cardinality(time_range, l)

    def test_known_value(self):
        # |U| = 4, l = 2 -> 4*2 - (4-2)/2 = 7 tuples.
        assert duration_complete_cardinality(Interval(0, 3), 2) == 7

    def test_rejects_invalid_duration(self):
        with pytest.raises(ValueError):
            duration_complete_cardinality(Interval(0, 3), 0)
        with pytest.raises(ValueError):
            duration_complete_cardinality(Interval(0, 3), 5)
        with pytest.raises(ValueError):
            duration_complete_relation(Interval(0, 3), 0)
        with pytest.raises(ValueError):
            duration_complete_relation(Interval(0, 3), 5)
