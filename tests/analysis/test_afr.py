"""Tests for false hits, SFR and AFR (Section 5.1): Definitions 3-5,
Lemma 4 and Theorem 1 with its Equation (3)/(4) closed forms."""

import pytest

from repro.analysis.afr import (
    average_false_hit_ratio,
    false_hits,
    partition_views_from_lazy_list,
    sum_false_hit_ratio,
    theoretical_afr_bound,
    theoretical_sfr_oip,
)
from repro.analysis.duration_complete import duration_complete_relation
from repro.core.interval import Interval
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration


def paper_views(paper_s):
    config = OIPConfiguration.for_relation(paper_s, 4)
    return partition_views_from_lazy_list(oip_create(paper_s, config))


class TestFalseHits:
    """Definition 3 and the paper's Q = [2012-5, 2012-5] example."""

    def test_paper_query(self, paper_s):
        views = paper_views(paper_s)
        hits = false_hits(views, Interval(5, 5))
        assert [t.payload for t in hits] == ["s6"]

    def test_no_false_hits_on_full_range_query(self, paper_s):
        views = paper_views(paper_s)
        assert false_hits(views, paper_s.time_range) == []

    def test_query_outside_all_partitions(self, paper_s):
        views = paper_views(paper_s)
        assert false_hits(views, Interval(100, 110)) == []

    def test_false_hits_never_overlap_query(self, paper_s):
        views = paper_views(paper_s)
        for x in range(1, 13):
            query = Interval(x, x)
            for tup in false_hits(views, query):
                assert not tup.overlaps_interval(query)


class TestSFR:
    """Definition 4: the Figure 2 partitioning has SFR = 14/7 = 2."""

    def test_paper_value(self, paper_s):
        views = paper_views(paper_s)
        assert sum_false_hit_ratio(views, paper_s, 1) == pytest.approx(2.0)

    @pytest.mark.parametrize("q", [1, 2, 3, 5, 7, 12, 20])
    def test_lemma_4_independence_of_query_duration(self, q, paper_s):
        """Lemma 4: the SFR is the same for every query duration."""
        views = paper_views(paper_s)
        assert sum_false_hit_ratio(views, paper_s, q) == pytest.approx(2.0)

    def test_rejects_bad_query_duration(self, paper_s):
        with pytest.raises(ValueError):
            sum_false_hit_ratio(paper_views(paper_s), paper_s, 0)


class TestAFR:
    """Definition 5 and the Example 6 values."""

    def test_example_6_q1(self, paper_s):
        views = paper_views(paper_s)
        afr = average_false_hit_ratio(views, paper_s, 1)
        assert afr == pytest.approx(2 / 12)  # 16.7%

    def test_example_6_q5(self, paper_s):
        views = paper_views(paper_s)
        afr = average_false_hit_ratio(views, paper_s, 5)
        assert afr == pytest.approx(2 / 16)  # 12.5%

    def test_proposition_2_monotone_decrease_in_q(self, paper_s):
        views = paper_views(paper_s)
        values = [
            average_false_hit_ratio(views, paper_s, q) for q in range(1, 8)
        ]
        assert values == sorted(values, reverse=True)


class TestTheorem1ClosedForms:
    """Equations (3) and (4) match brute-force enumeration exactly."""

    @pytest.mark.parametrize(
        "k,d,l",
        [
            (4, 3, 1),
            (4, 3, 2),
            (4, 3, 3),  # l = d boundary of Equation (3)
            (3, 5, 4),
            (5, 2, 1),
            (2, 6, 6),
        ],
    )
    def test_equation_3_short_tuples(self, k, d, l):
        time_range = Interval(0, k * d - 1)
        relation = duration_complete_relation(time_range, l)
        config = OIPConfiguration(k=k, d=d, o=0)
        views = partition_views_from_lazy_list(oip_create(relation, config))
        empirical = sum_false_hit_ratio(views, relation, 1)
        assert empirical == pytest.approx(theoretical_sfr_oip(k, d, l))

    @pytest.mark.parametrize(
        "k,d,l",
        [
            (4, 3, 6),
            (4, 3, 9),
            (4, 3, 12),  # l = k*d: tuples up to the whole range
            (5, 2, 6),
            (3, 4, 8),
        ],
    )
    def test_equation_4_long_tuples(self, k, d, l):
        """l > d, l a multiple of d — the regime of Equation (4)."""
        time_range = Interval(0, k * d - 1)
        relation = duration_complete_relation(time_range, l)
        config = OIPConfiguration(k=k, d=d, o=0)
        views = partition_views_from_lazy_list(oip_create(relation, config))
        empirical = sum_false_hit_ratio(views, relation, 1)
        assert empirical == pytest.approx(theoretical_sfr_oip(k, d, l))

    @pytest.mark.parametrize("k,d", [(3, 3), (4, 3), (5, 2), (2, 8)])
    def test_theorem_1_bound(self, k, d):
        """AFR < 1/k for every tuple-duration limit."""
        time_range = Interval(0, k * d - 1)
        config = OIPConfiguration(k=k, d=d, o=0)
        for l in range(1, k * d + 1):
            relation = duration_complete_relation(time_range, l)
            views = partition_views_from_lazy_list(
                oip_create(relation, config)
            )
            afr = average_false_hit_ratio(views, relation, 1)
            assert afr < theoretical_afr_bound(k)

    def test_afr_independent_of_duration_mix(self):
        """Theorem 1's headline: the bound does not degrade when tuples
        get longer (unlike the loose quadtree)."""
        k, d = 4, 4
        time_range = Interval(0, k * d - 1)
        config = OIPConfiguration(k=k, d=d, o=0)
        afrs = []
        for l in (1, d, 2 * d, k * d):
            relation = duration_complete_relation(time_range, l)
            views = partition_views_from_lazy_list(
                oip_create(relation, config)
            )
            afrs.append(average_false_hit_ratio(views, relation, 1))
        assert max(afrs) < 1 / k
        # Longer tuples do not increase the AFR (Part 3 of the proof).
        assert afrs == sorted(afrs, reverse=True)

    def test_sfr_for_l_equals_1_is_d_minus_1(self):
        """Part 2 of the proof: SFR = d - 1 for duration-1 tuples."""
        for k, d in [(3, 4), (5, 3), (2, 7)]:
            assert theoretical_sfr_oip(k, d, 1) == pytest.approx(d - 1)

    def test_rejects_out_of_range_duration(self):
        with pytest.raises(ValueError):
            theoretical_sfr_oip(4, 3, 0)
        with pytest.raises(ValueError):
            theoretical_sfr_oip(4, 3, 13)
        with pytest.raises(ValueError):
            theoretical_sfr_oip(0, 3, 1)

    def test_bound_rejects_bad_k(self):
        with pytest.raises(ValueError):
            theoretical_afr_bound(0)


class TestEmptyRelation:
    def test_sfr_of_empty_relation(self):
        from repro.core.relation import TemporalRelation

        assert sum_false_hit_ratio([], TemporalRelation([]), 1) == 0.0

    def test_afr_of_empty_relation(self):
        from repro.core.relation import TemporalRelation

        assert average_false_hit_ratio([], TemporalRelation([]), 1) == 0.0
