"""Tests for the OIPJOIN algorithm (Section 6.1, Algorithm 2,
Example 7 / Figure 1)."""

import random

import pytest

from repro.core.join import OIPJoin
from repro.storage.buffer import BufferPool
from repro.storage.device import DeviceProfile
from tests.conftest import oracle_pairs, random_relation


class TestPaperExample:
    """Figure 1: five inner partitions accessed, three false hits,
    eight result tuples."""

    def test_result_pairs(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        pairs = sorted((a.payload, b.payload) for a, b in result.pairs)
        assert pairs == [
            ("r1", "s3"),
            ("r1", "s4"),
            ("r1", "s5"),
            ("r2", "s4"),
            ("r2", "s6"),
            ("r3", "s4"),
            ("r3", "s6"),
            ("r3", "s7"),
        ]

    def test_false_hits(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.counters.false_hits == 3

    def test_partition_accesses(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.counters.partition_accesses == 5

    def test_configurations(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.details["granule_duration_outer"] == 2
        assert result.details["granule_duration_inner"] == 3
        assert result.details["outer_partitions"] == 2
        assert result.details["inner_partitions"] == 5

    def test_result_counter_matches(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.counters.result_tuples == 8
        assert result.cardinality == 8


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_random(self, seed):
        rng = random.Random(seed)
        outer = random_relation(rng, rng.randint(1, 120), 600, 80, "r")
        inner = random_relation(rng, rng.randint(1, 120), 600, 80, "s")
        result = OIPJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    @pytest.mark.parametrize("k", [1, 2, 3, 7, 16, 100])
    def test_any_pinned_k_is_correct(self, k, paper_r, paper_s):
        result = OIPJoin(k=k).join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_disjoint_time_ranges_give_empty_result(self):
        from repro import TemporalRelation

        early = TemporalRelation.from_pairs([(0, 5), (3, 9)])
        late = TemporalRelation.from_pairs([(100, 110), (105, 106)])
        result = OIPJoin().join(early, late)
        assert result.pairs == []

    def test_empty_inputs(self, paper_s):
        from repro import TemporalRelation

        empty = TemporalRelation([])
        assert OIPJoin().join(empty, paper_s).pairs == []
        assert OIPJoin().join(paper_s, empty).pairs == []
        assert OIPJoin().join(empty, empty).pairs == []

    def test_self_join(self, paper_s):
        result = OIPJoin().join(paper_s, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_s, paper_s)

    def test_identical_intervals(self):
        from repro import TemporalRelation

        left = TemporalRelation.from_pairs([(5, 5)] * 4)
        right = TemporalRelation.from_pairs([(5, 5)] * 3)
        result = OIPJoin().join(left, right)
        assert len(result.pairs) == 12

    def test_single_point_relations(self):
        from repro import TemporalRelation

        left = TemporalRelation.from_pairs([(7, 7)])
        right = TemporalRelation.from_pairs([(7, 7)])
        assert len(OIPJoin().join(left, right).pairs) == 1

    def test_outer_range_larger_than_inner(self):
        from repro import TemporalRelation

        outer = TemporalRelation.from_pairs([(0, 1000), (500, 501)])
        inner = TemporalRelation.from_pairs([(400, 450)])
        result = OIPJoin().join(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)


class TestSelfAdjustment:
    def test_k_derived_when_not_pinned(self, paper_r, paper_s):
        result = OIPJoin().join(paper_r, paper_s)
        assert result.details["self_adjusting"] is True
        assert result.details["k"] >= 1
        assert "k_derivation_steps" in result.details

    def test_pinned_k_reported(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.details["self_adjusting"] is False
        assert result.details["k"] == 4

    def test_k_capped_by_time_range(self):
        from repro import TemporalRelation

        outer = TemporalRelation.from_pairs([(0, 3), (1, 2)])
        inner = TemporalRelation.from_pairs([(0, 3), (2, 3)])
        result = OIPJoin(k=1000).join(outer, inner)
        assert result.details["k"] <= 4

    def test_invalid_pinned_k_rejected(self):
        with pytest.raises(ValueError):
            OIPJoin(k=0)


class TestCostAccounting:
    def test_more_granules_fewer_false_hits(self):
        rng = random.Random(11)
        outer = random_relation(rng, 150, 2000, 200, "r")
        inner = random_relation(rng, 150, 2000, 200, "s")
        coarse = OIPJoin(k=2).join(outer, inner)
        fine = OIPJoin(k=64).join(outer, inner)
        assert fine.counters.false_hits < coarse.counters.false_hits

    def test_more_granules_more_partition_accesses(self):
        rng = random.Random(11)
        outer = random_relation(rng, 150, 2000, 200, "r")
        inner = random_relation(rng, 150, 2000, 200, "s")
        coarse = OIPJoin(k=2).join(outer, inner)
        fine = OIPJoin(k=64).join(outer, inner)
        assert (
            fine.counters.partition_accesses
            > coarse.counters.partition_accesses
        )

    def test_block_reads_charged(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.counters.block_reads > 0

    def test_buffer_pool_absorbs_repeated_partition_reads(self):
        rng = random.Random(5)
        outer = random_relation(rng, 100, 500, 50, "r")
        inner = random_relation(rng, 100, 500, 50, "s")
        uncached = OIPJoin(k=8).join(outer, inner)
        cached = OIPJoin(
            k=8, buffer_pool=BufferPool(capacity_blocks=10_000)
        ).join(outer, inner)
        assert cached.counters.block_reads < uncached.counters.block_reads
        assert cached.counters.buffer_hits > 0

    def test_false_hit_ratio_property(self, paper_r, paper_s):
        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.false_hit_ratio == pytest.approx(3 / 11)

    def test_modelled_cost_positive(self, paper_r, paper_s):
        from repro.storage.metrics import CostWeights

        result = OIPJoin(k=4).join(paper_r, paper_s)
        assert result.modelled_cost(CostWeights.main_memory()) > 0

    def test_disk_device_profile_works(self, paper_r, paper_s):
        result = OIPJoin(device=DeviceProfile.disk()).join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)


class TestPerSideGranuleCounts:
    """Section 6.2's k_r = k_s argument: asymmetric counts are supported
    (for the ablation) and always correct."""

    @pytest.mark.parametrize("k_outer,k_inner", [(1, 16), (16, 1), (3, 7)])
    def test_asymmetric_counts_correct(self, k_outer, k_inner, paper_r, paper_s):
        join = OIPJoin(k_outer=k_outer, k_inner=k_inner)
        result = join.join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_asymmetric_counts_reported(self, paper_r, paper_s):
        result = OIPJoin(k_outer=2, k_inner=3).join(paper_r, paper_s)
        assert result.details["k"] == (2, 3)
        assert result.details["self_adjusting"] is False

    def test_equal_counts_report_single_k(self, paper_r, paper_s):
        result = OIPJoin(k_outer=4, k_inner=4).join(paper_r, paper_s)
        assert result.details["k"] == 4

    def test_must_pass_both_sides(self):
        with pytest.raises(ValueError):
            OIPJoin(k_outer=4)
        with pytest.raises(ValueError):
            OIPJoin(k_inner=4)

    def test_exclusive_with_shared_k(self):
        with pytest.raises(ValueError):
            OIPJoin(k=4, k_outer=4, k_inner=4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            OIPJoin(k_outer=0, k_inner=4)

    def test_balanced_beats_skewed_on_overhead(self):
        """The paper's argument at reduced scale: with k_r*k_s fixed,
        the balanced split produces the fewest false hits."""
        rng = random.Random(17)
        outer = random_relation(rng, 200, 5000, 250, "r")
        inner = random_relation(rng, 200, 5000, 250, "s")
        balanced = OIPJoin(k_outer=16, k_inner=16).join(outer, inner)
        skewed = OIPJoin(k_outer=2, k_inner=128).join(outer, inner)
        assert balanced.pair_keys() == skewed.pair_keys()
        assert (
            balanced.counters.false_hits < skewed.counters.false_hits
        )
