"""Differential suite for the vectorized numpy kernel tier.

Two acceptance properties:

* **parity** — with numpy installed, the ``numpy`` kernel is
  bit-identical to ``naive``/``sweep`` on every backend (sequential,
  thread pool, process pool): same pairs in the same order, same
  counters, same report counter sections, same checkpoint handoff.
  Both physical paths are covered — the broadcasted comparison matrix
  for small partition pairs and the ``searchsorted`` range
  decomposition for large ones.
* **graceful absence** — with numpy unavailable (monkeypatched import
  failure), every resolution layer degrades to the sweep: name-level
  (``resolve_kernel``/``choose_kernel`` never hand out ``"numpy"``) and
  function-level (``kernel_function("numpy")`` returns the sweep
  callable — the per-process fallback the process backend relies on),
  with the substitution recorded in the join's result details.
"""

import random

import pytest

from repro.core import kernels
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.kernels import (
    DecodedRun,
    choose_kernel,
    kernel_function,
    naive_matches,
    numpy_available,
    numpy_matches,
    resolve_kernel,
    sweep_matches,
)
from repro.engine.governor import CancellationToken
from repro.workloads import long_lived_mixture

from ..conftest import random_relation
from .test_kernels import CONFIGS, WORKLOADS, brute_force_hits, fingerprint

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy is not installed"
)


# ---------------------------------------------------------------------------
# Kernel unit parity, both physical paths.
# ---------------------------------------------------------------------------


@requires_numpy
class TestNumpyMatches:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_broadcast_path(self, seed):
        rng = random.Random(seed)
        outer = list(random_relation(rng, rng.randint(1, 40), range_size=60))
        inner = list(random_relation(rng, rng.randint(1, 40), range_size=60))
        hits = numpy_matches(
            DecodedRun.from_tuples(outer), DecodedRun.from_tuples(inner)
        )
        assert hits == brute_force_hits(outer, inner)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_searchsorted_path(self, seed, monkeypatch):
        # Force the range-decomposition path even for small pairs.
        monkeypatch.setattr(kernels, "NUMPY_BROADCAST_CELLS", 0)
        rng = random.Random(100 + seed)
        outer = list(random_relation(rng, rng.randint(1, 50), range_size=80))
        inner = list(random_relation(rng, rng.randint(1, 50), range_size=80))
        hits = numpy_matches(
            DecodedRun.from_tuples(outer), DecodedRun.from_tuples(inner)
        )
        assert hits == brute_force_hits(outer, inner)

    @pytest.mark.parametrize("path_cells", [0, 4096])
    def test_emission_order_matches_naive(self, path_cells, monkeypatch):
        monkeypatch.setattr(kernels, "NUMPY_BROADCAST_CELLS", path_cells)
        rng = random.Random(7)
        outer = DecodedRun.from_tuples(
            list(random_relation(rng, 35, range_size=50))
        )
        inner = DecodedRun.from_tuples(
            list(random_relation(rng, 30, range_size=50))
        )
        # The same *list*, not merely the same set: ascending encoded
        # order is the inner-major emission order of Algorithm 2.
        assert numpy_matches(outer, inner) == naive_matches(outer, inner)

    def test_empty_runs(self):
        rng = random.Random(3)
        run = DecodedRun.from_tuples(list(random_relation(rng, 5)))
        empty = DecodedRun.from_tuples([])
        assert numpy_matches(empty, run) == []
        assert numpy_matches(run, empty) == []
        assert numpy_matches(empty, empty) == []

    def test_tie_heavy_starts_searchsorted(self, monkeypatch):
        monkeypatch.setattr(kernels, "NUMPY_BROADCAST_CELLS", 0)
        from repro.core.relation import TemporalRelation

        tuples = list(
            TemporalRelation.from_records(
                [(5, 5 + (i % 3), i) for i in range(12)]
            )
        )
        run = DecodedRun.from_tuples(tuples)
        assert numpy_matches(run, run) == brute_force_hits(tuples, tuples)


# ---------------------------------------------------------------------------
# Join-level parity across all three backends.
# ---------------------------------------------------------------------------


@requires_numpy
class TestNumpyDifferentialIdentity:
    """numpy kernel == naive kernel, bit for bit, on every backend."""

    @pytest.fixture(scope="class")
    def references(self):
        return {
            name: OIPJoin(kernel="naive").join(*rels)
            for name, rels in WORKLOADS.items()
        }

    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_backend_identity(self, references, workload, config):
        result = OIPJoin(kernel="numpy", **CONFIGS[config]).join(
            *WORKLOADS[workload]
        )
        assert result.details["kernel"] == "numpy"
        assert fingerprint(result) == fingerprint(references[workload])

    def test_coarse_k_identity(self, references):
        # k=2 produces the huge partition pairs that exercise the
        # searchsorted path without any monkeypatching.
        outer, inner = WORKLOADS["mixed"]
        reference = OIPJoin(kernel="naive", k_outer=2, k_inner=2).join(
            outer, inner
        )
        result = OIPJoin(kernel="numpy", k_outer=2, k_inner=2).join(
            outer, inner
        )
        assert fingerprint(result) == fingerprint(reference)

    def test_report_counter_sections_identical(self, references):
        outer, inner = WORKLOADS["mixed"]
        result = OIPJoin(kernel="numpy", collect_report=True).join(
            outer, inner
        )
        naive = OIPJoin(kernel="naive", collect_report=True).join(
            outer, inner
        )
        assert result.report["counters"] == naive.report["counters"]
        assert result.report["resilience"] == naive.report["resilience"]
        assert result.report["result"] == naive.report["result"]

    @pytest.mark.parametrize("resume_kernel", ("naive", "sweep", "numpy"))
    def test_checkpoint_handoff(self, tmp_path, resume_kernel):
        # A checkpoint written under numpy resumes under any kernel.
        outer, inner = WORKLOADS["mixed"]
        reference = OIPJoin(kernel="naive").join(outer, inner)
        path = str(tmp_path / f"numpy-{resume_kernel}.ckpt")
        token = CancellationToken(cancel_after_checks=4)
        partial = OIPJoin(
            kernel="numpy",
            cancellation=token,
            checkpoint_path=path,
            checkpoint_every=1,
        ).join(outer, inner)
        assert not partial.completed
        resumed = OIPJoin(kernel=resume_kernel, resume_from=path).join(
            outer, inner
        )
        assert resumed.completed
        assert resumed.pair_keys() == reference.pair_keys()


# ---------------------------------------------------------------------------
# Graceful degradation without numpy.
# ---------------------------------------------------------------------------


def _break_numpy(monkeypatch):
    def fail():
        raise ImportError("numpy deliberately unavailable for this test")

    monkeypatch.setattr(kernels, "_import_numpy", fail)


class TestNumpyAbsent:
    def test_numpy_available_reports_false(self, monkeypatch):
        _break_numpy(monkeypatch)
        assert not kernels.numpy_available()

    def test_kernel_function_falls_back_to_sweep(self, monkeypatch):
        _break_numpy(monkeypatch)
        assert kernel_function("numpy") is sweep_matches

    def test_direct_call_raises_with_guidance(self, monkeypatch):
        _break_numpy(monkeypatch)
        rng = random.Random(1)
        run = DecodedRun.from_tuples(list(random_relation(rng, 4)))
        with pytest.raises(RuntimeError, match="kernel_function"):
            numpy_matches(run, run)

    def test_resolve_kernel_substitutes_sweep(self, monkeypatch):
        _break_numpy(monkeypatch)
        outer, inner = WORKLOADS["mixed"]
        assert resolve_kernel("numpy", outer, inner) == "sweep"

    def test_choose_kernel_skips_numpy_tier(self, monkeypatch):
        _break_numpy(monkeypatch)
        big = long_lived_mixture(
            1_000, 0.5, Interval(1, 2**20), seed=7, name="big"
        )
        estimated = kernels.estimate_candidates(big, big)
        assert estimated >= kernels.AUTO_NUMPY_CANDIDATES
        assert choose_kernel(big, big) == "sweep"

    def test_join_records_substitution(self, monkeypatch):
        _break_numpy(monkeypatch)
        outer, inner = WORKLOADS["mixed"]
        reference = OIPJoin(kernel="naive").join(outer, inner)
        result = OIPJoin(kernel="numpy").join(outer, inner)
        assert result.details["kernel"] == "sweep"
        assert result.details["kernel_requested"] == "numpy"
        assert fingerprint(result) == fingerprint(reference)

    def test_join_parity_without_numpy_all_backends(self, monkeypatch):
        # The full differential property holds in a numpy-less
        # environment too (this is what the CI numpy-absent leg runs).
        _break_numpy(monkeypatch)
        outer, inner = WORKLOADS["uniform"]
        reference = OIPJoin(kernel="naive").join(outer, inner)
        result = OIPJoin(kernel="numpy").join(outer, inner)
        assert fingerprint(result) == fingerprint(reference)
