"""Differential suite for the pluggable join kernels (Section 5 probe).

The kernel layer's acceptance property: every kernel, on every backend,
is *bit-identical* to the seed implementation — same pairs in the same
order, same :class:`~repro.storage.metrics.CostCounters`, same run-report
counter sections, same checkpoint/resume behaviour.  The sweep kernel is
an execution strategy, not a cost model: it must charge exactly the
comparisons Algorithm 2 would have performed.

The decoded-run cache rides along: a hit must never serve a decode built
from a block that was later detected corrupted, which the fault-profile
tests prove differentially (faulty sweep run == fault-free naive run)
and the unit tests prove mechanically (invalidate drops the entry).
"""

import random

import pytest

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core import kernels
from repro.core.kernels import (
    AUTO_SWEEP_CANDIDATES,
    DecodedRun,
    DecodedRunCache,
    choose_kernel,
    decode_columns,
    naive_matches,
    resolve_kernel,
    sweep_matches,
)
from repro.core.relation import TemporalRelation
from repro.engine.governor import CancellationToken
from repro.engine.planner import JoinPlanner
from repro.obs.registry import MetricsRegistry
from repro.storage.faults import fault_profile
from repro.workloads import long_lived_mixture

from ..conftest import oracle_pairs, random_relation

KERNELS = ("naive", "sweep")

#: One config per execution backend (mirrors tests/chaos/test_lifecycle.py).
CONFIGS = {
    "sequential": {},
    "thread": {"parallelism": 3, "parallel_chunk_size": 2},
    "process": {
        "parallelism": 2,
        "parallel_backend": "process",
        "parallel_chunk_size": 3,
    },
}


def fingerprint(result):
    """Everything that must be bit-identical across kernels/backends."""
    return (
        [(p[0].start, p[0].end, p[0].payload, p[1].start, p[1].end, p[1].payload)
         for p in result.pairs],
        result.counters.snapshot(),
        result.resilience.storage_snapshot(),
    )


# ---------------------------------------------------------------------------
# Kernel unit parity: both kernels against a brute-force oracle.
# ---------------------------------------------------------------------------


def brute_force_hits(outer_run, inner_run):
    """Encoded hits of the seed nested loop, in emission order."""
    hits = []
    n_outer = len(outer_run)
    for inner_pos, inner in enumerate(inner_run):
        for outer_pos, outer in enumerate(outer_run):
            if outer.start <= inner.end and inner.start <= outer.end:
                hits.append(inner_pos * n_outer + outer_pos)
    return sorted(hits)


class TestKernelFunctions:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, kernel, seed):
        rng = random.Random(seed)
        outer = list(random_relation(rng, rng.randint(1, 40), range_size=60))
        inner = list(random_relation(rng, rng.randint(1, 40), range_size=60))
        fn = naive_matches if kernel == "naive" else sweep_matches
        hits = fn(DecodedRun.from_tuples(outer), DecodedRun.from_tuples(inner))
        assert hits == brute_force_hits(outer, inner)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_tie_heavy_starts(self, kernel):
        # Many equal starts stress the bisect bounds of the sweep.
        tuples = TemporalRelation.from_records(
            [(5, 5 + (i % 3), i) for i in range(12)]
        )
        run = DecodedRun.from_tuples(list(tuples))
        fn = naive_matches if kernel == "naive" else sweep_matches
        assert fn(run, run) == brute_force_hits(list(tuples), list(tuples))

    def test_sweep_equals_naive_order(self):
        rng = random.Random(99)
        outer = DecodedRun.from_tuples(
            list(random_relation(rng, 30, range_size=40))
        )
        inner = DecodedRun.from_tuples(
            list(random_relation(rng, 25, range_size=40))
        )
        # Not merely the same set: the same *list* — emission order is
        # part of the bit-identical contract.
        assert sweep_matches(outer, inner) == naive_matches(outer, inner)

    def test_decode_columns(self):
        tuples = [t for t in TemporalRelation.from_records([(1, 4, "a"), (2, 2, "b")])]
        starts, ends = decode_columns(tuples)
        assert list(starts) == [1, 2] and list(ends) == [4, 2]

    def test_decoded_run_order_is_start_sorted(self):
        rng = random.Random(3)
        tuples = list(random_relation(rng, 20, range_size=30))
        run = DecodedRun.from_tuples(tuples)
        ordered = [run.starts[i] for i in run.order]
        assert ordered == sorted(run.starts)
        assert list(run.sorted_starts) == ordered


class TestKernelSelection:
    def test_resolve_validates(self):
        rng = random.Random(0)
        rel = random_relation(rng, 5)
        with pytest.raises(ValueError, match="unknown join kernel"):
            resolve_kernel("bogus", rel, rel)

    def test_auto_picks_by_candidate_estimate(self):
        rng = random.Random(1)
        small = random_relation(rng, 8, range_size=100)
        assert choose_kernel(small, small) == "naive"
        big = long_lived_mixture(
            1_000, 0.5, Interval(1, 2**20), seed=7, name="big"
        )
        # Above both thresholds: the vectorized tier when numpy is
        # importable, the sweep tier otherwise.
        top = "numpy" if kernels.numpy_available() else "sweep"
        assert choose_kernel(big, big) == top
        assert resolve_kernel("auto", big, big) == top
        assert resolve_kernel(None, small, small) == "naive"
        assert resolve_kernel("naive", big, big) == "naive"
        # Between the sweep and numpy thresholds: always the sweep.
        mid = long_lived_mixture(
            700, 0.5, Interval(1, 2**20), seed=7, name="mid"
        )
        assert (
            kernels.AUTO_SWEEP_CANDIDATES
            <= kernels.estimate_candidates(mid, mid)
            < kernels.AUTO_NUMPY_CANDIDATES
        )
        assert choose_kernel(mid, mid) == "sweep"

    def test_auto_respects_disabled_decode_cache(self):
        # The sorted-column kernels amortise their start sort through
        # the decoded-run cache; with the cache pinned off, "auto" must
        # not recommend them (an explicit pin is still honoured).
        big = long_lived_mixture(
            1_000, 0.5, Interval(1, 2**20), seed=7, name="big"
        )
        assert choose_kernel(big, big, cache_enabled=False) == "naive"
        assert resolve_kernel("auto", big, big, cache_enabled=False) == "naive"
        assert resolve_kernel("sweep", big, big, cache_enabled=False) == "sweep"


# ---------------------------------------------------------------------------
# DecodedRunCache unit behaviour.
# ---------------------------------------------------------------------------


class TestDecodedRunCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            DecodedRunCache(0)

    def test_lru_eviction(self):
        cache = DecodedRunCache(2)
        runs = {k: DecodedRun.from_tuples([]) for k in "abc"}
        cache.put("a", runs["a"])
        cache.put("b", runs["b"])
        assert cache.get("a") is runs["a"]  # refreshes recency
        cache.put("c", runs["c"])  # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") is runs["a"]
        assert cache.get("c") is runs["c"]
        snap = cache.snapshot()
        assert snap["evictions"] == 1
        assert snap["entries"] == 2

    def test_fetch_builds_once(self):
        cache = DecodedRunCache(4)
        built = []

        def build():
            built.append(1)
            return DecodedRun.from_tuples([])

        first = cache.fetch("k", build)
        second = cache.fetch("k", build)
        assert first is second and len(built) == 1
        assert cache.snapshot()["hits"] == 1
        assert cache.snapshot()["misses"] == 1

    def test_invalidate_drops_entry(self):
        # The no-stale-decode mechanism: after invalidation the next
        # fetch must rebuild from freshly read tuples.
        cache = DecodedRunCache(4)
        stale = DecodedRun.from_tuples([])
        cache.put("k", stale)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False  # idempotent, not counted twice
        fresh = cache.fetch("k", lambda: DecodedRun.from_tuples([]))
        assert fresh is not stale
        snap = cache.snapshot()
        assert snap["invalidations"] == 1
        assert snap["misses"] == 1

    def test_publish_metrics(self):
        registry = MetricsRegistry()
        cache = DecodedRunCache(2)
        cache.fetch("k", lambda: DecodedRun.from_tuples([]))
        cache.fetch("k", lambda: DecodedRun.from_tuples([]))
        cache.publish_metrics(registry)
        snap = registry.snapshot()
        assert snap["counters"]["kernel.cache.hits"] == 1
        assert snap["counters"]["kernel.cache.misses"] == 1
        assert snap["gauges"]["kernel.cache.entries"] == 1


# ---------------------------------------------------------------------------
# End-to-end differential: kernels x backends x workloads x k.
# ---------------------------------------------------------------------------


def make_workloads():
    time_range = Interval(1, 30_000)
    uniform = (
        long_lived_mixture(150, 0.0, time_range, seed=11, name="u_outer"),
        long_lived_mixture(150, 0.0, time_range, seed=12, name="u_inner"),
    )
    mixed = (
        long_lived_mixture(150, 0.4, time_range, seed=13, name="m_outer"),
        long_lived_mixture(150, 0.4, time_range, seed=14, name="m_inner"),
    )
    rng = random.Random(15)
    points = (
        TemporalRelation(
            [t for t in random_relation(rng, 120, range_size=400, max_duration=1)],
            name="p_outer",
        ),
        TemporalRelation(
            [t for t in random_relation(rng, 120, range_size=400, max_duration=1)],
            name="p_inner",
        ),
    )
    return {"uniform": uniform, "mixed": mixed, "points": points}


WORKLOADS = make_workloads()


class TestDifferentialIdentity:
    """Sweep kernel == naive kernel, bit for bit, on every backend."""

    @pytest.fixture(scope="class")
    def references(self):
        return {
            (name, k): OIPJoin(kernel="naive", k_outer=k, k_inner=k).join(*rels)
            for name, rels in WORKLOADS.items()
            for k in (None, 8)
        }

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("k", (None, 8))
    def test_sweep_sequential(self, references, workload, k):
        result = OIPJoin(kernel="sweep", k_outer=k, k_inner=k).join(
            *WORKLOADS[workload]
        )
        reference = references[(workload, k)]
        assert fingerprint(result) == fingerprint(reference)
        assert result.details["kernel"] == "sweep"
        assert reference.details["kernel"] == "naive"
        # The sequential cache saw every revisited partition.
        cache = result.details["kernel_cache"]
        assert cache["misses"] > 0
        assert cache["invalidations"] == 0

    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_backends(self, references, config, kernel):
        result = OIPJoin(kernel=kernel, **CONFIGS[config]).join(
            *WORKLOADS["mixed"]
        )
        assert fingerprint(result) == fingerprint(references[("mixed", None)])

    def test_report_counter_sections_identical(self):
        outer, inner = WORKLOADS["mixed"]
        reports = {}
        for kernel in KERNELS:
            result = OIPJoin(kernel=kernel, collect_report=True).join(
                outer, inner
            )
            reports[kernel] = result.report
        assert (
            reports["naive"]["counters"] == reports["sweep"]["counters"]
        )
        assert (
            reports["naive"]["resilience"] == reports["sweep"]["resilience"]
        )
        assert reports["naive"]["result"] == reports["sweep"]["result"]


class TestCheckpointResume:
    """Cancel mid-join, resume — per kernel, and across kernels: a
    checkpoint written by one kernel must resume under the other."""

    @pytest.mark.parametrize("resume_kernel", KERNELS)
    @pytest.mark.parametrize("start_kernel", KERNELS)
    def test_resume_matches_uninterrupted(
        self, tmp_path, start_kernel, resume_kernel
    ):
        outer, inner = WORKLOADS["mixed"]
        reference = OIPJoin(kernel="naive").join(outer, inner)
        path = str(tmp_path / f"{start_kernel}-{resume_kernel}.ckpt")
        token = CancellationToken(cancel_after_checks=4)
        partial = OIPJoin(
            kernel=start_kernel,
            cancellation=token,
            checkpoint_path=path,
            checkpoint_every=1,
        ).join(outer, inner)
        assert not partial.completed
        resumed = OIPJoin(kernel=resume_kernel, resume_from=path).join(
            outer, inner
        )
        assert resumed.completed
        assert resumed.pair_keys() == reference.pair_keys()


class TestFaultInjection:
    """Corruption detected mid-run must invalidate the decoded-run cache,
    and the faulty sweep run must still equal the fault-free naive run."""

    @pytest.fixture(scope="class")
    def relations(self):
        outer = long_lived_mixture(
            220, 0.4, Interval(1, 20_000), seed=71, name="outer"
        )
        inner = long_lived_mixture(
            220, 0.4, Interval(1, 20_000), seed=72, name="inner"
        )
        return outer, inner

    def test_corruption_invalidates_cache(self, relations):
        outer, inner = relations
        fault_free = OIPJoin(kernel="naive").join(outer, inner)
        # Same seeded fault schedule for both kernels: recovery re-reads
        # are charged identically, so counters stay comparable.
        faulty_naive = OIPJoin(
            kernel="naive", fault_policy=fault_profile("corrupt", seed=4)
        ).join(outer, inner)
        # Seed 4 is pinned: its schedule corrupts blocks of partitions
        # that are already cached, forcing invalidations (not just
        # cold misses).
        result = OIPJoin(
            kernel="sweep", fault_policy=fault_profile("corrupt", seed=4)
        ).join(outer, inner)
        assert result.resilience.corruptions_detected > 0
        assert result.details["kernel_cache"]["invalidations"] >= 1
        assert result.pair_keys() == fault_free.pair_keys()
        assert result.counters.snapshot() == faulty_naive.counters.snapshot()

    @pytest.mark.parametrize("profile", ("transient", "chaos"))
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    def test_faulty_backends_match_fault_free(
        self, relations, profile, config
    ):
        outer, inner = relations
        fault_free = OIPJoin(kernel="naive").join(outer, inner)
        faulty_naive = OIPJoin(
            kernel="naive", fault_policy=fault_profile(profile, seed=5)
        ).join(outer, inner)
        result = OIPJoin(
            kernel="sweep",
            fault_policy=fault_profile(profile, seed=5),
            **CONFIGS[config],
        ).join(outer, inner)
        assert result.pair_keys() == fault_free.pair_keys()
        assert result.counters.snapshot() == faulty_naive.counters.snapshot()
        assert result.resilience.faults_observed > 0


# ---------------------------------------------------------------------------
# Configuration plumbing: OIPJoin, planner, metrics.
# ---------------------------------------------------------------------------


class TestConfiguration:
    def test_join_validates_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            OIPJoin(kernel="bogus")

    def test_join_validates_cache_size(self):
        with pytest.raises(ValueError, match="decode_cache_size"):
            OIPJoin(decode_cache_size=-1)

    def test_cache_size_zero_disables_cache(self):
        # decode_cache_size=0 is an explicit "no cache": the join runs
        # (bit-identically), reports no kernel_cache details, and auto
        # kernel selection stays on the cache-independent naive loop.
        outer, inner = WORKLOADS["mixed"]
        cached = OIPJoin(kernel="naive").join(outer, inner)
        uncached = OIPJoin(decode_cache_size=0).join(outer, inner)
        assert uncached.details["kernel"] == "naive"
        assert "kernel_cache" not in uncached.details
        assert fingerprint(uncached) == fingerprint(cached)

    def test_planner_validates_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            JoinPlanner(kernel="bogus")

    def test_planner_validates_cache_size(self):
        with pytest.raises(ValueError, match="decode_cache_size"):
            JoinPlanner(decode_cache_size=-1)

    def test_planner_respects_disabled_cache(self):
        # The bugfix pinned by this test: a planner whose decode cache
        # is pinned off must not recommend a sorted-column kernel, no
        # matter how large the candidate estimate is.
        big = long_lived_mixture(
            1_000, 0.5, Interval(1, 2**20), seed=7, name="big"
        )
        planner = JoinPlanner(decode_cache_size=0)
        plan = planner.plan(big, big)
        assert plan.estimated_candidates >= AUTO_SWEEP_CANDIDATES
        assert plan.algorithm.kernel == "naive"
        assert plan.algorithm.decode_cache_size == 0
        assert "decode cache disabled" in plan.reason

    def test_planner_pins_kernel(self):
        outer, inner = WORKLOADS["uniform"]
        plan = JoinPlanner(kernel="sweep").plan(outer, inner)
        assert plan.algorithm.kernel == "sweep"
        assert "sweep kernel (pinned)" in plan.reason

    def test_planner_auto_threshold(self):
        outer, inner = WORKLOADS["uniform"]
        plan = JoinPlanner().plan(outer, inner)
        # The planner must pin exactly what choose_kernel would pick —
        # one source of truth for the three-way threshold.
        assert plan.algorithm.kernel == choose_kernel(outer, inner)
        assert "kernel" in plan.reason

    def test_metrics_and_histogram_published(self):
        registry = MetricsRegistry()
        outer, inner = WORKLOADS["mixed"]
        OIPJoin(kernel="sweep", metrics=registry).join(outer, inner)
        snap = registry.snapshot()
        assert snap["counters"]["kernel.cache.misses"] > 0
        histogram = snap["histograms"]["join.kernel.candidates"]
        # One observation per (outer, relevant-inner) partition pair —
        # exactly one cache lookup (hit or miss) happens per pair.
        cache = OIPJoin(kernel="sweep").join(outer, inner).details[
            "kernel_cache"
        ]
        assert histogram["count"] == cache["hits"] + cache["misses"]

    def test_kernel_spans_traced(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        outer, inner = WORKLOADS["mixed"]
        OIPJoin(kernel="sweep", tracer=tracer).join(outer, inner)
        names = set()

        def walk(span):
            names.add(span.name)
            for child in span.children:
                walk(child)

        for root in tracer.roots:
            walk(root)
        assert "kernel.sweep" in names
        assert "kernel.decode" in names
