"""Tests for the shared join interface (JoinResult, charging helpers)."""

import pytest

from repro.core.base import JoinResult, OverlapJoinAlgorithm, join_pair_key
from repro.core.relation import TemporalRelation, TemporalTuple
from repro.storage.metrics import CostCounters, CostWeights


class _Probe(OverlapJoinAlgorithm):
    """Minimal concrete algorithm for interface tests."""

    name = "probe"

    def _execute(self, outer, inner, counters):
        pairs = []
        for a in outer:
            for b in inner:
                self._match(a, b, counters, pairs)
        return JoinResult(
            algorithm=self.name, pairs=pairs, counters=counters
        )


class TestJoinPairKey:
    def test_key_shape(self):
        pair = (TemporalTuple(1, 2, "a"), TemporalTuple(3, 4, "b"))
        assert join_pair_key(pair) == (1, 2, "a", 3, 4, "b")

    def test_keys_sort_deterministically(self):
        pairs = [
            (TemporalTuple(2, 2, 0), TemporalTuple(0, 5, 1)),
            (TemporalTuple(1, 1, 0), TemporalTuple(0, 5, 1)),
        ]
        keys = sorted(join_pair_key(p) for p in pairs)
        assert keys[0][0] == 1


class TestJoinResult:
    def _result(self):
        counters = CostCounters()
        counters.charge_cpu(10)
        counters.charge_read(2)
        counters.charge_false_hit(3)
        counters.charge_result(5)
        pairs = [
            (TemporalTuple(0, 1, i), TemporalTuple(0, 1, i))
            for i in range(5)
        ]
        return JoinResult(algorithm="x", pairs=pairs, counters=counters)

    def test_len_and_cardinality(self):
        result = self._result()
        assert len(result) == 5
        assert result.cardinality == 5

    def test_false_hit_ratio(self):
        assert self._result().false_hit_ratio == pytest.approx(3 / 8)

    def test_modelled_cost(self):
        result = self._result()
        weights = CostWeights(cpu=1.0, io=100.0)
        assert result.modelled_cost(weights) == pytest.approx(210.0)

    def test_pair_keys_sorted(self):
        keys = self._result().pair_keys()
        assert keys == sorted(keys)


class TestBaseJoinBehaviour:
    def test_empty_inputs_short_circuit(self):
        probe = _Probe()
        empty = TemporalRelation([])
        full = TemporalRelation.from_pairs([(0, 1)])
        for outer, inner in ((empty, full), (full, empty), (empty, empty)):
            result = probe.join(outer, inner)
            assert result.pairs == []
            assert result.counters.cpu_comparisons == 0

    def test_result_counter_set_by_wrapper(self):
        probe = _Probe()
        relation = TemporalRelation.from_pairs([(0, 5), (3, 9), (20, 21)])
        result = probe.join(relation, relation)
        assert result.counters.result_tuples == len(result.pairs)

    def test_match_charges_two_comparisons(self):
        counters = CostCounters()
        pairs = []
        OverlapJoinAlgorithm._match(
            TemporalTuple(0, 1), TemporalTuple(5, 6), counters, pairs
        )
        assert counters.cpu_comparisons == 2
        assert counters.false_hits == 1
        assert pairs == []

    def test_match_appends_on_overlap(self):
        counters = CostCounters()
        pairs = []
        OverlapJoinAlgorithm._match(
            TemporalTuple(0, 5), TemporalTuple(5, 6), counters, pairs
        )
        assert len(pairs) == 1
        assert counters.false_hits == 0

    def test_repr_mentions_device(self):
        assert "main-memory" in repr(_Probe())

    def test_fresh_counters_per_join(self):
        probe = _Probe()
        relation = TemporalRelation.from_pairs([(0, 1)])
        first = probe.join(relation, relation)
        second = probe.join(relation, relation)
        assert first.counters is not second.counters
        assert second.counters.cpu_comparisons == 2
