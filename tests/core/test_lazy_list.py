"""Tests for the lazy partition list and OIPCREATE (Section 4.2/4.3,
Algorithm 1, Example 5)."""

import random

import pytest

from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration
from repro.core.relation import TemporalRelation, TemporalTuple
from repro.storage.manager import StorageManager


def build_paper_list(paper_s):
    config = OIPConfiguration.for_relation(paper_s, 4)
    return oip_create(paper_s, config)


class TestExample5:
    """The worked construction of Example 5 / Figure 4."""

    def test_final_structure(self, paper_s):
        built = build_paper_list(paper_s)
        nodes = [
            (node.i, node.j, [t.payload for t in node.run.iter_tuples()])
            for node in built.iter_nodes()
        ]
        assert nodes == [
            (1, 3, ["s4", "s6"]),
            (2, 3, ["s7"]),
            (0, 1, ["s3"]),
            (1, 1, ["s5"]),
            (0, 0, ["s1", "s2"]),
        ]

    def test_main_list_is_branch_heads(self, paper_s):
        built = build_paper_list(paper_s)
        assert [(n.i, n.j) for n in built.iter_main()] == [
            (1, 3),
            (0, 1),
            (0, 0),
        ]

    def test_five_of_ten_partitions_used(self, paper_s):
        # Example 2: p_{0,3}, p_{0,2}, p_{1,2}, p_{2,2}, p_{3,3} are empty.
        built = build_paper_list(paper_s)
        assert built.partition_count == 5
        empty = {(0, 3), (0, 2), (1, 2), (2, 2), (3, 3)}
        assert empty.isdisjoint(set(built.index_pairs()))

    def test_every_tuple_stored_once(self, paper_s):
        built = build_paper_list(paper_s)
        assert built.tuple_count == len(paper_s)
        payloads = [
            t.payload
            for node in built.iter_nodes()
            for t in node.run.iter_tuples()
        ]
        assert sorted(payloads) == sorted(t.payload for t in paper_s)


class TestStructuralInvariants:
    def _random_list(self, seed, cardinality=200, k=13):
        rng = random.Random(seed)
        tuples = []
        for index in range(cardinality):
            start = rng.randint(0, 400)
            end = min(start + rng.randint(1, 120) - 1, 499)
            tuples.append(TemporalTuple(start, end, index))
        relation = TemporalRelation(tuples)
        config = OIPConfiguration.for_relation(relation, k)
        return relation, config, oip_create(relation, config)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_main_list_j_strictly_decreasing(self, seed):
        _, _, built = self._random_list(seed)
        js = [node.j for node in built.iter_main()]
        assert js == sorted(js, reverse=True)
        assert len(set(js)) == len(js)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_branch_list_i_strictly_increasing_same_j(self, seed):
        _, _, built = self._random_list(seed)
        for head in built.iter_main():
            node = head
            previous_i = -1
            while node is not None:
                assert node.j == head.j
                assert node.i > previous_i
                previous_i = node.i
                node = node.right

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tuples_in_correct_partition(self, seed):
        relation, config, built = self._random_list(seed)
        for node in built.iter_nodes():
            for tup in node.run.iter_tuples():
                assert config.assign(tup) == (node.i, node.j)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_duplicate_partitions(self, seed):
        _, _, built = self._random_list(seed)
        pairs = built.index_pairs()
        assert len(pairs) == len(set(pairs))

    def test_empty_relation_gives_empty_list(self):
        relation = TemporalRelation([])
        config = OIPConfiguration(k=4, d=3, o=0)
        built = oip_create(relation, config)
        assert built.head is None
        assert built.partition_count == 0

    def test_single_tuple(self):
        relation = TemporalRelation.from_pairs([(3, 7)])
        config = OIPConfiguration.for_relation(relation, 5)
        built = oip_create(relation, config)
        assert built.partition_count == 1


class TestRelevantNavigation:
    """iter_relevant implements the Lemma 1 walk of Figure 3(a)."""

    def test_paper_query(self, paper_s):
        built = build_paper_list(paper_s)
        # Query Q = [2012-5, 2012-5] -> s = e = 1 (Example 3).
        relevant = [(n.i, n.j) for n in built.iter_relevant(1, 1)]
        assert relevant == [(1, 3), (0, 1), (1, 1)]

    def test_relevant_matches_filter(self, paper_s):
        built = build_paper_list(paper_s)
        for s in range(4):
            for e in range(s, 4):
                walked = set(
                    (n.i, n.j) for n in built.iter_relevant(s, e)
                )
                expected = {
                    (i, j)
                    for (i, j) in built.index_pairs()
                    if j >= s and i <= e
                }
                assert walked == expected

    def test_relevant_with_no_match(self, paper_s):
        built = build_paper_list(paper_s)
        # e = -1: no partition can have i <= -1.
        assert list(built.iter_relevant(0, -1)) == []


class TestStorageLayout:
    """Algorithm 1's sort makes partition storage contiguous."""

    def test_blocks_allocated_in_sorted_order(self, paper_s):
        storage = StorageManager()
        config = OIPConfiguration.for_relation(paper_s, 4)
        built = oip_create(paper_s, config, storage)
        # Each partition occupies consecutive block ids.
        for node in built.iter_nodes():
            ids = node.run.block_ids
            assert ids == list(range(ids[0], ids[0] + len(ids)))
        # Allocation follows the (j ASC, i DESC) sort, which is exactly
        # reverse grid order — a full scan in that order is sequential.
        grid_ids = [
            block_id
            for node in built.iter_nodes()
            for block_id in node.run.block_ids
        ]
        assert list(reversed(grid_ids)) == list(range(len(grid_ids)))

    def test_build_charges_writes(self, paper_s):
        storage = StorageManager()
        config = OIPConfiguration.for_relation(paper_s, 4)
        oip_create(paper_s, config, storage)
        assert storage.counters.block_writes >= 5  # one per partition

    def test_default_storage_created_when_missing(self, paper_s):
        config = OIPConfiguration.for_relation(paper_s, 4)
        built = oip_create(paper_s, config)
        assert built.storage is not None
