"""Unit tests for the discrete interval type (paper Section 3)."""

import pytest

from repro.core.interval import Interval, IntervalError


class TestConstruction:
    def test_valid_interval(self):
        interval = Interval(3, 7)
        assert interval.start == 3
        assert interval.end == 7

    def test_single_point(self):
        assert Interval(5, 5).duration == 1

    def test_negative_coordinates(self):
        assert Interval(-10, -2).duration == 9

    def test_end_before_start_rejected(self):
        with pytest.raises(IntervalError):
            Interval(7, 3)

    def test_point_constructor(self):
        assert Interval.point(4) == Interval(4, 4)

    def test_from_duration(self):
        assert Interval.from_duration(3, 5) == Interval(3, 7)

    def test_from_duration_rejects_non_positive(self):
        with pytest.raises(IntervalError):
            Interval.from_duration(3, 0)

    def test_immutable(self):
        interval = Interval(1, 2)
        with pytest.raises(AttributeError):
            interval.start = 9

    def test_coerces_to_int(self):
        interval = Interval(True, 5)  # bool is an int subtype
        assert interval.start == 1


class TestDuration:
    """Paper: |T| = (TE - TS) + 1 — both endpoints inclusive."""

    def test_duration_inclusive(self):
        assert Interval(2, 5).duration == 4

    def test_len_matches_duration(self):
        assert len(Interval(0, 9)) == 10

    def test_iteration_yields_all_points(self):
        assert list(Interval(3, 6)) == [3, 4, 5, 6]


class TestContainment:
    def test_contains_point_inside(self):
        assert Interval(2, 8).contains_point(5)

    def test_contains_point_at_endpoints(self):
        interval = Interval(2, 8)
        assert interval.contains_point(2)
        assert interval.contains_point(8)

    def test_contains_point_outside(self):
        assert not Interval(2, 8).contains_point(9)

    def test_in_operator(self):
        assert 4 in Interval(4, 4)
        assert 5 not in Interval(4, 4)

    def test_contains_interval(self):
        assert Interval(1, 10).contains(Interval(3, 7))
        assert Interval(1, 10).contains(Interval(1, 10))

    def test_contains_interval_negative(self):
        assert not Interval(1, 10).contains(Interval(0, 5))
        assert not Interval(1, 10).contains(Interval(5, 11))


class TestOverlap:
    def test_overlapping(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))

    def test_symmetric(self):
        a, b = Interval(1, 5), Interval(3, 4)
        assert a.overlaps(b) and b.overlaps(a)

    def test_adjacent_do_not_overlap(self):
        # Closed intervals: [1,4] and [5,9] share no point.
        assert not Interval(1, 4).overlaps(Interval(5, 9))

    def test_disjoint(self):
        assert not Interval(1, 2).overlaps(Interval(10, 12))

    def test_intersection(self):
        assert Interval(1, 6).intersection(Interval(4, 9)) == Interval(4, 6)

    def test_intersection_of_disjoint_raises(self):
        with pytest.raises(IntervalError):
            Interval(1, 2).intersection(Interval(5, 6))

    def test_union_span(self):
        assert Interval(1, 3).union_span(Interval(7, 9)) == Interval(1, 9)


class TestArithmetic:
    def test_shift_right(self):
        assert Interval(2, 4).shift(3) == Interval(5, 7)

    def test_shift_left(self):
        assert Interval(2, 4).shift(-2) == Interval(0, 2)

    def test_shift_preserves_duration(self):
        assert Interval(2, 4).shift(100).duration == 3

    def test_expand(self):
        assert Interval(5, 6).expand(2, 3) == Interval(3, 9)

    def test_expand_negative_margins_shrink(self):
        assert Interval(0, 9).expand(-2, -3) == Interval(2, 6)

    def test_clamp(self):
        assert Interval(0, 100).clamp(Interval(10, 20)) == Interval(10, 20)


class TestOrderingAndHashing:
    def test_equality(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert Interval(1, 2) != Interval(1, 3)

    def test_not_equal_to_other_types(self):
        assert Interval(1, 2) != (1, 2)

    def test_lexicographic_order(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert Interval(1, 3) < Interval(1, 5)

    def test_sortable(self):
        intervals = [Interval(3, 4), Interval(1, 9), Interval(1, 2)]
        assert sorted(intervals) == [
            Interval(1, 2),
            Interval(1, 9),
            Interval(3, 4),
        ]

    def test_hashable(self):
        assert len({Interval(1, 2), Interval(1, 2), Interval(2, 3)}) == 2

    def test_as_tuple(self):
        assert Interval(4, 9).as_tuple() == (4, 9)


class TestAdjacency:
    def test_precedes(self):
        assert Interval(1, 4).precedes(Interval(5, 6))
        assert not Interval(1, 5).precedes(Interval(5, 6))

    def test_meets(self):
        assert Interval(1, 4).meets(Interval(5, 6))
        assert not Interval(1, 4).meets(Interval(6, 7))
