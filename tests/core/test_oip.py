"""Tests for OIP configurations and partition math (Section 4.1):
Definitions 1-2, Lemma 1, Lemma 2, Proposition 1, Lemma 3."""

import pytest

from repro.core.interval import Interval
from repro.core.oip import (
    OIPConfiguration,
    possible_partition_count,
    tightening_factor,
    used_partition_bound,
)
from repro.core.relation import TemporalTuple


class TestConfiguration:
    """Definition 1: (k, d, o) with d = ceil(|U| / k), o = US."""

    def test_paper_example_2(self, paper_s):
        config = OIPConfiguration.for_relation(paper_s, 4)
        assert config == OIPConfiguration(k=4, d=3, o=1)

    def test_paper_figure_1_outer(self, paper_r):
        # Time range [2012-5, 2012-11]: d = ceil(7/4) = 2.
        config = OIPConfiguration.for_relation(paper_r, 4)
        assert config == OIPConfiguration(k=4, d=2, o=5)

    def test_granule_duration_rounds_up(self):
        config = OIPConfiguration.for_time_range(Interval(0, 9), 3)
        assert config.d == 4

    def test_exact_division(self):
        config = OIPConfiguration.for_time_range(Interval(0, 11), 4)
        assert config.d == 3

    def test_k_of_one(self):
        config = OIPConfiguration.for_time_range(Interval(0, 9), 1)
        assert config.d == 10

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            OIPConfiguration.for_time_range(Interval(0, 9), 0)
        with pytest.raises(ValueError):
            OIPConfiguration(k=0, d=1, o=0)

    def test_invalid_d_rejected(self):
        with pytest.raises(ValueError):
            OIPConfiguration(k=1, d=0, o=0)

    def test_partitioned_time_range_may_exceed_relation_range(self):
        # |U| = 10, k = 3 -> d = 4 -> partitioned range covers 12 points.
        config = OIPConfiguration.for_time_range(Interval(0, 9), 3)
        assert config.time_range == Interval(0, 11)


class TestAssignment:
    """Definition 2: i = floor((TS-o)/d), j = floor((TE-o)/d)."""

    def test_paper_tuple_s1(self, paper_s):
        config = OIPConfiguration.for_relation(paper_s, 4)
        assert config.assign(TemporalTuple(1, 1)) == (0, 0)

    def test_paper_tuple_s6(self, paper_s):
        config = OIPConfiguration.for_relation(paper_s, 4)
        assert config.assign(TemporalTuple(6, 10)) == (1, 3)

    def test_all_paper_assignments(self, paper_s):
        config = OIPConfiguration.for_relation(paper_s, 4)
        expected = {
            "s1": (0, 0),
            "s2": (0, 0),
            "s3": (0, 1),
            "s4": (1, 3),
            "s5": (1, 1),
            "s6": (1, 3),
            "s7": (2, 3),
        }
        for tup in paper_s:
            assert config.assign(tup) == expected[tup.payload]

    def test_assignment_covers_tuple(self):
        config = OIPConfiguration(k=5, d=4, o=10)
        for start, end in [(10, 10), (13, 14), (11, 29), (26, 29)]:
            tup = TemporalTuple(start, end)
            i, j = config.assign(tup)
            partition = config.partition_interval(i, j)
            assert partition.contains(tup.interval)

    def test_assignment_is_smallest_covering_partition(self):
        config = OIPConfiguration(k=6, d=3, o=0)
        for start, end in [(0, 2), (2, 4), (5, 12), (0, 17)]:
            tup = TemporalTuple(start, end)
            i, j = config.assign(tup)
            # Any strictly smaller partition (larger i or smaller j)
            # must fail to cover the tuple.
            if i + 1 <= j:
                assert not config.partition_interval(i + 1, j).contains(
                    tup.interval
                )
            if i <= j - 1:
                assert not config.partition_interval(i, j - 1).contains(
                    tup.interval
                )

    def test_partition_interval_formula(self):
        config = OIPConfiguration(k=4, d=3, o=1)
        assert config.partition_interval(0, 1) == Interval(1, 6)
        assert config.partition_interval(2, 3) == Interval(7, 12)

    def test_partition_interval_rejects_bad_indices(self):
        config = OIPConfiguration(k=4, d=3, o=1)
        with pytest.raises(ValueError):
            config.partition_interval(2, 1)
        with pytest.raises(ValueError):
            config.partition_interval(-1, 1)

    def test_covers(self):
        config = OIPConfiguration(k=4, d=3, o=1)
        assert config.covers(TemporalTuple(1, 12))
        assert not config.covers(TemporalTuple(0, 3))
        assert not config.covers(TemporalTuple(10, 13))


class TestRelevantPartitions:
    """Lemma 1: relevant partitions satisfy i <= e and j >= s."""

    def test_paper_example_3(self, paper_s):
        config = OIPConfiguration.for_relation(paper_s, 4)
        s, e = config.query_indices(Interval(5, 5))
        assert (s, e) == (1, 1)
        relevant = {
            (i, j)
            for i in range(4)
            for j in range(i, 4)
            if config.is_relevant(i, j, s, e)
        }
        assert relevant == {(0, 3), (0, 2), (0, 1), (1, 3), (1, 2), (1, 1)}

    def test_lemma_1_soundness(self):
        """Every partition holding a tuple that overlaps Q is relevant."""
        config = OIPConfiguration(k=5, d=4, o=0)
        query = Interval(6, 9)
        s, e = config.query_indices(query)
        for start in range(0, 20):
            for end in range(start, 20):
                tup = TemporalTuple(start, end)
                if tup.overlaps_interval(query):
                    i, j = config.assign(tup)
                    assert config.is_relevant(i, j, s, e)

    def test_irrelevant_partitions_hold_no_overlapping_tuple(self):
        """Converse sanity: tuples in non-relevant partitions miss Q."""
        config = OIPConfiguration(k=5, d=4, o=0)
        query = Interval(6, 9)
        s, e = config.query_indices(query)
        for start in range(0, 20):
            for end in range(start, 20):
                tup = TemporalTuple(start, end)
                i, j = config.assign(tup)
                if not config.is_relevant(i, j, s, e):
                    assert not tup.overlaps_interval(query)


class TestClusteringGuarantee:
    """Lemma 2: |p.T| - |r.T| < 2d, independent of the tuple duration."""

    def test_exhaustive_small_configuration(self):
        config = OIPConfiguration(k=6, d=3, o=0)
        span = config.time_range
        for start in range(span.start, span.end + 1):
            for end in range(start, span.end + 1):
                slack = config.clustering_slack(TemporalTuple(start, end))
                assert 0 <= slack < 2 * config.d

    def test_slack_bound_is_tight(self):
        """The worst case 2d - 2 is achieved (proof of Lemma 2)."""
        config = OIPConfiguration(k=4, d=5, o=0)
        # Smallest tuple in p_{0,1}: [d-1, d] -> duration 2, partition 10.
        worst = TemporalTuple(config.d - 1, config.d)
        assert config.clustering_slack(worst) == 2 * config.d - 2

    def test_paper_illustration(self):
        """2000-day range, k = 200 -> d = 10: the slack for an 80-day and
        a 282-day tuple is below 20 days (Section 4.1)."""
        config = OIPConfiguration.for_time_range(Interval(1, 2000), 200)
        assert config.d == 10
        eighty = TemporalTuple(11, 90)
        long_lived = TemporalTuple(9, 290)
        assert config.clustering_slack(eighty) < 20
        assert config.clustering_slack(long_lived) < 20


class TestPartitionCounts:
    """Proposition 1 and Lemma 3."""

    def test_proposition_1(self):
        assert possible_partition_count(1) == 1
        assert possible_partition_count(4) == 10
        assert possible_partition_count(200) == 20_100

    def test_proposition_1_matches_enumeration(self):
        for k in range(1, 12):
            enumerated = sum(1 for i in range(k) for _ in range(i, k))
            assert possible_partition_count(k) == enumerated

    def test_paper_example_4(self):
        """lambda = 0.2, k = 200 -> at most 7,380 used partitions."""
        assert used_partition_bound(200, 0.2, 10**9) == 7_380

    def test_lemma_3_capped_by_cardinality(self):
        assert used_partition_bound(200, 0.2, 100) == 100

    def test_lemma_3_short_tuples(self):
        # lambda ~ 0: tuples span at most 1 granule, the longest used
        # partition spans at most 2 -> bound = k + (k - 1)... the closed
        # form gives k*(0+1) - 0 = k for g = 0.
        assert used_partition_bound(10, 0.0, 10**6) == 10

    def test_lemma_3_bounds_actual_usage(self):
        """The bound dominates the real partition count for random data."""
        import random

        from repro.core.lazy_list import oip_create
        from repro.core.relation import TemporalRelation, TemporalTuple

        rng = random.Random(3)
        tuples = []
        for index in range(300):
            start = rng.randint(0, 900)
            end = min(start + rng.randint(1, 100) - 1, 999)
            tuples.append(TemporalTuple(start, end, index))
        relation = TemporalRelation(tuples)
        config = OIPConfiguration.for_relation(relation, 20)
        built = oip_create(relation, config)
        bound = used_partition_bound(
            20, relation.duration_fraction, relation.cardinality
        )
        assert built.partition_count <= bound

    def test_tightening_factor_example_4(self):
        """Example 4 computes tau = 7380/20100 ~ 0.37 (the text's
        1890/5050 uses the same ratio at k = 100)."""
        tau = tightening_factor(200, 0.2, 10**9)
        assert tau == pytest.approx(7380 / 20100)

    def test_tightening_factor_bounds(self):
        for k in (1, 5, 50):
            for lam in (0.0, 0.1, 1.0):
                tau = tightening_factor(k, lam, 10**9)
                assert 0.0 < tau <= 1.0

    def test_tightening_factor_empty_relation(self):
        assert 0.0 < tightening_factor(10, 0.5, 0) <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            possible_partition_count(-1)
        with pytest.raises(ValueError):
            used_partition_bound(0, 0.5, 10)
        with pytest.raises(ValueError):
            used_partition_bound(5, 0.5, -1)
