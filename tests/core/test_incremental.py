"""Tests for incrementally maintained OIP (future-work extension)."""

import random

import pytest

from repro.core.incremental import IncrementalOIP
from repro.core.interval import Interval
from repro.core.oip import OIPConfiguration
from repro.core.relation import TemporalRelation, TemporalTuple


def build_from(pairs, k=4):
    return IncrementalOIP.from_relation(
        TemporalRelation.from_pairs(pairs), k
    )


class TestInsert:
    def test_placement_matches_definition_2(self, paper_s):
        partitioning = IncrementalOIP.from_relation(paper_s, 4)
        placed = {
            tuple(sorted(t.payload for t in tuples)): key
            for key, tuples in partitioning.iter_partitions()
        }
        assert placed[("s4", "s6")] == (1, 3)
        assert placed[("s1", "s2")] == (0, 0)
        partitioning.check_invariants()

    def test_insert_returns_indices(self):
        partitioning = build_from([(0, 11)], k=4)
        assert partitioning.insert(TemporalTuple(0, 2)) == (0, 0)
        assert partitioning.insert(TemporalTuple(3, 11)) == (1, 3)

    def test_partition_created_lazily(self):
        partitioning = build_from([(0, 11)], k=4)
        count_before = partitioning.partition_count
        partitioning.insert(TemporalTuple(0, 2))
        assert partitioning.partition_count == count_before + 1

    def test_size_tracked(self):
        partitioning = build_from([(0, 11)], k=4)
        assert len(partitioning) == 1
        partitioning.insert(TemporalTuple(1, 1))
        assert len(partitioning) == 2


class TestExpansion:
    """The future-work sketch: grow on both boundaries by whole
    granules, maintaining an index offset."""

    def test_expand_right(self):
        partitioning = build_from([(0, 11)], k=4)  # d = 3, range [0, 11]
        partitioning.insert(TemporalTuple(12, 13))
        assert partitioning.granule_duration == 3  # d never changes
        assert partitioning.k == 5
        assert partitioning.time_range == Interval(0, 14)
        partitioning.check_invariants()

    def test_expand_left_shifts_indices(self):
        partitioning = build_from([(0, 11)], k=4)
        partitioning.insert(TemporalTuple(-1, -1))
        assert partitioning.k == 5
        assert partitioning.time_range == Interval(-3, 11)
        # The pre-existing tuple [0, 11] is now logically at (1, 4).
        keys = dict(partitioning.iter_partitions())
        assert (1, 4) in keys
        partitioning.check_invariants()

    def test_expand_both_sides_at_once(self):
        partitioning = build_from([(0, 11)], k=4)
        partitioning.insert(TemporalTuple(-7, 20))
        assert partitioning.time_range.contains(Interval(-7, 20))
        partitioning.check_invariants()

    def test_expansion_preserves_clustering_guarantee(self):
        """Lemma 2 survives arbitrary expansions because d is fixed."""
        rng = random.Random(3)
        partitioning = build_from([(0, 11)], k=4)
        for _ in range(200):
            start = rng.randint(-500, 500)
            end = start + rng.randint(0, 100)
            partitioning.insert(TemporalTuple(start, end))
        partitioning.check_invariants()

    def test_far_insert_grows_many_granules(self):
        partitioning = build_from([(0, 11)], k=4)
        partitioning.insert(TemporalTuple(300, 300))
        assert partitioning.k == 4 + (300 - 11 + 2) // 3
        partitioning.check_invariants()


class TestDelete:
    def test_delete_existing(self):
        partitioning = build_from([(0, 2), (3, 5)], k=2)
        assert partitioning.delete(TemporalTuple(0, 2, 0))
        assert len(partitioning) == 1

    def test_delete_drops_empty_partition(self):
        partitioning = build_from([(0, 2), (3, 5)], k=2)
        count = partitioning.partition_count
        partitioning.delete(TemporalTuple(0, 2, 0))
        assert partitioning.partition_count == count - 1

    def test_delete_missing_returns_false(self):
        partitioning = build_from([(0, 2)], k=2)
        assert not partitioning.delete(TemporalTuple(3, 5, "nope"))
        assert not partitioning.delete(TemporalTuple(0, 2, "wrong payload"))

    def test_delete_one_of_duplicates(self):
        partitioning = build_from([(0, 2)], k=2)
        partitioning.insert(TemporalTuple(0, 2, 0))
        assert partitioning.delete(TemporalTuple(0, 2, 0))
        assert len(partitioning) == 1


class TestQuery:
    def test_query_matches_filter_oracle(self):
        rng = random.Random(5)
        relation = TemporalRelation.from_pairs(
            [
                (s, s + rng.randint(0, 60))
                for s in (rng.randint(0, 400) for _ in range(150))
            ]
        )
        partitioning = IncrementalOIP.from_relation(relation, 8)
        for _ in range(40):
            qs = rng.randint(-20, 450)
            qe = qs + rng.randint(0, 80)
            query = Interval(qs, qe)
            found = sorted(t.payload for t in partitioning.query(query))
            expected = sorted(
                t.payload
                for t in relation
                if t.overlaps_interval(query)
            )
            assert found == expected

    def test_query_after_mixed_updates(self):
        rng = random.Random(6)
        partitioning = build_from([(0, 40)], k=4)
        live = [TemporalTuple(0, 40, 0)]
        payload = 1
        for _ in range(300):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                assert partitioning.delete(victim)
            else:
                start = rng.randint(-100, 300)
                tup = TemporalTuple(start, start + rng.randint(0, 50), payload)
                payload += 1
                partitioning.insert(tup)
                live.append(tup)
        partitioning.check_invariants()
        query = Interval(-50, 150)
        found = sorted(t.payload for t in partitioning.query(query))
        expected = sorted(
            t.payload for t in live if t.overlaps_interval(query)
        )
        assert found == expected

    def test_query_outside_range(self):
        partitioning = build_from([(0, 11)], k=4)
        assert partitioning.query(Interval(100, 200)) == []

    def test_candidates_superset_of_results(self, paper_s):
        partitioning = IncrementalOIP.from_relation(paper_s, 4)
        query = Interval(5, 5)
        candidates = {t.payload for t in partitioning.candidates(query)}
        results = {t.payload for t in partitioning.query(query)}
        assert results <= candidates
        # The paper's example: s6 is the false hit for Q = [2012-5].
        assert candidates - results == {"s6"}

    def test_config_reflects_expansion(self):
        partitioning = build_from([(0, 11)], k=4)
        partitioning.insert(TemporalTuple(-3, -3))
        config = partitioning.config
        assert isinstance(config, OIPConfiguration)
        assert config.o == -3
        assert config.k == 5
