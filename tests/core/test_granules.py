"""Tests for the cost model and the derivation of k (Section 6.2,
Example 8, Figure 5)."""

import pytest

from repro.core.granules import (
    JoinCostModel,
    approximate_k,
    cost_model_for,
    derive_k,
    exact_k,
)
from repro.core.relation import TemporalRelation
from repro.storage.device import DeviceProfile
from repro.storage.metrics import CostWeights


def example_8_model() -> JoinCostModel:
    """Example 8: n_r = 10M, n_s = 100M, lambda_r = 1e-4,
    lambda_s = 5e-4, b = 14, c_cpu = 0.5, c_io = 10."""
    return JoinCostModel(
        outer_cardinality=10_000_000,
        inner_cardinality=100_000_000,
        outer_duration_fraction=0.0001,
        inner_duration_fraction=0.0005,
        tuples_per_block=14,
        weights=CostWeights(cpu=0.5, io=10.0),
    )


class TestCostModelValidation:
    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            JoinCostModel(-1, 10, 0.1, 0.1)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            JoinCostModel(1, 1, 0.1, 0.1, tuples_per_block=0)

    def test_bad_duration_fraction_rejected(self):
        with pytest.raises(ValueError):
            JoinCostModel(1, 1, 1.5, 0.1)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(cpu=-1.0, io=10.0)


class TestExample8:
    """The fixed point of Equation (2) for Example 8's parameters."""

    def test_converged_outer_partitions(self):
        """At the converged k the paper reports |p_r| = 49,560."""
        model = example_8_model()
        assert model.outer_partitions(16_521) == 49_560

    def test_converged_tau(self):
        """At the converged k the paper reports tau = 0.00121."""
        model = example_8_model()
        assert model.tightening(16_521) == pytest.approx(0.00121, abs=5e-6)

    def test_iteration_converges_near_paper_value(self):
        """The paper converges to k = 16,521; implementation-level
        rounding differences keep us within 1%."""
        derivation = derive_k(example_8_model())
        assert derivation.converged
        assert derivation.k == pytest.approx(16_521, rel=0.01)

    def test_first_iterate_matches_paper_scale(self):
        """The paper's first iterate is k_1 = 64,633 (ours lands within
        1%: same cost expression, continuous-vs-rounded differences)."""
        derivation = derive_k(example_8_model())
        assert derivation.trace[0].k == 1
        assert derivation.trace[1].k == pytest.approx(64_633, rel=0.01)

    def test_trace_alternates_like_the_paper(self):
        """Example 8 over- and under-shoots alternately before settling."""
        derivation = derive_k(example_8_model())
        ks = [step.k for step in derivation.trace[1:]]
        final = derivation.k
        above = [k > final for k in ks[:-1]]
        # Strict alternation of over/under-shoot until convergence.
        assert all(a != b for a, b in zip(above, above[1:]))

    def test_figure_5b_larger_relations(self):
        """n_r = 100M, n_s = 1G converges too (Figure 5(b))."""
        model = JoinCostModel(
            outer_cardinality=100_000_000,
            inner_cardinality=1_000_000_000,
            outer_duration_fraction=0.0001,
            inner_duration_fraction=0.0005,
            tuples_per_block=14,
            weights=CostWeights(cpu=0.5, io=10.0),
        )
        derivation = derive_k(model)
        assert derivation.converged
        assert derivation.k > 16_521  # larger inputs need more granules


class TestRootSolvers:
    def test_exact_root_is_stationary_point(self):
        """The root satisfies x*tau*(2k/3 + 1/3) = y / k^2."""
        x, y, tau = 11.0, 2.0e15, 1.0
        k = exact_k(x, y, tau)
        left = x * tau * (2 * k / 3 + 1 / 3)
        right = y / (k * k)
        assert left == pytest.approx(right, rel=1e-9)

    def test_approximation_close_to_exact(self):
        """The paper: k ~ cbrt(3y / (2 x tau)); within ~1% of exact for
        realistic magnitudes."""
        x, y, tau = 11.0, 2.0e15, 0.001
        assert approximate_k(x, y, tau) == pytest.approx(
            exact_k(x, y, tau), rel=0.01
        )

    def test_tiny_y_falls_back_to_one(self):
        assert exact_k(10.0, 0.0, 1.0) == 1.0
        assert approximate_k(10.0, 0.0, 1.0) == 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            exact_k(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            approximate_k(1.0, 1.0, 0.0)


class TestCostFunction:
    """Equation (1) as a function of k (the Figure 7(a) curve)."""

    def test_cost_is_convex_around_minimum(self):
        model = example_8_model()
        derivation = derive_k(model)
        k = derivation.k
        cost_at_k = model.overhead_cost(k)
        assert cost_at_k < model.overhead_cost(max(1, k // 4))
        assert cost_at_k < model.overhead_cost(k * 4)

    def test_derived_k_near_cost_minimum(self):
        """Scanning k around the derived value finds no much better k."""
        model = example_8_model()
        k = derive_k(model).k
        best = min(
            model.overhead_cost(candidate)
            for candidate in range(max(1, k // 2), k * 2, max(1, k // 50))
        )
        assert model.overhead_cost(k) <= best * 1.05

    def test_cost_rejects_bad_k(self):
        with pytest.raises(ValueError):
            example_8_model().overhead_cost(0)

    def test_more_io_weight_lowers_k(self):
        """Figure 6(a): when IO gets relatively more expensive (smaller
        c_cpu/c_io), fewer granules are used."""
        cheap_cpu = JoinCostModel(
            10_000_000, 100_000_000, 0.001, 0.001,
            weights=CostWeights.from_ratio(0.001),
        )
        costly_cpu = JoinCostModel(
            10_000_000, 100_000_000, 0.001, 0.001,
            weights=CostWeights.from_ratio(100.0),
        )
        assert derive_k(cheap_cpu).k < derive_k(costly_cpu).k


class TestDeriveKEdgeCases:
    def test_empty_relation_returns_one(self):
        model = JoinCostModel(0, 100, 0.0, 0.1)
        assert derive_k(model).k == 1

    def test_small_relations_converge(self):
        model = JoinCostModel(100, 100, 0.05, 0.05)
        derivation = derive_k(model)
        assert derivation.converged
        assert derivation.k >= 1

    def test_oscillation_resolved_by_averaging(self):
        """Whatever the input, the derivation must terminate with a
        positive k and a finite trace."""
        for n in (10, 1_000, 123_456):
            derivation = derive_k(JoinCostModel(n, n * 3, 0.01, 0.02))
            assert derivation.k >= 1
            assert derivation.converged

    def test_approximate_solver_agrees_with_exact(self):
        model = example_8_model()
        exact = derive_k(model, use_exact_root=True).k
        approx = derive_k(model, use_exact_root=False).k
        assert approx == pytest.approx(exact, rel=0.02)


class TestCostModelFor:
    def test_built_from_relations(self):
        outer = TemporalRelation.from_pairs([(0, 9), (50, 52)], name="r")
        inner = TemporalRelation.from_pairs([(0, 99)], name="s")
        model = cost_model_for(outer, inner)
        assert model.outer_cardinality == 2
        assert model.inner_cardinality == 1
        # Outer time range is [0, 52] (53 points), longest tuple 10.
        assert model.outer_duration_fraction == pytest.approx(10 / 53)
        assert model.inner_duration_fraction == 1.0

    def test_device_sets_block_size(self):
        outer = TemporalRelation.from_pairs([(0, 9)])
        inner = TemporalRelation.from_pairs([(0, 9)])
        model = cost_model_for(outer, inner, device=DeviceProfile.disk())
        assert model.tuples_per_block == 4096 // 35

    def test_weights_override(self):
        outer = TemporalRelation.from_pairs([(0, 9)])
        inner = TemporalRelation.from_pairs([(0, 9)])
        weights = CostWeights(cpu=2.0, io=1.0)
        model = cost_model_for(outer, inner, weights=weights)
        assert model.weights == weights
