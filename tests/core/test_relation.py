"""Unit tests for temporal relations and their paper statistics."""

import pytest

from repro.core.interval import Interval, IntervalError
from repro.core.relation import (
    EmptyRelationError,
    TemporalRelation,
    TemporalTuple,
)


class TestTemporalTuple:
    def test_construction(self):
        tup = TemporalTuple(2, 6, {"name": "ann"})
        assert tup.start == 2
        assert tup.end == 6
        assert tup.payload == {"name": "ann"}

    def test_invalid_interval_rejected(self):
        with pytest.raises(IntervalError):
            TemporalTuple(5, 4)

    def test_interval_property(self):
        assert TemporalTuple(2, 6).interval == Interval(2, 6)

    def test_duration(self):
        assert TemporalTuple(2, 6).duration == 5

    def test_overlaps_tuple(self):
        assert TemporalTuple(1, 5).overlaps(TemporalTuple(5, 9))
        assert not TemporalTuple(1, 4).overlaps(TemporalTuple(5, 9))

    def test_overlaps_interval(self):
        assert TemporalTuple(1, 5).overlaps_interval(Interval(0, 1))
        assert not TemporalTuple(1, 5).overlaps_interval(Interval(6, 8))

    def test_equality_includes_payload(self):
        assert TemporalTuple(1, 2, "a") == TemporalTuple(1, 2, "a")
        assert TemporalTuple(1, 2, "a") != TemporalTuple(1, 2, "b")

    def test_hashable(self):
        pair = {TemporalTuple(1, 2, "a"), TemporalTuple(1, 2, "a")}
        assert len(pair) == 1


class TestRelationConstruction:
    def test_from_pairs_assigns_positional_payload(self):
        relation = TemporalRelation.from_pairs([(1, 2), (3, 4)])
        assert [tup.payload for tup in relation] == [0, 1]

    def test_from_records(self):
        relation = TemporalRelation.from_records([(1, 2, "x")])
        assert relation[0].payload == "x"

    def test_len_and_iteration(self):
        relation = TemporalRelation.from_pairs([(1, 1), (2, 2), (3, 3)])
        assert len(relation) == 3
        assert [tup.start for tup in relation] == [1, 2, 3]

    def test_indexing(self):
        relation = TemporalRelation.from_pairs([(1, 1), (2, 5)])
        assert relation[1].end == 5


class TestPaperStatistics:
    """Section 3: time range U, longest duration l, lambda = l / |U|."""

    def test_time_range_spans_min_start_to_max_end(self):
        relation = TemporalRelation.from_pairs([(5, 9), (2, 3), (7, 12)])
        assert relation.time_range == Interval(2, 12)

    def test_time_range_duration(self):
        relation = TemporalRelation.from_pairs([(1, 12)])
        assert relation.time_range_duration == 12

    def test_max_duration(self):
        relation = TemporalRelation.from_pairs([(1, 2), (4, 9), (5, 5)])
        assert relation.max_duration == 6

    def test_duration_fraction(self):
        relation = TemporalRelation.from_pairs([(0, 4), (0, 9)])
        assert relation.duration_fraction == 1.0

    def test_duration_fraction_partial(self):
        relation = TemporalRelation.from_pairs([(0, 1), (8, 9)])
        assert relation.duration_fraction == pytest.approx(0.2)

    def test_paper_example_lambda(self, paper_s):
        # |U| = 12, longest tuple s4 = [5, 11] -> l = 7.
        assert paper_s.time_range_duration == 12
        assert paper_s.max_duration == 7

    def test_empty_relation_statistics_raise(self):
        empty = TemporalRelation([])
        assert empty.is_empty
        with pytest.raises(EmptyRelationError):
            _ = empty.time_range
        with pytest.raises(EmptyRelationError):
            _ = empty.max_duration


class TestDerivedRelations:
    def test_filter(self):
        relation = TemporalRelation.from_pairs([(1, 1), (2, 9), (3, 3)])
        short = relation.filter(lambda tup: tup.duration == 1)
        assert len(short) == 2

    def test_filter_does_not_mutate_source(self):
        relation = TemporalRelation.from_pairs([(1, 1), (2, 9)])
        relation.filter(lambda tup: False)
        assert len(relation) == 2

    def test_head(self):
        relation = TemporalRelation.from_pairs([(1, 1), (2, 2), (3, 3)])
        assert [t.start for t in relation.head(2)] == [1, 2]

    def test_sorted_by(self):
        relation = TemporalRelation.from_pairs([(5, 9), (1, 2)])
        ordered = relation.sorted_by(lambda tup: tup.start)
        assert [t.start for t in ordered] == [1, 5]

    def test_sample_every(self):
        relation = TemporalRelation.from_pairs([(i, i) for i in range(10)])
        assert len(relation.sample_every(3)) == 4

    def test_sample_every_rejects_bad_step(self):
        relation = TemporalRelation.from_pairs([(1, 1)])
        with pytest.raises(ValueError):
            relation.sample_every(0)

    def test_repr_mentions_name_and_cardinality(self):
        relation = TemporalRelation.from_pairs([(1, 2)], name="emp")
        assert "emp" in repr(relation)
        assert "n=1" in repr(relation)
