"""Tests for the distribution-aware tightening statistics
(future-work extension)."""

import pytest

from repro.core.granules import cost_model_for, derive_k
from repro.core.interval import Interval
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration, used_partition_bound
from repro.core.relation import TemporalRelation
from repro.core.statistics import (
    DurationHistogram,
    HistogramCostModel,
    histogram_cost_model,
)
from repro.workloads import long_lived_mixture, uniform_relation


def skewed_relation(cardinality=2_000, seed=0):
    """Mostly short tuples with a few very long outliers — the regime
    where Lemma 3's max-duration bound is far too pessimistic."""
    return long_lived_mixture(
        cardinality,
        long_fraction=0.01,
        time_range=Interval(1, 2**18),
        long_max_fraction=0.5,
        seed=seed,
    )


class TestDurationHistogram:
    def test_cardinality_preserved(self):
        relation = uniform_relation(500, seed=1)
        histogram = DurationHistogram.from_relation(relation)
        assert histogram.cardinality == 500

    def test_bounds_strictly_increasing(self):
        histogram = DurationHistogram.from_relation(
            uniform_relation(200, max_duration_fraction=0.5, seed=2)
        )
        assert list(histogram.bounds) == sorted(set(histogram.bounds))

    def test_exact_buckets_for_short_durations(self):
        relation = TemporalRelation.from_pairs(
            [(0, 0), (0, 0), (0, 1), (0, 2), (0, 99)]
        )
        histogram = DurationHistogram.from_relation(relation)
        assert histogram.counts[0] == 2  # duration 1
        assert histogram.counts[1] == 1  # duration 2
        assert histogram.counts[2] == 1  # duration 3

    def test_empty_relation(self):
        histogram = DurationHistogram.from_relation(TemporalRelation([]))
        assert histogram.cardinality == 0
        assert histogram.expected_used_partitions(10, 1) == 1

    def test_span_counts_capped_at_k(self):
        relation = TemporalRelation.from_pairs([(0, 999)])
        histogram = DurationHistogram.from_relation(relation)
        spans = histogram.span_counts(k=4, granule_duration=250)
        assert max(spans) <= 4

    def test_expected_used_partitions_bounded(self):
        relation = uniform_relation(300, seed=3)
        histogram = DurationHistogram.from_relation(relation)
        for k in (1, 8, 64):
            expected = histogram.expected_used_partitions(
                k, max(1, relation.time_range_duration // k)
            )
            assert 1 <= expected <= relation.cardinality


class TestEstimateQuality:
    def test_tighter_than_lemma_3_on_skewed_data(self):
        """The headline: on skew, the histogram estimate is far below
        the max-duration bound."""
        relation = skewed_relation()
        histogram = DurationHistogram.from_relation(relation)
        k = 64
        d = max(1, -(-relation.time_range_duration // k))
        lemma3 = used_partition_bound(
            k, relation.duration_fraction, relation.cardinality
        )
        estimate = histogram.expected_used_partitions(k, d)
        assert estimate < lemma3 / 2

    def test_estimate_tracks_reality(self):
        """The expected-used-partitions estimate is within a small
        factor of the materialised partition count."""
        for seed in (0, 1, 2):
            relation = skewed_relation(seed=seed)
            histogram = DurationHistogram.from_relation(relation)
            k = 48
            config = OIPConfiguration.for_relation(relation, k)
            actual = oip_create(relation, config).partition_count
            estimate = histogram.expected_used_partitions(k, config.d)
            assert actual / 3 <= estimate <= actual * 3

    def test_uniform_data_estimates_similar_to_lemma3(self):
        """On non-skewed data the two bounds agree in magnitude."""
        relation = uniform_relation(
            2_000, Interval(1, 2**18), 0.01, seed=4
        )
        histogram = DurationHistogram.from_relation(relation)
        k = 64
        d = max(1, -(-relation.time_range_duration // k))
        lemma3 = used_partition_bound(
            k, relation.duration_fraction, relation.cardinality
        )
        estimate = histogram.expected_used_partitions(k, d)
        assert estimate <= lemma3
        assert estimate >= lemma3 / 10


class TestHistogramCostModel:
    def test_derives_valid_k(self):
        outer = skewed_relation(400, seed=5)
        inner = skewed_relation(2_000, seed=6)
        model = histogram_cost_model(outer, inner)
        derivation = derive_k(model)
        assert derivation.converged
        assert derivation.k >= 1

    def test_skew_aware_k_at_least_lemma3_k(self):
        """Tighter tau estimates afford more granules (the Section 6.2
        'empty partitions let us increase k' argument, now driven by
        the distribution instead of the maximum)."""
        outer = skewed_relation(400, seed=7)
        inner = skewed_relation(2_000, seed=8)
        lemma3_k = derive_k(cost_model_for(outer, inner)).k
        histogram_k = derive_k(histogram_cost_model(outer, inner)).k
        assert histogram_k >= lemma3_k

    def test_tightening_in_unit_interval(self):
        model = histogram_cost_model(
            skewed_relation(300, seed=9), skewed_relation(300, seed=10)
        )
        for k in (1, 10, 100):
            assert 0.0 < model.tightening(k) <= 1.0

    def test_cardinalities_from_histograms(self):
        outer = uniform_relation(111, seed=11)
        inner = uniform_relation(222, seed=12)
        model = histogram_cost_model(outer, inner)
        assert isinstance(model, HistogramCostModel)
        assert model.outer_cardinality == 111
        assert model.inner_cardinality == 222
