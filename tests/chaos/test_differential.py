"""Differential chaos suite: joins under seeded fault schedules.

The acceptance property of the resilience layer: a run under transient
faults — reads erroring out, payloads arriving corrupted, latency spikes
— returns the *exact* pair list of a fault-free run, with the recovery
work visible in the :class:`~repro.storage.metrics.ResilienceCounters`
rather than in the results.  Permanent faults must not degrade silently:
they raise a structured error naming the failing block and the partition
being read.

Fault schedules are pure functions of the seed, so every scenario here
is reproducible run-to-run — chaos without flakiness.
"""

import pytest

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage.faults import (
    FaultPolicy,
    StorageFaultError,
    fault_profile,
)
from repro.workloads import long_lived_mixture

#: OIPJOIN plus baselines covering distinct storage access patterns:
#: merge scans (smj) and partition-bucket fetches (grace).
CHAOS_ALGORITHMS = ("oip", "smj", "grace")

PROFILES = ("transient", "transient-heavy", "corrupt", "latency", "chaos")


@pytest.fixture(scope="module")
def relations():
    outer = long_lived_mixture(
        350, 0.3, Interval(1, 25_000), seed=31, name="outer"
    )
    inner = long_lived_mixture(
        350, 0.3, Interval(1, 25_000), seed=32, name="inner"
    )
    return outer, inner


@pytest.fixture(scope="module")
def healthy(relations):
    outer, inner = relations
    return {
        name: ALGORITHMS[name]().join(outer, inner)
        for name in CHAOS_ALGORITHMS
    }


class TestDifferentialIdentity:
    @pytest.mark.parametrize("name", CHAOS_ALGORITHMS)
    @pytest.mark.parametrize("profile", PROFILES)
    def test_faulty_run_matches_fault_free(
        self, relations, healthy, name, profile
    ):
        outer, inner = relations
        policy = fault_profile(profile, seed=5)
        result = ALGORITHMS[name](fault_policy=policy).join(outer, inner)
        reference = healthy[name]
        assert result.pair_keys() == reference.pair_keys()
        assert result.cardinality == reference.cardinality
        # Recovery is visible, not silent: fault profiles with retryable
        # faults must show them in the resilience counters.
        if profile != "latency":
            assert result.resilience.faults_observed > 0
            assert result.resilience.recovered
        else:
            assert result.resilience.latency_spikes > 0

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_chaos_is_reproducible(self, relations, seed):
        outer, inner = relations
        policy = fault_profile("chaos", seed=seed)

        def run():
            result = OIPJoin(fault_policy=policy).join(outer, inner)
            return (
                result.pair_keys(),
                result.counters.snapshot(),
                result.resilience.snapshot(),
            )

        assert run() == run()


class TestDifferentialParallel:
    """Sequential and both parallel backends under one fault schedule:
    identical pairs, identical cost counters, identical storage-level
    resilience events."""

    @pytest.fixture(scope="class")
    def faulty_sequential(self, relations):
        outer, inner = relations
        policy = fault_profile("chaos", seed=9)
        return OIPJoin(fault_policy=policy).join(outer, inner)

    @pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 2)])
    def test_backend_matches_sequential_under_faults(
        self, relations, healthy, faulty_sequential, backend, workers
    ):
        outer, inner = relations
        policy = fault_profile("chaos", seed=9)
        result = OIPJoin(
            fault_policy=policy,
            parallelism=workers,
            parallel_backend=backend,
        ).join(outer, inner)
        assert result.pair_keys() == healthy["oip"].pair_keys()
        assert result.pair_keys() == faulty_sequential.pair_keys()
        assert (
            result.counters.snapshot()
            == faulty_sequential.counters.snapshot()
        )
        assert (
            result.resilience.storage_snapshot()
            == faulty_sequential.resilience.storage_snapshot()
        )
        assert result.resilience.retries > 0


class TestPermanentFaults:
    def test_sequential_raises_structured_error(self, relations):
        outer, inner = relations
        policy = FaultPolicy(permanent_blocks=frozenset({0}))
        with pytest.raises(StorageFaultError) as excinfo:
            OIPJoin(fault_policy=policy).join(outer, inner)
        error = excinfo.value
        assert error.block_id == 0
        assert error.attempts == 4  # 1 try + 3 retries (default budget)
        assert "block 0" in str(error)
        assert "partition" in str(error)
        assert error.context is not None

    def test_parallel_raises_same_structured_error(self, relations):
        outer, inner = relations
        policy = FaultPolicy(permanent_blocks=frozenset({0}))
        with pytest.raises(StorageFaultError) as excinfo:
            OIPJoin(fault_policy=policy, parallelism=3).join(outer, inner)
        assert excinfo.value.block_id == 0
        assert "partition" in str(excinfo.value)

    @pytest.mark.parametrize("name", ("smj", "grace"))
    def test_baselines_raise_structured_error(self, relations, name):
        outer, inner = relations
        policy = FaultPolicy(permanent_blocks=frozenset({0}))
        with pytest.raises(StorageFaultError) as excinfo:
            ALGORITHMS[name](fault_policy=policy).join(outer, inner)
        assert excinfo.value.block_id == 0

    def test_retry_budget_is_honoured(self, relations):
        outer, inner = relations
        policy = FaultPolicy(permanent_blocks=frozenset({0}))
        with pytest.raises(StorageFaultError) as excinfo:
            OIPJoin(fault_policy=policy, max_read_retries=1).join(
                outer, inner
            )
        assert excinfo.value.attempts == 2
