"""Crash-recovery chaos suite: every injected crash point during a
snapshot save must leave the system able to answer correctly.

The acceptance property mirrors the fault-injection differential suite:
whatever state a simulated crash leaves on disk — torn temp file,
orphaned rename, torn target, flipped bit — a subsequent join through
``index_path`` produces pairs, :class:`CostCounters`,
:class:`ResilienceCounters` and run-report counter sections
*bit-identical* to an uninterrupted from-scratch run, either by loading
a still-valid snapshot or by degrading to an in-memory rebuild.  And
``fsck`` always terminates with a verdict: loadable, repaired, or
degrade-to-rebuild.
"""

import json
import os

import pytest

from repro.cli import main
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage import (
    SimulatedCrashError,
    WriteFaultPolicy,
    fsck_index,
    save_index,
)
from repro.workloads import long_lived_mixture


@pytest.fixture(scope="module")
def relations():
    outer = long_lived_mixture(
        300, 0.3, Interval(1, 20_000), seed=51, name="outer"
    )
    inner = long_lived_mixture(
        300, 0.3, Interval(1, 20_000), seed=52, name="inner"
    )
    return outer, inner


@pytest.fixture(scope="module")
def baseline(relations):
    outer, inner = relations
    return OIPJoin(collect_report=True).join(outer, inner)


#: Report sections that must be bit-identical between a loaded/degraded
#: run and a from-scratch run.  Phase timings and the trace tree differ
#: by construction (a loaded run has no oipcreate spans).
REPORT_SECTIONS = ("counters", "resilience", "result", "algorithm")


def assert_equivalent(result, baseline):
    assert result.pairs == baseline.pairs
    assert result.counters.snapshot() == baseline.counters.snapshot()
    assert result.resilience.snapshot() == baseline.resilience.snapshot()
    for section in REPORT_SECTIONS:
        assert result.report[section] == baseline.report[section]


def crash_policies(size):
    """One policy per crash stage, at offsets spread across the blob."""
    offsets = (0, size // 4, size // 2, size - 1)
    policies = []
    for offset in offsets:
        policies.append(
            ("torn", offset, WriteFaultPolicy(torn_write_at=offset, at_commit=0))
        )
        policies.append(
            ("flip", offset, WriteFaultPolicy(bitflip_at=offset, at_commit=0))
        )
    policies.append(("rename", None, WriteFaultPolicy(fail_rename=True, at_commit=0)))
    policies.append(("fsync", None, WriteFaultPolicy(drop_fsync=True, at_commit=0)))
    return policies


class TestCrashConsistency:
    def test_every_crash_point_answers_identically(
        self, tmp_path, relations, baseline
    ):
        outer, inner = relations
        probe = str(tmp_path / "probe.oip")
        size = save_index(probe, outer, inner)["bytes"]
        for stage, offset, policy in crash_policies(size):
            path = str(tmp_path / f"{stage}-{offset}.oip")
            try:
                save_index(path, outer, inner, write_faults=policy)
            except SimulatedCrashError:
                pass
            verdict = fsck_index(path)
            assert isinstance(verdict["ok"], bool)
            result = OIPJoin(
                index_path=path, collect_report=True
            ).join(outer, inner)
            assert_equivalent(result, baseline)
            # fsck converges: the first pass repaired everything
            # repairable, so a second pass has nothing left to do
            # (body damage is reported, not rewritten — recovery from
            # that is the join's degrade path, exercised above).
            second = fsck_index(path)
            assert second["repairs"] == []

    def test_crash_over_existing_snapshot_keeps_old_generation(
        self, tmp_path, relations, baseline
    ):
        outer, inner = relations
        path = str(tmp_path / "regen.oip")
        save_index(path, outer, inner)
        for policy in (
            WriteFaultPolicy(torn_write_at=64, at_commit=0),
            WriteFaultPolicy(fail_rename=True, at_commit=0),
        ):
            with pytest.raises(SimulatedCrashError):
                save_index(path, outer, inner, write_faults=policy)
            verdict = fsck_index(path)
            assert verdict["loadable"]
            assert verdict["generation"] == 0
            result = OIPJoin(
                index_path=path, collect_report=True
            ).join(outer, inner)
            assert result.details["index"]["loaded"] is True
            assert_equivalent(result, baseline)

    def test_report_index_field_round_trips(self, tmp_path, relations, baseline):
        from repro.obs.report import validate_report

        outer, inner = relations
        path = str(tmp_path / "report.oip")
        save_index(path, outer, inner)
        loaded = OIPJoin(index_path=path, collect_report=True).join(
            outer, inner
        )
        assert loaded.report["index"]["loaded"] is True
        assert validate_report(loaded.report) is None
        assert baseline.report["index"] is None


class TestRecoveryCli:
    """The operator-facing loop: save-index, crash, fsck, join --index."""

    WORKLOAD = [
        "--workload", "mixture", "--cardinality", "250",
        "--long-fraction", "0.3", "--seed", "61",
    ]

    def test_save_fsck_join_loop(self, tmp_path, capsys):
        index = str(tmp_path / "cli.oip")
        assert main(["save-index", *self.WORKLOAD, "--out", index]) == 0
        assert main(["fsck", index]) == 0
        assert main(["join", *self.WORKLOAD, "--index", index]) == 0
        out = capsys.readouterr().out
        assert "'loaded': True" in out

    def test_fsck_exit_codes(self, tmp_path, capsys):
        index = str(tmp_path / "codes.oip")
        assert main(["fsck", index]) == 2  # missing
        assert main(["save-index", *self.WORKLOAD, "--out", index]) == 0
        assert main(["fsck", index, "--json"]) == 0
        with open(index, "r+b") as handle:
            handle.seek(os.path.getsize(index) // 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["fsck", index]) == 1  # unrecoverable body damage
        capsys.readouterr()
        # Strict by default: a corrupt snapshot is EX_DATAERR ...
        assert main(["join", *self.WORKLOAD, "--index", index]) == 65
        capsys.readouterr()
        # ... and with --index-fallback the join still answers by
        # degrading to a rebuild.
        assert main([
            "join", *self.WORKLOAD, "--index", index, "--index-fallback",
        ]) == 0
        assert "'loaded': False" in capsys.readouterr().out

    def test_strict_index_exit_codes(self, tmp_path, capsys):
        """Satellite contract: distinct, documented exit codes for a
        missing (66, EX_NOINPUT) vs corrupt/mismatched (65, EX_DATAERR)
        snapshot when --index-fallback is not given."""
        index = str(tmp_path / "strict.oip")
        assert main(["join", *self.WORKLOAD, "--index", index]) == 66
        assert "reason=missing" in capsys.readouterr().err
        assert main(["save-index", *self.WORKLOAD, "--out", index]) == 0
        with open(index, "r+b") as handle:
            handle.seek(80)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["join", *self.WORKLOAD, "--index", index]) == 65
        capsys.readouterr()
        # A healthy snapshot for a different workload parses in the
        # preflight but is rejected at load time: still EX_DATAERR.
        other = [
            "--workload", "mixture", "--cardinality", "250",
            "--long-fraction", "0.3", "--seed", "62",
        ]
        assert main(["save-index", *self.WORKLOAD, "--out", index]) == 0
        assert main(["join", *other, "--index", index]) == 65
        assert "fingerprint_mismatch" in capsys.readouterr().err
        # --index-fallback restores the degrade-to-rebuild behaviour.
        assert main([
            "join", *other, "--index", index, "--index-fallback",
        ]) == 0

    def test_fsck_json_verdict_is_machine_consumable(self, tmp_path, capsys):
        index = str(tmp_path / "verdict.oip")
        assert main(["save-index", *self.WORKLOAD, "--out", index]) == 0
        capsys.readouterr()  # drop the save banner
        assert main(["fsck", index, "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True
        assert verdict["exit_code"] == 0
        assert verdict["loadable"] is True
        assert verdict["generation"] == 0
        assert main(["fsck", str(tmp_path / "gone.oip"), "--json"]) == 2
        missing = json.loads(capsys.readouterr().out)
        assert missing["exit_code"] == 2
        assert missing["exists"] is False

    def test_index_rejected_for_baselines_and_batch(self, tmp_path):
        index = str(tmp_path / "reject.oip")
        with pytest.raises(SystemExit):
            main([
                "join", *self.WORKLOAD, "--algorithm", "smj",
                "--index", index,
            ])
        with pytest.raises(SystemExit):
            main([
                "join", *self.WORKLOAD, "--batch", "2", "--index", index,
            ])
