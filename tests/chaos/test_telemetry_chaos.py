"""Telemetry chaos: the query log stays a valid, well-ordered NDJSON
stream while concurrent query threads, a SIGHUP-triggered refresh, and
a drain all write through it at once."""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.interval import Interval
from repro.obs.log import QueryLog, read_log_lines
from repro.service import JoinService
from repro.service.errors import ServiceError
from repro.storage import save_index
from repro.workloads import long_lived_mixture


@pytest.fixture
def snapshot(tmp_path):
    path = str(tmp_path / "tel.oip")
    outer = long_lived_mixture(
        200, 0.3, Interval(1, 12_000), seed=61, name="outer"
    )
    inner = long_lived_mixture(
        200, 0.3, Interval(1, 12_000), seed=62, name="inner"
    )
    save_index(path, outer, inner)
    return path


class TestConcurrentLogIntegrity:
    def test_no_torn_lines_under_query_refresh_drain_storm(self, snapshot):
        """In-process storm: 6 query threads, repeated hot refreshes,
        then a drain — every log line parses and events are ordered."""
        stream = io.StringIO()
        service = JoinService(
            snapshot,
            max_active=4,
            max_queued=16,
            query_log=QueryLog(stream, slow_query_ms=0.0),
            tracing=True,
        )
        service.start()
        stop = threading.Event()
        errors = []

        def querier():
            while not stop.is_set():
                try:
                    service.query("join")
                except ServiceError:
                    # Shed/unavailable during the storm is acceptable —
                    # it must still log a complete line.
                    pass
                except Exception as error:  # noqa: BLE001
                    errors.append(error)
                    return

        def refresher():
            while not stop.is_set():
                try:
                    service.refresh(force=True)
                except ServiceError:
                    pass
                time.sleep(0.01)

        threads = [threading.Thread(target=querier) for _ in range(6)]
        threads.append(threading.Thread(target=refresher))
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        report = service.drain(timeout_s=10.0)
        assert not errors
        assert report["drained"] is True

        # read_log_lines raises on any torn or invalid line.
        records = read_log_lines(io.StringIO(stream.getvalue()))
        events = [record["event"] for record in records]
        assert events[0] == "service.started"
        assert events[-1] == "drain.finished"
        assert events[-2] == "drain.started"
        completed = [r for r in records if r["event"] == "query.completed"]
        assert len(completed) > 0
        # Every completion carries a distinct correlation id and a
        # latency — nothing half-written.
        assert all(r["trace_id"] for r in completed)
        assert all(r["elapsed_ms"] >= 0.0 for r in completed)
        assert len({r["trace_id"] for r in completed}) == len(completed)
        # Refresh lifecycle events landed between start and drain.
        refresh_events = [e for e in events if e.startswith("snapshot.")]
        assert refresh_events
        # Timestamps never go backwards: the lock serialises writes.
        timestamps = [record["ts"] for record in records]
        assert timestamps == sorted(timestamps)

    def test_every_failed_query_logs_elapsed_ms(self, snapshot):
        stream = io.StringIO()
        service = JoinService(
            snapshot,
            max_active=1,
            max_queued=0,
            admit_timeout_s=0.0,
            query_log=QueryLog(stream),
        )
        service.start()
        with service.admission.admit():
            for _ in range(3):
                with pytest.raises(ServiceError):
                    service.query("join")
        service.drain(timeout_s=5.0)
        failed = [
            record
            for record in read_log_lines(io.StringIO(stream.getvalue()))
            if record["event"] == "query.failed"
        ]
        assert len(failed) == 3
        for record in failed:
            assert record["level"] == "warning"
            assert record["code"] == "overload"
            assert record["elapsed_ms"] >= 0.0


class TestRealProcessSighup:
    def test_sighup_refresh_logs_cleanly_under_live_traffic(self, snapshot):
        """Real-process acceptance: SIGHUP mid-traffic, then SIGTERM —
        the NDJSON file on disk parses completely and the lifecycle
        events arrive in order."""
        from repro.service import ServiceClient

        log_path = snapshot + ".qlog"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--index", snapshot,
                "--query-log", log_path,
                "--slow-query-ms", "0",
                "--drain-timeout-s", "30",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            stop = threading.Event()

            def client():
                while not stop.is_set():
                    try:
                        with ServiceClient(
                            ready["host"], ready["port"]
                        ) as remote:
                            remote.join()
                    except (ServiceError, OSError):
                        return

            threads = [threading.Thread(target=client) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.5)
            proc.send_signal(signal.SIGHUP)
            time.sleep(0.5)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
            assert proc.returncode == 0

            records = read_log_lines(log_path)  # raises on torn lines
            events = [record["event"] for record in records]
            assert events[0] == "service.started"
            assert "snapshot.refresh.started" in events
            assert "query.completed" in events
            assert events.index("service.started") < events.index(
                "drain.started"
            ) < events.index("drain.finished")
            slow = [r for r in records if r.get("slow")]
            assert slow and all(
                r["level"] == "warning" for r in slow
            )
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
