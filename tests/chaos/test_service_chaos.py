"""Service chaos suite: concurrent clients × fault profiles × mid-swap
crashes.

Acceptance properties (ISSUE 8):

* Every response a client ever receives is **bit-identical** (pairs,
  fingerprint, cost counters) to an offline ``OIPJoin(index_path=...)``
  run against the generation that served it — under storage fault
  injection, under hot swaps, and with the on-disk snapshot corrupt.
* A SIGKILL mid-refresh (complete ``*.tmp`` beside the old snapshot)
  leaves the old generation serving and the path fsck-clean.
* A graceful drain completes every admitted query and sheds the rest
  with structured errors — zero queries lost silently.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.interval import Interval
from repro.service import JoinService, offline_query
from repro.service.errors import ServiceError, SnapshotSwapRejectedError
from repro.storage import fault_profile, save_index, fsck_index
from repro.workloads import long_lived_mixture


def _relations(seed):
    outer = long_lived_mixture(
        300, 0.3, Interval(1, 20_000), seed=seed, name="outer"
    )
    inner = long_lived_mixture(
        300, 0.3, Interval(1, 20_000), seed=seed + 1, name="inner"
    )
    return outer, inner


@pytest.fixture
def snapshot(tmp_path):
    path = str(tmp_path / "serve.oip")
    outer, inner = _relations(51)
    save_index(path, outer, inner)
    return path


def _flip_byte(path, offset=140):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestFaultProfilesBitIdentical:
    @pytest.mark.parametrize("profile", ["transient", "latency"])
    def test_concurrent_clients_match_offline_oracle(
        self, snapshot, profile
    ):
        """Seeded storage chaos on every served query: recovered faults
        must not perturb a single pair or counter.  The oracle runs
        offline under the *same* seeded policy, so even the retry
        charges must agree bit for bit."""
        chaos_options = {
            "fault_policy": fault_profile(profile, seed=13),
            "max_read_retries": 8,
        }
        oracle = offline_query(snapshot, join_options=chaos_options)
        clean = offline_query(snapshot)
        assert oracle["fingerprint"] == clean["fingerprint"]
        assert oracle["pairs"] == clean["pairs"]
        svc = JoinService(
            snapshot,
            max_active=4,
            max_queued=8,
            join_options=chaos_options,
        )
        svc.start()
        responses, errors = [], []
        lock = threading.Lock()

        def client(queries):
            for _ in range(queries):
                try:
                    response = svc.query("join")
                except ServiceError as error:  # pragma: no cover
                    with lock:
                        errors.append(error)
                else:
                    with lock:
                        responses.append(response)

        threads = [
            threading.Thread(target=client, args=(2,)) for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(responses) == 12
        for response in responses:
            assert response["pairs"] == oracle["pairs"]
            assert response["fingerprint"] == oracle["fingerprint"]
            assert response["counters"] == oracle["counters"]
        svc.drain(timeout_s=5.0)


class TestHotSwapUnderLoad:
    def test_swap_corruption_and_sigkill_mid_refresh(
        self, snapshot, tmp_path
    ):
        """The full hostile lifecycle against one live service:
        SIGKILL during a snapshot rewrite, corruption on disk, then a
        real generation swap — with client threads querying throughout
        and every response checked against the per-generation oracle."""
        oracle = {0: offline_query(snapshot)["fingerprint"]}
        keep = str(tmp_path / "gen0.keep")
        shutil.copy(snapshot, keep)

        svc = JoinService(snapshot, max_active=4, max_queued=16)
        svc.start()
        stop = threading.Event()
        seen, errors = [], []
        lock = threading.Lock()

        def client():
            while not stop.is_set():
                try:
                    response = svc.query("join")
                except ServiceError as error:
                    with lock:
                        errors.append(error)
                    return
                with lock:
                    seen.append(
                        (response["generation"], response["fingerprint"])
                    )

        threads = [threading.Thread(target=client) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            # -- 1. SIGKILL mid-save: a complete *.tmp lands beside the
            #       old generation; refresh is a no-op, fsck repairs.
            writer = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "save-index",
                    "--workload", "mixture", "--cardinality", "300",
                    "--long-fraction", "0.3", "--seed", "51",
                    "--out", snapshot, "--write-delay-ms", "10000",
                ],
                env={**os.environ, "PYTHONPATH": "src"},
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            tmp_file = snapshot + ".tmp"
            deadline = time.monotonic() + 30.0
            while not os.path.exists(tmp_file):
                assert time.monotonic() < deadline, "tmp never appeared"
                assert writer.poll() is None, "writer died early"
                time.sleep(0.01)
            writer.kill()
            writer.wait(timeout=30)
            assert os.path.exists(tmp_file)
            report = svc.refresh()  # fsck-backed: repairs the orphan
            assert report["swapped"] is False
            assert not os.path.exists(tmp_file)
            verdict = fsck_index(snapshot)
            assert verdict["ok"] and verdict["generation"] == 0

            # -- 2. Corrupt the snapshot on disk: the swap is rejected,
            #       the pinned generation keeps serving from memory.
            _flip_byte(snapshot)
            with pytest.raises(SnapshotSwapRejectedError):
                svc.refresh()
            response = svc.query("join")
            assert response["generation"] == 0
            assert response["fingerprint"] == oracle[0]

            # -- 3. Restore and publish generation 1: zero-downtime
            #       hot swap while the clients keep querying.
            shutil.copy(keep, snapshot)
            outer, inner = _relations(151)
            save_index(snapshot, outer, inner)
            oracle[1] = offline_query(snapshot)["fingerprint"]
            report = svc.refresh()
            assert report["swapped"] is True
            assert report["generation"] == 1
            for _ in range(3):  # guarantee post-swap responses exist
                response = svc.query("join")
                assert response["generation"] == 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert errors == []
        assert seen, "clients never completed a query"
        generations = {generation for generation, _ in seen}
        assert 0 in generations
        for generation, fingerprint in seen:
            assert fingerprint == oracle[generation]
        health = svc.health()
        assert health["swaps"] == 1
        assert health["swaps_rejected"] == 1
        metrics = svc.publish_metrics()
        assert metrics["counters"]["service.swap.count"] == 1
        assert metrics["counters"]["service.swap.rejected"] == 1
        assert metrics["counters"].get("service.queries.failed", 0) == 0
        svc.drain(timeout_s=10.0)


class TestDrainUnderLoad:
    def test_zero_loss_with_structured_shedding(self, snapshot):
        """Overload + drain: every submitted query either completes
        bit-identically or unwinds into a structured, coded error —
        conservation is checked through the service metrics."""
        oracle = offline_query(snapshot)["fingerprint"]
        svc = JoinService(
            snapshot, max_active=2, max_queued=2, admit_timeout_s=0.02
        )
        svc.start()
        outcomes = []
        lock = threading.Lock()
        release = threading.Event()

        def client():
            release.wait()
            try:
                response = svc.query("join")
            except ServiceError as error:
                with lock:
                    outcomes.append(("error", error.code))
            else:
                with lock:
                    outcomes.append(("ok", response["fingerprint"]))

        threads = [threading.Thread(target=client) for _ in range(10)]
        for thread in threads:
            thread.start()
        release.set()
        time.sleep(0.01)
        report = svc.drain(timeout_s=30.0)
        for thread in threads:
            thread.join(timeout=30.0)
        assert report["drained"] is True
        assert len(outcomes) == 10
        codes = [code for kind, code in outcomes if kind == "error"]
        assert set(codes) <= {"overload", "unavailable", "cancelled"}
        for kind, value in outcomes:
            if kind == "ok":
                assert value == oracle
        metrics = svc.publish_metrics()
        counters = metrics["counters"]
        completed = counters.get("service.queries.completed", 0)
        failed = counters.get("service.queries.failed", 0)
        assert counters["service.queries.submitted"] == completed + failed
        assert completed == sum(1 for kind, _ in outcomes if kind == "ok")


class TestRealProcessSigterm:
    def test_sigterm_drains_live_server(self, snapshot):
        """Real-process acceptance: SIGTERM mid-traffic answers every
        in-flight request and exits 0."""
        from repro.service import ServiceClient

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--index", snapshot, "--drain-timeout-s", "30",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            oracle = offline_query(snapshot)["fingerprint"]
            results, errors = [], []
            lock = threading.Lock()

            def client():
                try:
                    with ServiceClient(
                        ready["host"], ready["port"]
                    ) as remote:
                        fingerprint = remote.join()["fingerprint"]
                    with lock:
                        results.append(fingerprint)
                except (ServiceError, OSError) as error:
                    # OSError: the listener already closed before this
                    # client connected — a refused connection, not a
                    # lost query.
                    with lock:
                        errors.append(error)

            threads = [
                threading.Thread(target=client) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60.0)
            proc.wait(timeout=60)
            assert proc.returncode == 0
            # Everything that reached the service before the drain
            # finished bit-identically; later arrivals were refused
            # with a structured error, never hung.
            assert all(fingerprint == oracle for fingerprint in results)
            for error in errors:
                if isinstance(error, ServiceError):
                    assert error.code in (
                        "unavailable", "disconnected", "cancelled",
                    )
            assert len(results) + len(errors) == 4
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
