"""Lifecycle chaos suite: cancel/resume identity and budgets under faults.

The governor's acceptance property mirrors the resilience layer's: a
join cancelled at *any* cooperative boundary and resumed from its
checkpoint produces the **bit-identical** pair list, CostCounters and
ResilienceCounters of an uninterrupted run — on the sequential loop and
on both parallel backends, with and without an active fault policy, and
even when the resume runs on a *different* backend than the one that
wrote the checkpoint (checkpoints carry sequential-equivalent counter
snapshots, so they are portable).

Cancellation points are driven by ``CancellationToken(cancel_after_checks
=n)``, which fires at an exact boundary with no wall-clock races; the
sweeps are seeded, so every scenario is reproducible run-to-run.

Note the completion branch in the harness: parallel boundaries are one
per *chunk*, so a cancellation point beyond the chunk count legitimately
never fires and the run completes — in that case the identity check is
against the full reference instead.
"""

import random

import pytest

from repro.core.base import join_pair_key
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.engine.governor import (
    BudgetExceededError,
    CancellationToken,
    QueryBudget,
)
from repro.storage.faults import FAULT_PROFILES, fault_profile
from repro.workloads import long_lived_mixture

#: Execution configurations the differential runs on: the sequential
#: Algorithm-2 loop, the thread pool and the process pool (small chunks
#: so even short joins have several cooperative boundaries).
CONFIGS = {
    "sequential": {},
    "thread": {"parallelism": 3, "parallel_chunk_size": 2},
    "process": {
        "parallelism": 2,
        "parallel_backend": "process",
        "parallel_chunk_size": 3,
    },
}


def fingerprint(result):
    """Everything the identity guarantee covers: the exact pair list
    (emission-order sensitive via sorted canonical keys), the cost
    counters and the storage-level resilience counters."""
    return (
        sorted(join_pair_key(pair) for pair in result.pairs),
        result.counters.snapshot(),
        result.resilience.storage_snapshot(),
    )


def cancel_and_resume(outer, inner, config, point, tmp_path, policy=None):
    """Cancel at boundary *point*, then resume; returns the final result
    (the partial run itself when the point was never reached)."""
    path = str(tmp_path / f"ck-{point}.json")
    token = CancellationToken(cancel_after_checks=point)
    partial = OIPJoin(
        cancellation=token,
        checkpoint_path=path,
        checkpoint_every=1,
        fault_policy=policy,
        **config,
    ).join(outer, inner)
    if partial.completed:
        return partial
    assert partial.details["cancelled"] is True
    assert partial.details["checkpoint"] == path
    resumed = OIPJoin(
        resume_from=path, fault_policy=policy, **config
    ).join(outer, inner)
    assert resumed.completed
    if resumed.details.get("resumed_from_partition", 0) > 0:
        assert resumed.details["resumed_from_partition"] == (
            partial.details["partitions_completed"]
        )
    return resumed


@pytest.fixture(scope="module")
def relations():
    outer = long_lived_mixture(
        300, 0.3, Interval(1, 20_000), seed=41, name="outer"
    )
    inner = long_lived_mixture(
        300, 0.3, Interval(1, 20_000), seed=42, name="inner"
    )
    return outer, inner


@pytest.fixture(scope="module")
def reference(relations):
    """Uninterrupted fingerprints per config (identical across configs by
    the PR-1 equivalence guarantee, but computed per config so a
    regression there doesn't masquerade as a lifecycle bug)."""
    outer, inner = relations
    return {
        name: fingerprint(OIPJoin(**config).join(outer, inner))
        for name, config in CONFIGS.items()
    }


class TestCancelResumeIdentity:
    @pytest.mark.parametrize("config", ("sequential", "thread"))
    @pytest.mark.parametrize("point", (1, 4, 9))
    def test_resume_is_bit_identical(
        self, relations, reference, config, point, tmp_path
    ):
        outer, inner = relations
        result = cancel_and_resume(
            outer, inner, CONFIGS[config], point, tmp_path
        )
        assert fingerprint(result) == reference[config]

    def test_resume_is_bit_identical_process(
        self, relations, reference, tmp_path
    ):
        outer, inner = relations
        result = cancel_and_resume(
            outer, inner, CONFIGS["process"], 2, tmp_path
        )
        assert fingerprint(result) == reference["process"]

    @pytest.mark.parametrize(
        "writer,resumer",
        (("sequential", "thread"), ("thread", "sequential")),
    )
    def test_checkpoints_are_portable_across_backends(
        self, relations, reference, writer, resumer, tmp_path
    ):
        """A checkpoint written under one backend resumes under another:
        the snapshots are sequential-equivalent, not backend-specific."""
        outer, inner = relations
        path = str(tmp_path / "ck.json")
        partial = OIPJoin(
            cancellation=CancellationToken(cancel_after_checks=3),
            checkpoint_path=path,
            checkpoint_every=1,
            **CONFIGS[writer],
        ).join(outer, inner)
        assert not partial.completed
        resumed = OIPJoin(resume_from=path, **CONFIGS[resumer]).join(
            outer, inner
        )
        assert fingerprint(resumed) == reference[resumer]

    @pytest.mark.slow
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("faulted", (False, True))
    def test_seeded_cancellation_sweep(
        self, relations, reference, config, faulted, tmp_path
    ):
        """Seeded random cancellation points across every backend, with
        and without an active fault policy."""
        outer, inner = relations
        rng = random.Random(2014 + (1 if faulted else 0))
        policy = fault_profile("chaos", seed=11) if faulted else None
        base = (
            reference[config]
            if not faulted
            else fingerprint(
                OIPJoin(
                    fault_policy=policy, **CONFIGS[config]
                ).join(outer, inner)
            )
        )
        for point in sorted(rng.sample(range(1, 40), 5)):
            result = cancel_and_resume(
                outer, inner, CONFIGS[config], point, tmp_path,
                policy=policy,
            )
            assert fingerprint(result) == base, (
                f"cancellation point {point} broke the identity"
            )


class TestFaultedCancelResume:
    @pytest.mark.parametrize("config", ("sequential", "thread"))
    def test_resume_identity_under_chaos_profile(
        self, relations, config, tmp_path
    ):
        """Cancel/resume under an active fault schedule: recovery work
        (retries, checksum repairs) lands in the checkpointed resilience
        counters and the final state still matches an uninterrupted
        faulted run exactly."""
        outer, inner = relations
        policy = fault_profile("chaos", seed=11)
        base = fingerprint(
            OIPJoin(fault_policy=policy, **CONFIGS[config]).join(
                outer, inner
            )
        )
        result = cancel_and_resume(
            outer, inner, CONFIGS[config], 4, tmp_path, policy=policy
        )
        assert fingerprint(result) == base


class TestBudgetsUnderChaos:
    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    def test_tight_budget_completes_or_fails_structured(
        self, relations, profile
    ):
        """FAULT_PROFILES x a tight comparison budget: every combination
        either completes or raises BudgetExceededError whose partial
        counters are monotonically consistent with (<= field-wise, and
        past the violated limit of) the full faulted run."""
        outer, inner = relations
        policy = fault_profile(profile, seed=7)
        full = OIPJoin(fault_policy=policy).join(outer, inner)
        limit = full.counters.cpu_comparisons // 3
        try:
            result = OIPJoin(
                fault_policy=policy,
                budget=QueryBudget(max_comparisons=limit),
            ).join(outer, inner)
        except BudgetExceededError as error:
            assert error.reason == "comparisons"
            # The stop boundary is the first one past the limit.
            assert error.counters.cpu_comparisons > limit
            assert 0 < error.partitions_completed
            assert (
                error.partitions_completed
                < full.details["outer_partitions"]
            )
            partial = error.counters.snapshot()
            total = full.counters.snapshot()
            assert all(
                partial[field] <= total[field] for field in partial
            ), "partial counters exceed the uninterrupted totals"
        else:  # pragma: no cover - profile-dependent
            assert result.completed

    def test_budget_stop_checkpoint_is_resumable(self, relations, tmp_path):
        """A budget abort writes a final checkpoint; resuming it without
        the budget finishes the query bit-identically."""
        outer, inner = relations
        base = fingerprint(OIPJoin().join(outer, inner))
        path = str(tmp_path / "budget-ck.json")
        limit = 5_000
        with pytest.raises(BudgetExceededError) as excinfo:
            OIPJoin(
                budget=QueryBudget(max_comparisons=limit),
                checkpoint_path=path,
                checkpoint_every=1,
            ).join(outer, inner)
        assert excinfo.value.checkpoint_path == path
        resumed = OIPJoin(resume_from=path).join(outer, inner)
        assert fingerprint(resumed) == base

    def test_deadline_budget_is_enforced_or_irrelevant(self, relations):
        """A 1 ms deadline on a non-trivial join: the run either finished
        inside the deadline window or aborted at a boundary with the
        elapsed time on the error."""
        outer, inner = relations
        try:
            result = OIPJoin(
                budget=QueryBudget(deadline_ms=1.0)
            ).join(outer, inner)
        except BudgetExceededError as error:
            assert error.reason == "deadline"
            assert error.elapsed_ms >= 1.0
        else:  # pragma: no cover - timing-dependent
            assert result.completed
