"""Scale-out differential chaos: sharded, cached, and multi-worker
answers must stay bit-identical to the single-process unsharded
service — under seeded storage fault profiles and mid-query generation
swaps."""

import shutil
import threading

import pytest

from repro.core.interval import Interval
from repro.service import (
    JoinService,
    ServiceClient,
    ServiceError,
    WorkerSupervisor,
    offline_query,
)
from repro.storage import fault_profile, save_index
from repro.workloads import long_lived_mixture


def _relations(seed):
    outer = long_lived_mixture(
        200, 0.3, Interval(1, 15_000), seed=seed, name="outer"
    )
    inner = long_lived_mixture(
        200, 0.3, Interval(1, 15_000), seed=seed + 1, name="inner"
    )
    return outer, inner


@pytest.fixture
def snapshot(tmp_path):
    path = str(tmp_path / "scaleout.oip")
    outer, inner = _relations(1201)
    save_index(path, outer, inner)
    return path


class TestShardedUnderFaults:
    @pytest.mark.parametrize("profile", ["transient", "latency"])
    def test_sharded_and_cached_match_unsharded_under_faults(
        self, snapshot, profile
    ):
        """Recovered storage faults inside shard workers must not
        perturb a single pair: the sharded+cached service answers with
        the same multiset (fingerprint) as the clean unsharded oracle.
        Counters are *not* compared — boundary replication legitimately
        does more per-shard work."""
        chaos_options = {
            "fault_policy": fault_profile(profile, seed=29),
            "max_read_retries": 8,
        }
        oracle = offline_query(snapshot)
        svc = JoinService(
            snapshot,
            shards=3,
            result_cache_size=4,
            join_options=chaos_options,
        )
        svc.start()
        first = svc.query("join")
        assert first["cached"] is False
        assert first["fingerprint"] == oracle["fingerprint"]
        assert first["pairs"] == oracle["pairs"]
        hit = svc.query("join")
        assert hit["cached"] is True
        assert hit["fingerprint"] == oracle["fingerprint"]
        svc.drain(timeout_s=5.0)


class TestMidQueryGenerationSwap:
    def test_pool_swap_under_concurrent_load(self, snapshot, tmp_path):
        """Client threads hammer a 2-worker pool while the parent swaps
        the snapshot underneath them (SIGHUP fan-out).  Every response
        must match the offline oracle *for the generation that served
        it* — a worker mid-query keeps its pinned generation, a cache
        must never replay generation 0 after its worker swapped."""
        keep0 = str(tmp_path / "gen0.keep")
        shutil.copy(snapshot, keep0)
        oracles = {0: offline_query(keep0)}

        pool = WorkerSupervisor(
            snapshot,
            workers=2,
            service_kwargs={"result_cache_size": 8},
            drain_timeout_s=10.0,
            hard_stop_timeout_s=2.0,
        )
        pool.start()
        runner = threading.Thread(target=pool.run, daemon=True)
        runner.start()
        stop = threading.Event()
        responses, errors = [], []
        lock = threading.Lock()

        def hammer():
            while not stop.is_set():
                try:
                    with ServiceClient(
                        "127.0.0.1", pool.port, retries=2
                    ) as client:
                        for _ in range(3):
                            body = client.join()
                            with lock:
                                responses.append(body)
                except (ServiceError, OSError) as error:
                    with lock:
                        errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            # Let generation 0 serve (and cache) some answers first.
            while True:
                with lock:
                    if len(responses) >= 6:
                        break
            outer, inner = _relations(1777)
            save_index(snapshot, outer, inner)
            oracles[1] = offline_query(snapshot)
            assert (
                oracles[1]["fingerprint"] != oracles[0]["fingerprint"]
            ), "chaos needs distinguishable generations"
            pool.refresh()
            # Keep load flowing until both workers demonstrably serve
            # generation 1.
            def gen1_seen_twice():
                with lock:
                    return (
                        sum(
                            1
                            for r in responses
                            if r["generation"] == 1
                        )
                        >= 6
                    )

            deadline = threading.Event()
            for _ in range(200):
                if gen1_seen_twice():
                    break
                deadline.wait(0.1)
            assert gen1_seen_twice(), "swap never propagated to workers"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=20.0)
            pool.initiate_shutdown()
            pool.shutdown()
            runner.join(timeout=10.0)
        assert errors == []
        assert len(responses) >= 12
        swapped = {r["generation"] for r in responses}
        assert swapped == {0, 1}
        for body in responses:
            oracle = oracles[body["generation"]]
            assert body["fingerprint"] == oracle["fingerprint"], body
            assert body["pairs"] == oracle["pairs"]
        # The caches were exercised across the swap: at least one hit
        # existed, and no hit ever crossed generations (checked above
        # by fingerprint).
        assert any(r.get("cached") for r in responses)
