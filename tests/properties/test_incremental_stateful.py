"""Stateful property test: IncrementalOIP against a plain-list model.

Hypothesis drives random sequences of inserts, deletes and overlap
queries; after every step the partitioning must agree with a trivial
model (a Python list) and keep all OIP invariants (Definition 2
placement, Lemma 2 clustering, no empty partitions)."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.incremental import IncrementalOIP
from repro.core.interval import Interval
from repro.core.oip import OIPConfiguration
from repro.core.relation import TemporalTuple

intervals = st.tuples(
    st.integers(min_value=-200, max_value=400),
    st.integers(min_value=1, max_value=120),
).map(lambda pair: (pair[0], pair[0] + pair[1] - 1))


class IncrementalOIPMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.partitioning = IncrementalOIP(
            OIPConfiguration(k=4, d=8, o=0)
        )
        self.model = []
        self.next_payload = 0

    @rule(interval=intervals)
    def insert(self, interval):
        tup = TemporalTuple(interval[0], interval[1], self.next_payload)
        self.next_payload += 1
        self.partitioning.insert(tup)
        self.model.append(tup)

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        tup = self.model.pop(index)
        assert self.partitioning.delete(tup)

    @rule(interval=intervals)
    def delete_missing(self, interval):
        ghost = TemporalTuple(interval[0], interval[1], "ghost")
        assert not self.partitioning.delete(ghost)

    @rule(interval=intervals)
    def query(self, interval):
        window = Interval(interval[0], interval[1])
        found = sorted(
            tup.payload for tup in self.partitioning.query(window)
        )
        expected = sorted(
            tup.payload
            for tup in self.model
            if tup.overlaps_interval(window)
        )
        assert found == expected

    @invariant()
    def size_matches_model(self):
        assert len(self.partitioning) == len(self.model)

    @invariant()
    def structural_invariants_hold(self):
        self.partitioning.check_invariants()


IncrementalOIPMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestIncrementalOIPStateful = IncrementalOIPMachine.TestCase
