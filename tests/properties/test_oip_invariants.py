"""Property-based tests of the OIP invariants: Definition 2 assignment,
Lemma 1 relevance, Lemma 2 clustering, Lemma 3/Proposition 1 counting,
and the lazy-partition-list structure."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.interval import Interval
from repro.core.lazy_list import oip_create
from repro.core.oip import (
    OIPConfiguration,
    possible_partition_count,
    used_partition_bound,
)
from repro.core.relation import TemporalRelation, TemporalTuple

configs = st.builds(
    OIPConfiguration,
    k=st.integers(min_value=1, max_value=24),
    d=st.integers(min_value=1, max_value=12),
    o=st.integers(min_value=-100, max_value=100),
)


@st.composite
def config_and_tuple(draw):
    config = draw(configs)
    span = config.time_range
    start = draw(st.integers(span.start, span.end))
    end = draw(st.integers(start, span.end))
    return config, TemporalTuple(start, end)


@st.composite
def config_and_relation(draw):
    config = draw(configs)
    span = config.time_range
    pairs = []
    for _ in range(draw(st.integers(0, 30))):
        start = draw(st.integers(span.start, span.end))
        end = draw(st.integers(start, span.end))
        pairs.append((start, end))
    return config, TemporalRelation.from_pairs(pairs)


@given(config_and_tuple())
@settings(max_examples=200, deadline=None)
def test_assignment_covers_and_is_minimal(data):
    """Definition 2: the partition interval covers the tuple and no
    smaller covering partition exists."""
    config, tup = data
    i, j = config.assign(tup)
    assert 0 <= i <= j < config.k
    partition = config.partition_interval(i, j)
    assert partition.contains(tup.interval)
    if i + 1 <= j:
        assert not config.partition_interval(i + 1, j).contains(tup.interval)
    if i <= j - 1:
        assert not config.partition_interval(i, j - 1).contains(tup.interval)


@given(config_and_tuple())
@settings(max_examples=200, deadline=None)
def test_lemma_2_clustering_guarantee(data):
    """|p.T| - |r.T| < 2d for every tuple in range."""
    config, tup = data
    assert 0 <= config.clustering_slack(tup) < 2 * config.d


@given(config_and_tuple(), st.data())
@settings(max_examples=200, deadline=None)
def test_lemma_1_relevance_soundness(data, extra):
    """A tuple overlapping Q always lives in a relevant partition."""
    config, tup = data
    span = config.time_range
    qs = extra.draw(st.integers(span.start - 5, span.end + 5))
    qe = extra.draw(st.integers(qs, span.end + 5))
    query = Interval(qs, qe)
    if tup.overlaps_interval(query):
        i, j = config.assign(tup)
        s, e = config.query_indices(query)
        assert config.is_relevant(i, j, s, e)


@given(config_and_relation())
@settings(max_examples=100, deadline=None)
def test_lazy_list_structure(data):
    """Main list j strictly decreasing, branch lists i strictly
    increasing, every tuple reachable exactly once in its partition."""
    config, relation = data
    built = oip_create(relation, config)

    js = [node.j for node in built.iter_main()]
    assert js == sorted(set(js), reverse=True)

    seen_pairs = set()
    total = 0
    for head in built.iter_main():
        node = head
        previous_i = -1
        while node is not None:
            assert node.j == head.j
            assert node.i > previous_i
            previous_i = node.i
            assert (node.i, node.j) not in seen_pairs
            seen_pairs.add((node.i, node.j))
            for tup in node.run.iter_tuples():
                assert config.assign(tup) == (node.i, node.j)
                total += 1
            node = node.right
    assert total == len(relation)


@given(config_and_relation())
@settings(max_examples=100, deadline=None)
def test_lemma_3_partition_bound(data):
    """Materialised partitions never exceed the Lemma 3 bound or
    Proposition 1's total."""
    config, relation = data
    built = oip_create(relation, config)
    assert built.partition_count <= possible_partition_count(config.k)
    if not relation.is_empty:
        lam = relation.max_duration / (config.k * config.d)
        bound = used_partition_bound(
            config.k, min(lam, 1.0), relation.cardinality
        )
        assert built.partition_count <= bound


@given(config_and_relation(), st.data())
@settings(max_examples=100, deadline=None)
def test_relevant_walk_returns_every_overlap_candidate(data, extra):
    """iter_relevant finds every partition that holds a tuple
    overlapping the query — the navigational form of Lemma 1."""
    config, relation = data
    built = oip_create(relation, config)
    span = config.time_range
    qs = extra.draw(st.integers(span.start, span.end))
    qe = extra.draw(st.integers(qs, span.end))
    s, e = config.query_indices(Interval(qs, qe))
    walked = {(node.i, node.j) for node in built.iter_relevant(s, e)}
    for tup in relation:
        if tup.overlaps_interval(Interval(qs, qe)):
            assert config.assign(tup) in walked
