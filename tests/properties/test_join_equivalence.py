"""Property-based tests: every join algorithm computes exactly the
nested-loop oracle's pair set, on arbitrary generated relations."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines import ALGORITHMS
from repro.core.relation import TemporalRelation, TemporalTuple

# Interval strategy: starts in a window, a mix of short and long
# durations so boundary-crossers and long-lived tuples both appear.
intervals = st.tuples(
    st.integers(min_value=-50, max_value=300),
    st.integers(min_value=1, max_value=200),
).map(lambda pair: (pair[0], pair[0] + pair[1] - 1))

relations = st.lists(intervals, min_size=0, max_size=40).map(
    TemporalRelation.from_pairs
)


def oracle(outer, inner):
    keys = []
    for a in outer:
        for b in inner:
            if a.overlaps(b):
                keys.append((a.start, a.end, a.payload, b.start, b.end, b.payload))
    return sorted(keys)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@given(outer=relations, inner=relations)
@settings(max_examples=40, deadline=None)
def test_algorithm_equals_oracle(name, outer, inner):
    result = ALGORITHMS[name]().join(outer, inner)
    assert result.pair_keys() == oracle(outer, inner)


@given(outer=relations, inner=relations)
@settings(max_examples=30, deadline=None)
def test_all_algorithms_agree_pairwise(outer, inner):
    """Cross-check without the oracle: all eight produce one answer."""
    answers = {
        name: tuple(cls().join(outer, inner).pair_keys())
        for name, cls in ALGORITHMS.items()
    }
    assert len(set(answers.values())) == 1, answers.keys()


@given(relation=relations)
@settings(max_examples=25, deadline=None)
def test_self_join_contains_diagonal(relation):
    """r JOIN r must pair every tuple with itself."""
    from repro.core.join import OIPJoin

    result = OIPJoin().join(relation, relation)
    produced = set(result.pair_keys())
    for tup in relation:
        key = (tup.start, tup.end, tup.payload) * 2
        assert key in produced


@given(outer=relations, inner=relations)
@settings(max_examples=25, deadline=None)
def test_join_is_symmetric(outer, inner):
    """Swapping the inputs mirrors the result set."""
    from repro.core.join import OIPJoin

    forward = OIPJoin().join(outer, inner)
    backward = OIPJoin().join(inner, outer)
    mirrored = sorted(
        (b.start, b.end, b.payload, a.start, a.end, a.payload)
        for a, b in backward.pairs
    )
    assert forward.pair_keys() == mirrored


@given(
    outer=relations,
    inner=relations,
    k=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_oip_join_correct_for_any_k(outer, inner, k):
    """The granule count affects cost, never correctness."""
    from repro.core.join import OIPJoin

    result = OIPJoin(k=k).join(outer, inner)
    assert result.pair_keys() == oracle(outer, inner)


@given(outer=relations, inner=relations)
@settings(max_examples=25, deadline=None)
def test_result_count_never_exceeds_cross_product(outer, inner):
    from repro.core.join import OIPJoin

    result = OIPJoin().join(outer, inner)
    assert len(result.pairs) <= len(outer) * len(inner)
    assert result.counters.result_tuples == len(result.pairs)
