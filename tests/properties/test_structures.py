"""Property-based tests for the substrates: B+-tree, segment tree, RIT
backbone, buffer pool and the AFR/APA analysis identities."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.afr import (
    partition_views_from_lazy_list,
    sum_false_hit_ratio,
)
from repro.analysis.apa import access_count, access_count_enumerated
from repro.btree import BPlusTree
from repro.core.lazy_list import oip_create
from repro.core.oip import OIPConfiguration
from repro.core.relation import TemporalRelation
from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters


class TestBPlusTreeProperties:
    @given(
        keys=st.lists(st.integers(0, 1000), max_size=200),
        order=st.integers(3, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_iteration_sorted_and_invariants_hold(self, keys, order):
        tree = BPlusTree(order=order)
        for key in keys:
            tree.insert(key, key)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(keys)

    @given(
        keys=st.lists(st.integers(0, 300), min_size=1, max_size=150),
        bounds=st.tuples(st.integers(0, 300), st.integers(0, 300)),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_scan_equals_filter(self, keys, bounds):
        low, high = min(bounds), max(bounds)
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, key)
        scanned = [k for k, _ in tree.range_scan(low, high)]
        assert scanned == sorted(k for k in keys if low <= k <= high)


class TestSegmentTreeProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 80)).map(
                lambda p: (p[0], p[0] + p[1] - 1)
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_cover_is_exact(self, pairs):
        """Every stored copy's segment is covered by the tuple, and the
        union of a tuple's segments is exactly its interval."""
        from repro.baselines.segment_tree import SegmentTree
        from repro.storage.manager import StorageManager

        relation = TemporalRelation.from_pairs(pairs)
        tree = SegmentTree(relation, StorageManager())
        covered = {tup.payload: set() for tup in relation}

        def visit(node):
            if node is None:
                return
            for tup in node.run.iter_tuples():
                assert tup.interval.contains(node.segment)
                covered[tup.payload].update(
                    range(node.segment.start, node.segment.end + 1)
                )
            visit(node.left)
            visit(node.right)

        visit(tree.root)
        for tup in relation:
            assert covered[tup.payload] == set(
                range(tup.start, tup.end + 1)
            )


class TestRITProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(-100, 400), st.integers(1, 150)).map(
                lambda p: (p[0], p[0] + p[1] - 1)
            ),
            min_size=1,
            max_size=50,
        ),
        query=st.tuples(st.integers(-120, 450), st.integers(1, 120)),
    )
    @settings(max_examples=60, deadline=None)
    def test_overlap_query_equals_filter(self, pairs, query):
        from repro.baselines.rit import RelationalIntervalTree
        from repro.storage.manager import StorageManager

        relation = TemporalRelation.from_pairs(pairs)
        tree = RelationalIntervalTree(relation, StorageManager())
        qs, qe = query[0], query[0] + query[1] - 1
        found = sorted(t.payload for _, t in tree.overlap_query(qs, qe))
        expected = sorted(
            t.payload for t in relation if t.start <= qe and qs <= t.end
        )
        assert found == expected


class TestBufferPoolProperties:
    @given(
        requests=st.lists(st.integers(0, 30), max_size=300),
        capacity=st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_accounting_identity_and_capacity(self, requests, capacity):
        pool = BufferPool(capacity)
        counters = CostCounters()
        for block_id in requests:
            pool.read(block_id, counters)
            assert pool.resident_count <= capacity
        assert counters.block_reads + counters.buffer_hits == len(requests)
        assert (
            counters.sequential_reads + counters.random_reads
            == counters.block_reads
        )


class TestAnalysisIdentities:
    @given(
        k=st.integers(1, 8),
        d=st.integers(1, 5),
        pairs=st.lists(
            st.tuples(st.integers(0, 30), st.integers(1, 10)),
            min_size=1,
            max_size=25,
        ),
        q=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_lemma_4_sfr_independent_of_q(self, k, d, pairs, q):
        config = OIPConfiguration(k=k, d=d, o=0)
        span = config.time_range
        clipped = [
            (min(s, span.end), min(min(s, span.end) + dur - 1, span.end))
            for s, dur in pairs
        ]
        relation = TemporalRelation.from_pairs(clipped)
        views = partition_views_from_lazy_list(oip_create(relation, config))
        base = sum_false_hit_ratio(views, relation, 1)
        other = sum_false_hit_ratio(views, relation, q)
        assert abs(base - other) < 1e-9

    @given(k=st.integers(1, 12), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_access_count_closed_form(self, k, data):
        s = data.draw(st.integers(0, k - 1))
        e = data.draw(st.integers(s, k - 1))
        assert access_count(k, s, e) == access_count_enumerated(k, s, e)


class TestHistogramStatisticsProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 2000), st.integers(1, 500)).map(
                lambda p: (p[0], p[0] + p[1] - 1)
            ),
            min_size=5,
            max_size=60,
        ),
        k=st.integers(2, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimate_never_below_a_third_of_reality(self, pairs, k):
        """The expected-used-partitions estimate tracks the materialised
        count within a moderate factor on arbitrary inputs, and never
        exceeds the cardinality."""
        from repro.core.oip import OIPConfiguration
        from repro.core.statistics import DurationHistogram

        relation = TemporalRelation.from_pairs(pairs)
        histogram = DurationHistogram.from_relation(relation)
        config = OIPConfiguration.for_relation(relation, k)
        actual = oip_create(relation, config).partition_count
        estimate = histogram.expected_used_partitions(k, config.d)
        assert estimate <= relation.cardinality
        # The per-span model is conservative about spans (charges the
        # longer alignment), so it cannot undershoot reality by much.
        assert estimate >= actual / 4

    @given(
        pairs=st.lists(
            st.tuples(st.integers(-500, 500), st.integers(1, 300)).map(
                lambda p: (p[0], p[0] + p[1] - 1)
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram_preserves_cardinality_and_bounds(self, pairs):
        from repro.core.statistics import DurationHistogram

        relation = TemporalRelation.from_pairs(pairs)
        histogram = DurationHistogram.from_relation(relation)
        assert histogram.cardinality == len(relation)
        assert histogram.bounds[-1] >= relation.max_duration
