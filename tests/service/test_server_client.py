"""TCP server + client round trips (in-process, real sockets)."""

import threading

import pytest

from repro.core.interval import Interval
from repro.service import (
    JoinService,
    RemoteServiceError,
    ServiceClient,
    ServiceServer,
    offline_query,
)
from repro.storage import save_index
from repro.workloads import long_lived_mixture


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("tcp") / "tcp.oip")
    outer = long_lived_mixture(
        150, 0.3, Interval(1, 9_000), seed=91, name="outer"
    )
    inner = long_lived_mixture(
        150, 0.3, Interval(1, 9_000), seed=92, name="inner"
    )
    save_index(path, outer, inner)
    return path


@pytest.fixture
def server(snapshot):
    service = JoinService(snapshot, max_active=4, max_queued=8)
    service.start()
    srv = ServiceServer(
        service, drain_timeout_s=10.0, hard_stop_timeout_s=2.0
    ).start()
    yield srv
    if not srv.stopped.is_set():
        srv.shutdown()


class TestServerClient:
    def test_query_ops_round_trip(self, server, snapshot):
        oracle = offline_query(snapshot)
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.ping()["pong"] is True
            joined = client.join()
            assert joined["pairs"] == oracle["pairs"]
            assert joined["fingerprint"] == oracle["fingerprint"]
            assert joined["counters"] == oracle["counters"]
            look = client.lookup([1, 400], include_pairs=True, max_pairs=3)
            assert look["pairs"] <= joined["pairs"]
            assert len(look.get("results", [])) <= 3
            health = client.health()
            assert health["status"] == "serving"
            assert health["ready"] is True
            metrics = client.metrics()
            assert metrics["counters"]["service.queries.completed"] >= 2
            refresh = client.refresh()
            assert refresh["swapped"] is False

    def test_remote_errors_carry_structure(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(RemoteServiceError) as excinfo:
                client.lookup([9, 2])
            assert excinfo.value.code == "bad_request"
            assert excinfo.value.retriable is False
            with pytest.raises(RemoteServiceError) as excinfo:
                client.request("frobnicate")
            assert excinfo.value.code == "bad_request"

    def test_concurrent_clients_agree(self, server, snapshot):
        oracle = offline_query(snapshot)["fingerprint"]
        fingerprints = []
        lock = threading.Lock()

        def worker():
            with ServiceClient("127.0.0.1", server.port) as client:
                for _ in range(2):
                    fingerprint = client.join()["fingerprint"]
                    with lock:
                        fingerprints.append(fingerprint)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(fingerprints) == 10
        assert set(fingerprints) == {oracle}

    def test_shutdown_op_drains_server(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.shutdown()["stopping"] is True
        assert server.wait(10.0)
        assert server.service.status == "stopped"


class TestTimeoutNotRetried:
    def test_slow_response_fails_fast_without_reconnect(self):
        """A request that times out on a healthy connection must not be
        re-sent: the server is still working the slow query, and a
        reconnect-resend would duplicate the in-flight work.  Only
        genuinely dropped connections are retriable."""
        import socket

        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(5.0)
        accepted = []

        def acceptor():
            try:
                while True:
                    conn, _ = listener.accept()
                    accepted.append(conn)  # accept, then stay silent
            except OSError:
                pass

        thread = threading.Thread(target=acceptor, daemon=True)
        thread.start()
        client = ServiceClient(
            "127.0.0.1",
            listener.getsockname()[1],
            timeout_s=0.2,
            retries=3,
        )
        try:
            with pytest.raises(TimeoutError):
                client.ping()
            assert client.reconnects == 0
        finally:
            client.close()
            listener.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=5.0)
