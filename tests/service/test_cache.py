"""Result-cache correctness: LRU mechanics, fingerprint canonicality,
bit-identity of cached answers, and the two staleness defenses
(generation-keyed entries + wholesale invalidation on swap)."""

import pytest

import repro.service.service as service_module
from repro.core.interval import Interval
from repro.service import JoinService, offline_query
from repro.service.cache import ResultCache, request_fingerprint
from repro.storage import save_index
from repro.workloads import long_lived_mixture

#: Per-request fields a cache hit legitimately differs in.
VOLATILE = ("cached", "service_ms", "trace_id")


def _strip(body):
    return {k: v for k, v in body.items() if k not in VOLATILE}


def _relations(seed):
    outer = long_lived_mixture(
        150, 0.3, Interval(1, 10_000), seed=seed, name="outer"
    )
    inner = long_lived_mixture(
        150, 0.3, Interval(1, 10_000), seed=seed + 1, name="inner"
    )
    return outer, inner


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cache") / "cache.oip")
    outer, inner = _relations(310)
    save_index(path, outer, inner)
    return path


class TestFingerprint:
    def test_identical_requests_identical_fingerprint(self):
        a = request_fingerprint(op="join", kernel="auto")
        b = request_fingerprint(op="join", kernel="auto")
        assert a == b

    def test_every_field_is_load_bearing(self):
        base = dict(
            op="join",
            window=None,
            kernel="auto",
            shards=None,
            include_pairs=False,
            max_pairs=1000,
        )
        reference = request_fingerprint(**base)
        for variant in (
            dict(base, op="lookup", window=[1, 50]),
            dict(base, window=[1, 50]),
            dict(base, kernel="nested"),
            dict(base, shards=4),
            dict(base, include_pairs=True),
            dict(base, max_pairs=10),
        ):
            assert request_fingerprint(**variant) != reference, variant

    def test_window_normalized_to_ints(self):
        assert request_fingerprint(
            op="lookup", window=[1, 50]
        ) == request_fingerprint(op="lookup", window=(1, 50))


class TestResultCacheUnit:
    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.store(0, "a", {"v": 1})
        cache.store(0, "b", {"v": 2})
        assert cache.lookup(0, "a") == {"v": 1}  # refresh a
        cache.store(0, "c", {"v": 3})  # evicts b
        assert cache.lookup(0, "b") is None
        assert cache.lookup(0, "a") == {"v": 1}
        assert cache.lookup(0, "c") == {"v": 3}
        assert cache.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(0)
        cache.store(0, "a", {"v": 1})
        assert cache.lookup(0, "a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_generation_is_part_of_the_key(self):
        cache = ResultCache(8)
        cache.store(0, "same", {"gen": 0})
        cache.store(1, "same", {"gen": 1})
        assert cache.lookup(0, "same") == {"gen": 0}
        assert cache.lookup(1, "same") == {"gen": 1}

    def test_deep_copy_isolation_both_directions(self):
        cache = ResultCache(4)
        body = {"nested": {"v": 1}}
        cache.store(0, "a", body)
        body["nested"]["v"] = 99  # caller mutation after store
        hit = cache.lookup(0, "a")
        assert hit == {"nested": {"v": 1}}
        hit["nested"]["v"] = 77  # caller mutation after lookup
        assert cache.lookup(0, "a") == {"nested": {"v": 1}}

    def test_invalidate_drops_everything_and_counts(self):
        cache = ResultCache(8)
        cache.store(0, "a", {})
        cache.store(0, "b", {})
        assert cache.invalidate() == 2
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["invalidated_entries"] == 2


class TestServiceCaching:
    def test_hit_is_bit_identical_to_miss(self, snapshot):
        svc = JoinService(snapshot, result_cache_size=8)
        svc.start()
        miss = svc.query("join")
        hit = svc.query("join")
        assert miss["cached"] is False
        assert hit["cached"] is True
        assert _strip(miss) == _strip(hit)
        stats = svc.result_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        counters = svc.publish_metrics()["counters"]
        assert counters["service.cache.hits"] == 1
        assert counters["service.cache.misses"] == 1

    def test_hit_matches_offline_oracle(self, snapshot):
        svc = JoinService(snapshot, result_cache_size=8)
        svc.start()
        svc.query("join")
        hit = svc.query("join")
        oracle = offline_query(snapshot)
        assert hit["fingerprint"] == oracle["fingerprint"]
        assert hit["pairs"] == oracle["pairs"]
        assert hit["counters"] == oracle["counters"]

    def test_windowed_lookups_cache_independently(self, snapshot):
        svc = JoinService(snapshot, result_cache_size=8)
        svc.start()
        a1 = svc.query("lookup", window=[1, 500])
        b1 = svc.query("lookup", window=[501, 900])
        a2 = svc.query("lookup", window=[1, 500])
        assert a2["cached"] is True and b1["cached"] is False
        assert _strip(a1) == _strip(a2)
        assert a1["fingerprint"] != b1["fingerprint"] or (
            a1["pairs"] == b1["pairs"]
        )

    def test_cache_off_body_has_no_cached_field(self, snapshot):
        svc = JoinService(snapshot)
        svc.start()
        body = svc.query("join")
        assert "cached" not in body

    def test_obs_on_vs_obs_off_cached_answers_identical(self, snapshot):
        plain = JoinService(snapshot, result_cache_size=8)
        plain.start()
        traced = JoinService(snapshot, result_cache_size=8, tracing=True)
        traced.start()
        answers = []
        for svc in (plain, traced):
            svc.query("join")
            answers.append(svc.query("join"))
        assert answers[0]["cached"] and answers[1]["cached"]
        # Two *instances* executed the join independently, so only the
        # wall-clock field may differ; everything deterministic —
        # pairs, fingerprint, counters, index report — must agree.
        def deterministic(body):
            stripped = _strip(body)
            stripped.pop("elapsed_ms")
            return stripped

        assert deterministic(answers[0]) == deterministic(answers[1])

    def test_swap_invalidates_wholesale(self, snapshot, tmp_path):
        import shutil

        path = str(tmp_path / "swap.oip")
        shutil.copy(snapshot, path)
        svc = JoinService(path, result_cache_size=8)
        svc.start()
        gen0 = svc.query("join")
        assert len(svc.result_cache) == 1
        outer, inner = _relations(620)
        save_index(path, outer, inner)
        report = svc.refresh()
        assert report["swapped"]
        assert len(svc.result_cache) == 0
        assert svc.result_cache.stats()["invalidated_entries"] == 1
        gen1 = svc.query("join")
        assert gen1["cached"] is False
        assert gen1["generation"] == gen0["generation"] + 1
        assert gen1["fingerprint"] == offline_query(path)["fingerprint"]
        counters = svc.publish_metrics()["counters"]
        assert counters["service.cache.invalidations"] == 1

    def test_fingerprint_collision_across_generations_never_stale(
        self, snapshot, tmp_path, monkeypatch
    ):
        """Even with a degenerate fingerprint function that collides
        *every* request onto one digest, generation keying alone must
        keep answers fresh across a swap."""
        import shutil

        monkeypatch.setattr(
            service_module,
            "request_fingerprint",
            lambda **_kwargs: "collision",
        )
        path = str(tmp_path / "collide.oip")
        shutil.copy(snapshot, path)
        svc = JoinService(path, result_cache_size=8)
        svc.start()
        gen0 = svc.query("join")
        # Defeat the wholesale-invalidation defense on purpose so the
        # test isolates the generation-in-the-key defense.
        svc.refresh = lambda **_kwargs: None  # type: ignore[method-assign]
        outer, inner = _relations(930)
        save_index(path, outer, inner)
        report = svc.snapshots.refresh()
        assert report["swapped"]
        gen1 = svc.query("join")
        assert gen1["generation"] == gen0["generation"] + 1
        assert gen1["cached"] is False  # collision key did NOT hit
        oracle = offline_query(path)
        assert gen1["fingerprint"] == oracle["fingerprint"]
        assert gen1["pairs"] == oracle["pairs"]

    def test_lru_bound_holds_under_distinct_requests(self, snapshot):
        svc = JoinService(snapshot, result_cache_size=2)
        svc.start()
        for hi in (100, 200, 300, 400):
            svc.query("lookup", window=[1, hi])
        assert len(svc.result_cache) == 2
        assert svc.result_cache.stats()["evictions"] == 2

    def test_stats_document_has_cache_section(self, snapshot):
        svc = JoinService(snapshot, result_cache_size=8)
        svc.start()
        svc.query("join")
        svc.query("join")
        doc = svc.stats()
        assert doc["cache"]["hits"] == 1
        assert doc["cache"]["hit_rate"] == 0.5
        no_cache = JoinService(snapshot)
        no_cache.start()
        assert "cache" not in no_cache.stats()
