"""JoinService behaviour: admission, deadlines, retries, drain,
breaker, metrics, and the dict-in/dict-out protocol dispatch."""

import threading
import time
import types

import pytest

import repro.service.service as service_module
from repro.core.interval import Interval
from repro.engine.governor import CircuitBreaker
from repro.engine.parallel import WorkerFaultPlan
from repro.service import JoinService, offline_query
from repro.service.errors import (
    BadRequestError,
    ServiceError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.storage import StorageFaultError, save_index
from repro.workloads import long_lived_mixture


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("svc") / "svc.oip")
    outer = long_lived_mixture(
        200, 0.3, Interval(1, 12_000), seed=71, name="outer"
    )
    inner = long_lived_mixture(
        200, 0.3, Interval(1, 12_000), seed=72, name="inner"
    )
    save_index(path, outer, inner)
    return path


@pytest.fixture
def service(snapshot):
    svc = JoinService(snapshot, max_active=2, max_queued=4)
    svc.start()
    yield svc
    if svc.status != "stopped":
        svc.drain(timeout_s=5.0)


class TestQueries:
    def test_join_matches_offline_oracle(self, service, snapshot):
        response = service.query("join")
        oracle = offline_query(snapshot)
        assert response["pairs"] == oracle["pairs"]
        assert response["fingerprint"] == oracle["fingerprint"]
        assert response["counters"] == oracle["counters"]
        assert response["generation"] == oracle["generation"] == 0
        assert response["index"]["loaded"] is True
        assert response["attempts"] == 1

    def test_lookup_matches_offline_oracle(self, service, snapshot):
        response = service.query("lookup", window=[1, 600])
        oracle = offline_query(snapshot, op="lookup", window=[1, 600])
        assert response["pairs"] == oracle["pairs"]
        assert response["fingerprint"] == oracle["fingerprint"]
        assert response["pairs"] < service.query("join")["pairs"]

    def test_include_pairs_truncation(self, service):
        response = service.query("join", include_pairs=True, max_pairs=5)
        assert len(response["results"]) == 5
        assert response["results_truncated"] is True

    def test_bad_requests(self, service):
        with pytest.raises(BadRequestError):
            service.query("frobnicate")
        with pytest.raises(BadRequestError):
            service.query("lookup")  # lookup needs a window
        with pytest.raises(BadRequestError):
            service.query("lookup", window=[10, 5])
        with pytest.raises(BadRequestError):
            service.query("join", deadline_ms=-1)

    def test_not_serving_before_start(self, snapshot):
        svc = JoinService(snapshot)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            svc.query("join")
        assert excinfo.value.detail["status"] == "starting"

    def test_exhausted_deadline_is_structured(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.query("join", deadline_ms=1e-6)
        assert excinfo.value.code == "deadline"
        assert excinfo.value.retriable is True


class TestShardDeadlines:
    def test_shard_budgets_derive_from_absolute_deadline(
        self, snapshot, monkeypatch
    ):
        """Each shard join measures its deadline from its own start, so
        shards must receive budgets cut from the query's *absolute*
        deadline at the moment they begin — a shard that queues behind
        earlier waves must not restart the clock."""
        now = [0.0]

        def clock():
            # Every reading costs 50 "ms", so time demonstrably passes
            # between the budget computations of successive shards.
            now[0] += 0.05
            return now[0]

        budgets = []
        real_join = service_module.OIPJoin

        class RecordingJoin(real_join):
            def __init__(self, *args, **kwargs):
                budget = kwargs.get("budget")
                if budget is not None:
                    budgets.append(budget.deadline_ms)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(service_module, "OIPJoin", RecordingJoin)
        svc = JoinService(
            snapshot, shards=4, shard_backend="inline", clock=clock
        )
        svc.start()
        try:
            svc.query("join", deadline_ms=600_000.0)
        finally:
            svc.drain(timeout_s=5.0)
        assert len(budgets) == 4
        # Later shards see strictly less remaining time; a shared
        # relative budget would record four identical values.
        assert budgets == sorted(budgets, reverse=True)
        assert len(set(budgets)) == len(budgets)
        assert all(0 < b < 600_000.0 for b in budgets)


class TestOverload:
    def test_full_house_sheds_with_structure(self, snapshot):
        svc = JoinService(
            snapshot, max_active=1, max_queued=0, admit_timeout_s=0.0
        )
        svc.start()
        try:
            with svc.admission.admit():  # occupy the only slot
                with pytest.raises(ServiceOverloadError) as excinfo:
                    svc.query("join")
            error = excinfo.value
            assert error.code == "overload"
            assert error.retriable is True
            assert error.detail["max_active"] == 1
            assert error.detail["retry_after_ms"] > 0
            metrics = svc.publish_metrics()
            assert metrics["counters"]["service.queries.shed"] == 1
            assert (
                metrics["counters"]["service.queries.failed.overload"] == 1
            )
        finally:
            svc.drain(timeout_s=2.0)


class TestRetries:
    def test_transient_storage_fault_is_retried(
        self, snapshot, monkeypatch
    ):
        svc = JoinService(snapshot, max_retries=2, retry_backoff_s=0.0)
        svc.start()
        real = service_module.OIPJoin
        calls = {"n": 0}

        class Flaky(real):
            def join(self, outer, inner):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise StorageFaultError("injected transient fault", block_id=0)
                return super().join(outer, inner)

        monkeypatch.setattr(service_module, "OIPJoin", Flaky)
        response = svc.query("join")
        assert response["attempts"] == 2
        oracle = offline_query(snapshot)
        assert response["fingerprint"] == oracle["fingerprint"]
        metrics = svc.publish_metrics()
        assert metrics["counters"]["service.queries.retried"] == 1
        svc.drain(timeout_s=2.0)

    def test_persistent_fault_exhausts_retries(self, snapshot, monkeypatch):
        svc = JoinService(snapshot, max_retries=1, retry_backoff_s=0.0)
        svc.start()
        real = service_module.OIPJoin

        class Dead(real):
            def join(self, outer, inner):
                raise StorageFaultError("device gone", block_id=0)

        monkeypatch.setattr(service_module, "OIPJoin", Dead)
        with pytest.raises(ServiceError) as excinfo:
            svc.query("join")
        assert excinfo.value.code == "storage_fault"
        assert excinfo.value.detail["attempts"] == 2
        svc.drain(timeout_s=2.0)


class TestDrain:
    def test_graceful_drain_is_zero_loss(self, snapshot):
        svc = JoinService(snapshot, max_active=4, max_queued=8)
        svc.start()
        results, errors = [], []

        def client():
            try:
                results.append(svc.query("join")["fingerprint"])
            except ServiceError as error:
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        report = svc.drain(timeout_s=30.0)
        for thread in threads:
            thread.join()
        # Every query that was admitted before the drain completed; any
        # that arrived after the state flip got a structured rejection.
        assert report["drained"] is True
        assert report["cancelled"] == 0
        oracle = offline_query(snapshot)["fingerprint"]
        assert all(fingerprint == oracle for fingerprint in results)
        assert all(
            error.code == "unavailable" for error in errors
        )
        assert len(results) + len(errors) == 6
        with pytest.raises(ServiceUnavailableError):
            svc.query("join")
        assert svc.drain()["cancelled"] == 0  # idempotent

    def test_hard_stop_cancels_stragglers(self, snapshot, monkeypatch):
        svc = JoinService(snapshot)
        svc.start()
        real = service_module.OIPJoin
        started = threading.Event()

        class Stuck(real):
            def join(self, outer, inner):
                started.set()
                while not self.cancellation.cancelled:
                    time.sleep(0.002)
                return types.SimpleNamespace(
                    completed=False, elapsed_ms=1.0, cardinality=0
                )

        monkeypatch.setattr(service_module, "OIPJoin", Stuck)
        outcome = {}

        def client():
            try:
                svc.query("join")
            except ServiceError as error:
                outcome["error"] = error

        thread = threading.Thread(target=client)
        thread.start()
        assert started.wait(5.0)
        report = svc.drain(timeout_s=0.05, hard_stop_timeout_s=5.0)
        thread.join(5.0)
        assert report["drained"] is True
        assert report["cancelled"] == 1
        assert outcome["error"].code == "cancelled"
        metrics = svc.publish_metrics()
        assert metrics["counters"]["service.queries.cancelled"] == 1
        assert metrics["counters"]["service.drain.cancelled"] == 1


class TestBreakerRecovery:
    def test_open_half_open_closed_is_observable(self, snapshot):
        """Acceptance: breaker recovery after induced worker faults is
        visible through ``service.*`` metrics, and every response along
        the way stays bit-identical to the offline oracle."""
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1)
        svc = JoinService(
            snapshot,
            breaker=breaker,
            join_options={
                "parallelism": 2,
                "parallel_fault_plan": WorkerFaultPlan(
                    fail_chunks={0: 99, 1: 99, 2: 99, 3: 99}
                ),
            },
        )
        svc.start()
        oracle = offline_query(snapshot)["fingerprint"]

        def gauge():
            return svc.publish_metrics()["gauges"][
                "service.breaker.state"
            ]

        # Two faulted parallel joins (downgraded chunks) trip the
        # breaker: closed -> open.  Results stay correct throughout.
        for _ in range(2):
            assert svc.query("join")["fingerprint"] == oracle
        assert breaker.state == CircuitBreaker.OPEN
        assert gauge() == 2
        # While open the pool is bypassed (sequential, still correct);
        # the denial advances the cooldown: open -> half-open.
        assert svc.query("join")["fingerprint"] == oracle
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert gauge() == 1
        # The operator clears the fault; the half-open trial run
        # succeeds and the breaker closes.
        svc.clear_join_option("parallel_fault_plan")
        assert svc.query("join")["fingerprint"] == oracle
        assert breaker.state == CircuitBreaker.CLOSED
        assert gauge() == 0
        svc.drain(timeout_s=2.0)


class TestDispatchAndHealth:
    def test_handle_request_round_trips(self, service):
        pong = service.handle_request({"op": "ping", "id": 7})
        assert pong == {"id": 7, "ok": True, "pong": True}
        health = service.handle_request({"op": "health", "id": 8})
        assert health["ok"] and health["ready"] is True
        assert health["status"] == "serving"
        joined = service.handle_request({"op": "join", "id": 9})
        assert joined["ok"] and joined["pairs"] > 0
        unknown = service.handle_request({"op": "nope", "id": 10})
        assert unknown["ok"] is False
        assert unknown["error"]["code"] == "bad_request"
        not_dict = service.handle_request("garbage")
        assert not_dict["error"]["code"] == "bad_request"
        refreshed = service.handle_request({"op": "refresh", "id": 11})
        assert refreshed["ok"] and refreshed["swapped"] is False

    def test_metrics_families_present(self, service):
        service.query("join")
        snapshot_dict = service.handle_request({"op": "metrics"})["metrics"]
        counters = snapshot_dict["counters"]
        gauges = snapshot_dict["gauges"]
        assert counters["service.queries.submitted"] >= 1
        assert counters["service.queries.completed"] >= 1
        assert gauges["service.state"] == 1  # serving
        assert gauges["service.inflight"] == 0
        assert gauges["service.generation"] == 0
        assert gauges["service.generation.age_s"] >= 0
        assert "admission.active" in gauges
        assert "breaker.state" in gauges
        assert "service.query.latency_ms" in snapshot_dict["histograms"]

    def test_health_uptime_and_admission(self, service):
        service.query("join")
        health = service.health()
        assert health["uptime_s"] >= 0
        assert health["queries_served"] >= 1
        assert health["admission"]["admitted"] >= 1
        assert health["breaker"]["state"] == "closed"
