"""End-to-end service telemetry: wire-propagated traces that stitch
into one tree, the stats/tracedump ops, the structured query log, the
Prometheus exporter, and the no-telemetry bit-identity guarantee."""

import io
import json
import urllib.request

import pytest

from repro.core.interval import Interval
from repro.obs.log import QueryLog, read_log_lines
from repro.obs.trace import Tracer, stitch_traces
from repro.service import (
    JoinService,
    MetricsExporter,
    ServiceClient,
    ServiceServer,
    offline_query,
)
from repro.service.errors import ServiceError, ServiceOverloadError
from repro.service.protocol import trace_context
from repro.storage import save_index
from repro.workloads import long_lived_mixture


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("tel") / "tel.oip")
    outer = long_lived_mixture(
        150, 0.3, Interval(1, 9_000), seed=81, name="outer"
    )
    inner = long_lived_mixture(
        150, 0.3, Interval(1, 9_000), seed=82, name="inner"
    )
    save_index(path, outer, inner)
    return path


def _span_names(tree):
    return [child["name"] for child in tree.get("children", ())]


class TestStitchedTraceRoundTrip:
    def test_client_and_server_spans_join_into_one_tree(self, snapshot):
        """The tentpole acceptance test: one query over TCP produces a
        client span and a server span tree sharing one trace id, and
        stitching yields client.request -> service.query -> phases."""
        service = JoinService(snapshot, tracing=True)
        service.start()
        server = ServiceServer(service).start()
        client_tracer = Tracer()
        try:
            with ServiceClient(
                server.host, server.port, tracer=client_tracer
            ) as client:
                body = client.join()
                trace_id = client.last_trace_id
                assert trace_id is not None
                assert body["trace_id"] == trace_id
            # Fetch the server tree over a second, untraced connection
            # so the dump is not polluted by the fetch itself.
            with ServiceClient(server.host, server.port) as plain:
                dump = plain.tracedump(trace_id=trace_id)
            assert dump["tracing"] is True
            assert len(dump["traces"]) == 1
            (server_tree,) = dump["traces"]
            assert server_tree["name"] == "service.query"
            assert server_tree["attributes"]["trace_id"] == trace_id
            phases = _span_names(server_tree)
            assert phases[:2] == ["admission.wait", "snapshot.pin"]
            assert "join" in phases
            client_tree = next(
                root.as_dict()
                for root in client_tracer.roots
                if root.attributes.get("trace_id") == trace_id
            )
            merged = stitch_traces(client_tree, server_tree)
            assert merged["name"] == "client.request"
            assert merged["attributes"]["op"] == "join"
            grafted = merged["children"][-1]
            assert grafted["name"] == "service.query"
            assert grafted["attributes"]["trace_id"] == trace_id
        finally:
            server.shutdown()

    def test_untraced_client_sends_no_trace_field(self, snapshot):
        service = JoinService(snapshot)
        service.start()
        try:
            request = {"op": "join", "id": 1}
            assert trace_context(request) is None
            response = service.handle_request(request)
            assert response["ok"] is True
            assert "trace_id" not in response
        finally:
            service.drain(timeout_s=5.0)

    def test_server_echoes_wire_trace_id(self, snapshot):
        service = JoinService(snapshot, tracing=True)
        service.start()
        try:
            response = service.handle_request(
                {"op": "join", "id": 7, "trace": {"trace_id": "feedbeef"}}
            )
            assert response["trace_id"] == "feedbeef"
            dump = service.tracedump(trace_id="feedbeef")
            assert len(dump["traces"]) == 1
        finally:
            service.drain(timeout_s=5.0)


class TestStatsEndpoint:
    def test_stats_document_over_the_wire(self, snapshot):
        service = JoinService(snapshot, tracing=True)
        service.start()
        server = ServiceServer(service).start()
        try:
            with ServiceClient(server.host, server.port) as client:
                for _ in range(3):
                    client.join()
                stats = client.stats()
            assert stats["kind"] == "service_stats"
            assert stats["version"] == 1
            assert stats["status"] == "serving"
            join_row = stats["endpoints"]["join"]
            assert join_row["count"] == 3
            assert join_row["mean_ms"] > 0
            for quantile in ("p50_ms", "p95_ms", "p99_ms"):
                assert join_row[quantile] >= 0
            assert join_row["p50_ms"] <= join_row["p99_ms"]
            for phase in ("admission.wait", "snapshot.pin", "join"):
                assert stats["phases"][phase]["count"] == 3
            assert stats["counters"]["service.queries.completed"] == 3
            assert stats["tracing"] is True
            assert stats["traces"]["buffered"] == 3
        finally:
            server.shutdown()

    def test_stats_captures_are_compare_ready(self, snapshot, tmp_path):
        from repro.obs.compare import compare_stats, main as compare_main

        service = JoinService(snapshot)
        service.start()
        try:
            service.query("join")
            base = service.stats()
            service.query("join")
            other = service.stats()
        finally:
            service.drain(timeout_s=5.0)
        diff = compare_stats(base, other)
        assert diff["kind"] == "service_stats_comparison"
        assert "join" in [row["name"] for row in diff["endpoints"]]
        base_path = str(tmp_path / "base.json")
        other_path = str(tmp_path / "other.json")
        for path, document in ((base_path, base), (other_path, other)):
            with open(path, "w") as handle:
                json.dump(document, handle)
        assert compare_main([base_path, other_path, "--json"]) == 0

    def test_tracedump_limit_and_off_mode(self, snapshot):
        service = JoinService(snapshot)
        service.start()
        try:
            service.query("join")
            assert service.tracedump() == {
                "tracing": False, "traces": [], "dropped": 0,
            }
        finally:
            service.drain(timeout_s=5.0)


class TestFailureTelemetry:
    def test_shed_query_reports_elapsed_ms(self, snapshot):
        """Satellite bugfix: overload rejections carry elapsed_ms and
        the trace ends in a terminal admission.wait span."""
        service = JoinService(
            snapshot,
            max_active=1,
            max_queued=0,
            admit_timeout_s=0.0,
            tracing=True,
        )
        service.start()
        try:
            with service.admission.admit():  # occupy the only slot
                with pytest.raises(ServiceOverloadError) as excinfo:
                    service.query("join")
            error = excinfo.value
            assert error.detail["elapsed_ms"] >= 0.0
            assert error.detail["trace_id"]
            (tree,) = service.tracedump(
                trace_id=error.detail["trace_id"]
            )["traces"]
            # The request died waiting for admission: the span tree is
            # service.query -> admission.wait with an error attribute
            # and no snapshot.pin / join phases.
            assert _span_names(tree) == ["admission.wait"]
            wait_span = tree["children"][0]
            assert "error" in wait_span["attributes"]
            assert "admitted" not in wait_span["attributes"]
        finally:
            service.drain(timeout_s=5.0)

    def test_deadline_rejection_reports_elapsed_ms(self, snapshot):
        service = JoinService(snapshot, tracing=True)
        service.start()
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.query("join", deadline_ms=1e-6)
            assert excinfo.value.code == "deadline"
            assert excinfo.value.detail["elapsed_ms"] > 0.0
            assert excinfo.value.detail["trace_id"]
        finally:
            service.drain(timeout_s=5.0)

    def test_error_response_carries_trace_id(self, snapshot):
        service = JoinService(
            snapshot, max_active=1, max_queued=0, admit_timeout_s=0.0
        )
        service.start()
        try:
            with service.admission.admit():
                response = service.handle_request(
                    {"op": "join", "id": 3, "trace": {"trace_id": "abcd"}}
                )
            assert response["ok"] is False
            assert response["trace_id"] == "abcd"
            assert response["error"]["detail"]["elapsed_ms"] >= 0.0
        finally:
            service.drain(timeout_s=5.0)


class TestQueryLogIntegration:
    def test_lifecycle_and_query_events_in_order(self, snapshot):
        stream = io.StringIO()
        service = JoinService(
            snapshot, query_log=QueryLog(stream, slow_query_ms=0.0)
        )
        service.start()
        service.query("join")
        service.drain(timeout_s=5.0)
        records = read_log_lines(io.StringIO(stream.getvalue()))
        events = [record["event"] for record in records]
        assert events == [
            "service.started",
            "query.completed",
            "drain.started",
            "drain.finished",
        ]
        completed = records[1]
        # slow_query_ms=0.0 promotes every query into the slow lane.
        assert completed["slow"] is True
        assert completed["level"] == "warning"
        assert completed["elapsed_ms"] > 0.0
        assert completed["trace_id"]

    def test_log_alone_mints_trace_ids(self, snapshot):
        """A service with a query log but no tracing still correlates
        records by minted trace ids."""
        stream = io.StringIO()
        service = JoinService(snapshot, query_log=QueryLog(stream))
        service.start()
        try:
            body = service.query("join")
            assert body["trace_id"]
        finally:
            service.drain(timeout_s=5.0)

    def test_refresh_events_logged(self, snapshot):
        stream = io.StringIO()
        service = JoinService(snapshot, query_log=QueryLog(stream))
        service.start()
        try:
            service.refresh()
        finally:
            service.drain(timeout_s=5.0)
        events = [
            record["event"]
            for record in read_log_lines(io.StringIO(stream.getvalue()))
        ]
        assert "snapshot.refresh.started" in events


class TestBitIdentity:
    def test_telemetry_changes_no_query_bytes(self, snapshot):
        """Tracing and logging on or off, the join results are
        bit-identical to the offline oracle."""
        oracle = offline_query(snapshot)
        quiet = JoinService(snapshot)
        noisy = JoinService(
            snapshot,
            tracing=True,
            query_log=QueryLog(io.StringIO(), slow_query_ms=0.0),
        )
        for service in (quiet, noisy):
            service.start()
            try:
                body = service.query("join")
                assert body["fingerprint"] == oracle["fingerprint"]
                assert body["pairs"] == oracle["pairs"]
                assert body["counters"] == oracle["counters"]
            finally:
                service.drain(timeout_s=5.0)


class TestMetricsExporter:
    def test_scrape_serves_prometheus_text(self, snapshot):
        service = JoinService(snapshot)
        service.start()
        exporter = MetricsExporter(service, port=0).start()
        try:
            service.query("join")
            url = f"http://{exporter.host}:{exporter.port}/metrics"
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                text = response.read().decode("utf-8")
            assert "service_op_join_latency_ms_bucket" in text
            assert "service_queries_completed 1" in text
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{exporter.host}:{exporter.port}/nope"
                )
            assert excinfo.value.code == 404
        finally:
            exporter.stop()
            service.drain(timeout_s=5.0)

    def test_server_owns_exporter_lifecycle(self, snapshot):
        service = JoinService(snapshot)
        service.start()
        server = ServiceServer(service, metrics_port=0).start()
        try:
            port = server.metrics_exporter.port
            with urllib.request.urlopen(
                f"http://{server.host}:{port}/metrics"
            ) as response:
                assert response.status == 200
        finally:
            server.shutdown()
