"""Multi-process worker pool: kernel-balanced accepts, fleet-wide
stats aggregation, and crash supervision (SIGKILL chaos + client
reconnect-retry)."""

import os
import signal
import threading
import time

import pytest

from repro.core.interval import Interval
from repro.service import (
    ServiceClient,
    ServiceError,
    WorkerSupervisor,
    offline_query,
)
from repro.service.aggregate import read_roster
from repro.service.errors import ScaleOutConfigError
from repro.service.workers import WorkerStartupError
from repro.storage import save_index
from repro.workloads import long_lived_mixture


def _relations(seed):
    outer = long_lived_mixture(
        150, 0.3, Interval(1, 10_000), seed=seed, name="outer"
    )
    inner = long_lived_mixture(
        150, 0.3, Interval(1, 10_000), seed=seed + 1, name="inner"
    )
    return outer, inner


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("pool") / "pool.oip")
    outer, inner = _relations(811)
    save_index(path, outer, inner)
    return path


@pytest.fixture
def pool(snapshot):
    supervisor = WorkerSupervisor(
        snapshot,
        workers=2,
        service_kwargs={"result_cache_size": 8},
        drain_timeout_s=10.0,
        hard_stop_timeout_s=2.0,
    )
    supervisor.start()
    runner = threading.Thread(target=supervisor.run, daemon=True)
    runner.start()
    yield supervisor
    supervisor.initiate_shutdown()
    supervisor.shutdown()
    runner.join(timeout=10.0)


def _wait_until(predicate, timeout_s=20.0, interval_s=0.2):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestConfigValidation:
    def test_zero_workers_rejected(self, snapshot):
        with pytest.raises(ScaleOutConfigError):
            WorkerSupervisor(snapshot, workers=0)

    def test_missing_snapshot_propagates_exit_code(self, tmp_path):
        supervisor = WorkerSupervisor(
            str(tmp_path / "nope.oip"), workers=1, ready_timeout_s=30.0
        )
        with pytest.raises(WorkerStartupError) as excinfo:
            supervisor.start()
        assert excinfo.value.exit_code == 66
        supervisor.shutdown()


class TestPoolServing:
    def test_connections_balance_and_answers_match_oracle(
        self, pool, snapshot
    ):
        oracle = offline_query(snapshot)
        pids = set()
        for _ in range(20):
            with ServiceClient("127.0.0.1", pool.port) as client:
                pids.add(client.health()["pid"])
                body = client.join()
                assert body["fingerprint"] == oracle["fingerprint"]
                assert body["pairs"] == oracle["pairs"]
            if len(pids) == 2:
                break
        assert len(pids) == 2, "kernel never balanced across workers"
        assert os.getpid() not in pids  # parent never serves

    def test_sharded_and_cached_pool_answers_match_oracle(
        self, pool, snapshot
    ):
        oracle = offline_query(snapshot)
        with ServiceClient("127.0.0.1", pool.port) as client:
            sharded = client.join(shards=3)
            assert sharded["fingerprint"] == oracle["fingerprint"]
            first = client.join()
            again = client.join()
            assert again["fingerprint"] == oracle["fingerprint"]
            # Same connection -> same worker -> second identical
            # request must be a cache hit.
            assert first["cached"] is False
            assert again["cached"] is True

    def test_stats_aggregates_across_workers(self, pool):
        total = 6
        pids = set()
        for _ in range(total):
            with ServiceClient("127.0.0.1", pool.port) as client:
                pids.add(client.health()["pid"])
                client.join()
        with ServiceClient("127.0.0.1", pool.port) as client:
            fleet = client.stats()
            local = client.stats_local()
        assert fleet["aggregated"] is True
        assert fleet["workers"]["configured"] == 2
        assert fleet["workers"]["responding"] == 2
        assert fleet["counters"]["service.queries.completed"] == total
        assert "service.worker.restarts" in fleet["counters"]
        assert "aggregated" not in local
        if len(pids) == 2:
            # Traffic reached both workers, so any single process must
            # hold strictly less than the fleet total.
            assert (
                local["counters"]["service.queries.completed"] < total
            )
        # Quantile count equals the merged completions: the histogram
        # merge, not one worker's view.
        assert fleet["endpoints"]["join"]["count"] == total

    def test_roster_describes_the_pool(self, pool):
        roster = read_roster(pool.roster_path)
        assert roster is not None
        assert len(roster["workers"]) == 2
        assert roster["parent_pid"] == os.getpid()
        assert {w["worker"] for w in roster["workers"]} == {0, 1}


class TestCrashSupervision:
    def test_sigkill_worker_client_retries_and_pool_heals(
        self, pool, snapshot
    ):
        oracle = offline_query(snapshot)
        client = ServiceClient("127.0.0.1", pool.port, retries=4)
        try:
            victim = client.health()["pid"]
            os.kill(victim, signal.SIGKILL)
            # The connection is pinned to the dead worker; the next
            # request must fail over via reconnect to a survivor and
            # still produce the oracle answer.
            body = client.join()
            assert body["fingerprint"] == oracle["fingerprint"]
            assert client.reconnects >= 1
        finally:
            client.close()
        assert _wait_until(lambda: pool.restarts >= 1)
        assert _wait_until(
            lambda: (read_roster(pool.roster_path) or {}).get(
                "restarts", 0
            )
            >= 1
        )

        def pool_fully_responding():
            try:
                with ServiceClient("127.0.0.1", pool.port) as probe:
                    stats = probe.stats()
            except (ServiceError, OSError):
                return False
            return (
                stats["workers"]["responding"] == 2
                and stats["counters"]["service.worker.restarts"] >= 1
            )

        assert _wait_until(pool_fully_responding)

    def test_without_retries_dropped_connection_is_fatal(self, pool):
        client = ServiceClient("127.0.0.1", pool.port)
        try:
            victim = client.health()["pid"]
            os.kill(victim, signal.SIGKILL)
            with pytest.raises((ServiceError, OSError)):
                client.join()
        finally:
            client.close()
        assert _wait_until(lambda: pool.restarts >= 1)


class _StubProc:
    """A dead-or-alive stand-in for a worker process: just enough
    surface (name, liveness, a waitable sentinel fd) for the
    supervision loop."""

    def __init__(self, index, alive):
        self.name = f"oip-worker-{index}"
        self._alive = alive
        self.sentinel, self._sentinel_write = os.pipe()

    def is_alive(self):
        return self._alive

    def close_fds(self):
        os.close(self.sentinel)
        os.close(self._sentinel_write)


class TestRespawnRetry:
    def test_failed_replacement_retried_without_pool_teardown(
        self, snapshot, monkeypatch
    ):
        """A replacement that fails to start must not SIGTERM survivors
        or close the listener; its index stays pending and is retried
        every supervision pass until a spawn sticks."""
        supervisor = WorkerSupervisor(snapshot, workers=1)
        closed = []

        class _Listener:
            def close(self):
                closed.append(True)

            def getsockname(self):
                return ("127.0.0.1", 0)

        supervisor._listener = _Listener()
        dead = _StubProc(0, alive=False)
        survivor = _StubProc(1, alive=True)
        replacement = _StubProc(0, alive=True)
        supervisor._procs = [dead, survivor]
        supervisor._roster_entries = [
            {
                "worker": index,
                "pid": 1000 + index,
                "generation": 1,
                "control_host": "127.0.0.1",
                "control_port": 1 + index,
            }
            for index in (0, 1)
        ]
        rosters = []
        monkeypatch.setattr(
            supervisor,
            "_write_roster",
            lambda: rosters.append(
                sorted(e["worker"] for e in supervisor._roster_entries)
            ),
        )
        spawn_calls = []

        def fake_spawn(index, teardown_on_failure=True):
            spawn_calls.append((index, teardown_on_failure))
            if len(spawn_calls) < 3:
                raise WorkerStartupError(
                    f"worker {index} failed to start: snapshot corrupt"
                )
            supervisor._procs.append(replacement)
            entry = {
                "worker": index,
                "pid": 4321,
                "generation": 2,
                "control_host": "127.0.0.1",
                "control_port": 9,
            }
            supervisor._roster_entries.append(entry)
            return entry

        monkeypatch.setattr(supervisor, "_spawn", fake_spawn)
        runner = threading.Thread(
            target=supervisor.run,
            kwargs={"poll_interval_s": 0.01},
            daemon=True,
        )
        runner.start()
        try:
            assert _wait_until(lambda: len(spawn_calls) >= 3)
            assert _wait_until(lambda: replacement in supervisor._procs)
        finally:
            supervisor.initiate_shutdown()
            runner.join(timeout=10.0)
        assert not runner.is_alive()
        # Every attempt targeted the dead index on the no-teardown path.
        assert spawn_calls[:3] == [(0, False)] * 3
        assert not closed, "listener was closed during a respawn retry"
        assert survivor in supervisor._procs, "survivor was torn down"
        assert supervisor.restarts == 1
        # The dead worker's entry was dropped while pending, restored
        # once the replacement stuck.
        assert rosters[0] == [1]
        assert rosters[-1] == [0, 1]
        for proc in (dead, survivor, replacement):
            proc.close_fds()
