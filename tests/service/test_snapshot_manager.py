"""Generation pinning and the load-validate-swap-drop protocol."""

import os
import shutil

import pytest

from repro.core.interval import Interval
from repro.service import ServingGeneration, SnapshotManager
from repro.service.errors import (
    ServiceUnavailableError,
    SnapshotSwapRejectedError,
)
from repro.storage import save_index
from repro.workloads import long_lived_mixture


def _relations(seed):
    outer = long_lived_mixture(
        150, 0.3, Interval(1, 10_000), seed=seed, name="outer"
    )
    inner = long_lived_mixture(
        150, 0.3, Interval(1, 10_000), seed=seed + 1, name="inner"
    )
    return outer, inner


@pytest.fixture
def snapshot(tmp_path):
    path = str(tmp_path / "gen.oip")
    outer, inner = _relations(31)
    save_index(path, outer, inner)
    return path


class TestServingGeneration:
    def test_load_reconstructs_relations(self, snapshot):
        generation = ServingGeneration.load(snapshot)
        assert generation.generation == 0
        assert len(generation.outer) == 150
        assert len(generation.inner) == 150
        assert generation.outer.name == "outer"
        assert generation.refs == 0
        assert generation.age_s() >= 0.0

    def test_is_an_index_provider(self, snapshot):
        from repro.core.join import OIPJoin

        generation = ServingGeneration.load(snapshot)
        served = OIPJoin(
            index_provider=generation, **generation.join_kwargs()
        ).join(generation.outer, generation.inner)
        offline = OIPJoin(
            index_path=snapshot, **generation.join_kwargs()
        ).join(generation.outer, generation.inner)
        assert served.details["index"]["loaded"] is True
        assert offline.details["index"]["loaded"] is True
        assert served.pair_keys() == offline.pair_keys()
        assert served.counters.snapshot() == offline.counters.snapshot()

    def test_pinned_generation_survives_disk_loss(self, snapshot):
        from repro.core.join import OIPJoin

        generation = ServingGeneration.load(snapshot)
        baseline = OIPJoin(
            index_provider=generation, **generation.join_kwargs()
        ).join(generation.outer, generation.inner)
        os.remove(snapshot)  # hostile: the file vanishes mid-flight
        again = OIPJoin(
            index_provider=generation, **generation.join_kwargs()
        ).join(generation.outer, generation.inner)
        assert again.details["index"]["loaded"] is True
        assert again.pair_keys() == baseline.pair_keys()


class TestSnapshotManager:
    def test_acquire_before_load_is_unavailable(self, snapshot):
        manager = SnapshotManager(snapshot)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            manager.acquire()
        assert excinfo.value.code == "unavailable"

    def test_pin_release_refcounts(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        generation = manager.acquire()
        assert generation.refs == 1
        with manager.pinned() as again:
            assert again is generation
            assert generation.refs == 2
        manager.release(generation)
        assert generation.refs == 0
        assert generation.queries_served == 2

    def test_refresh_unchanged_is_a_noop(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        report = manager.refresh()
        assert report["swapped"] is False
        assert report["reason"] == "unchanged"
        assert manager.swaps_unchanged == 1
        forced = manager.refresh(force=True)
        assert forced["swapped"] is True

    def test_refresh_swaps_to_new_generation(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        outer, inner = _relations(77)
        save_index(snapshot, outer, inner)  # auto-bumps to generation 1
        report = manager.refresh()
        assert report["swapped"] is True
        assert report["generation"] == 1
        assert report["previous_generation"] == 0
        assert report["previous_still_pinned"] is False
        assert manager.generation == 1
        assert manager.retired == ()

    def test_swap_retires_pinned_generation_until_released(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        pinned = manager.acquire()
        outer, inner = _relations(78)
        save_index(snapshot, outer, inner)
        report = manager.refresh()
        assert report["previous_still_pinned"] is True
        assert pinned in manager.retired
        # The old generation keeps answering while pinned ...
        assert pinned.generation == 0
        manager.release(pinned)
        # ... and is dropped at the last release.
        assert manager.retired == ()

    def test_corrupt_candidate_is_rejected_and_old_serves(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        keep = str(snapshot) + ".keep"
        shutil.copy(snapshot, keep)
        with open(snapshot, "r+b") as handle:
            handle.seek(120)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(SnapshotSwapRejectedError) as excinfo:
            manager.refresh()
        assert excinfo.value.code == "swap_rejected"
        assert excinfo.value.reason in ("section_crc", "truncated")
        assert excinfo.value.verdict["loadable"] is False
        assert manager.generation == 0  # degrade, never die
        assert manager.swaps_rejected == 1
        shutil.copy(keep, snapshot)
        assert manager.refresh(force=True)["swapped"] is True

    def test_missing_candidate_is_rejected(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        os.remove(snapshot)
        with pytest.raises(SnapshotSwapRejectedError) as excinfo:
            manager.refresh()
        assert excinfo.value.reason == "missing"
        assert manager.generation == 0

    def test_describe_reports_health_material(self, snapshot):
        manager = SnapshotManager(snapshot)
        manager.load()
        with manager.pinned():
            health = manager.describe()
        assert health["generation"] == 0
        assert health["generation_refs"] in (0, 1)
        assert health["swaps"] == 0
        assert health["retired_generations"] == 0
