"""Time-shard scatter-gather: plan validation, ownership-rule dedup,
and the bit-identity differential against the unsharded join."""

import pytest

from repro.core.base import join_pair_key
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.service import JoinService, offline_query
from repro.service.errors import BadRequestError, ScaleOutConfigError
from repro.service.router import (
    TimeShardRouter,
    shard_ranges,
    shard_slice,
    validate_shard_ranges,
)
from repro.storage import save_index
from repro.workloads import long_lived_mixture


def _relations(seed, n=250, domain=Interval(1, 15_000)):
    outer = long_lived_mixture(n, 0.3, domain, seed=seed, name="outer")
    inner = long_lived_mixture(n, 0.3, domain, seed=seed + 1, name="inner")
    return outer, inner


class TestShardPlanning:
    def test_equal_width_tiles_domain_exactly(self):
        ranges = shard_ranges((1, 100), 4)
        assert ranges == [(1, 25), (26, 50), (51, 75), (76, 100)]

    def test_remainder_spread_over_leading_shards(self):
        ranges = shard_ranges((0, 9), 3)
        assert ranges == [(0, 3), (4, 6), (7, 9)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 9

    def test_more_shards_than_points_clamps(self):
        ranges = shard_ranges((5, 7), 10)
        assert ranges == [(5, 5), (6, 6), (7, 7)]

    def test_invalid_plans_rejected(self):
        with pytest.raises(ScaleOutConfigError):
            shard_ranges((10, 5), 2)
        with pytest.raises(ScaleOutConfigError):
            shard_ranges((1, 10), 0)
        with pytest.raises(ScaleOutConfigError):
            validate_shard_ranges([])
        with pytest.raises(ScaleOutConfigError, match="overlap"):
            validate_shard_ranges([[1, 10], [5, 20]])
        with pytest.raises(ScaleOutConfigError, match="gap"):
            validate_shard_ranges([[1, 10], [12, 20]])
        with pytest.raises(ScaleOutConfigError, match="ends before"):
            validate_shard_ranges([[10, 1]])
        with pytest.raises(ScaleOutConfigError, match="not a"):
            validate_shard_ranges([["a", "b"]])
        with pytest.raises(ScaleOutConfigError, match="cover"):
            validate_shard_ranges([[5, 10]], domain=(1, 20))

    def test_unsorted_input_normalized(self):
        assert validate_shard_ranges([[11, 20], [1, 10]]) == [
            (1, 10),
            (11, 20),
        ]

    def test_router_requires_exactly_one_plan_source(self):
        with pytest.raises(ScaleOutConfigError):
            TimeShardRouter()
        with pytest.raises(ScaleOutConfigError):
            TimeShardRouter(shards=2, ranges=[[1, 10]])
        with pytest.raises(ScaleOutConfigError):
            TimeShardRouter(shards=2, backend="bogus")

    def test_process_backend_rejected(self):
        # Shard tasks close over unpicklable per-query state, so the
        # process backend would fail at pickling time on the first
        # query; the router must reject it at construction instead.
        with pytest.raises(ScaleOutConfigError, match="process"):
            TimeShardRouter(shards=2, backend="process")


class TestShardSlice:
    def test_boundary_spanning_tuples_replicated(self):
        outer, _ = _relations(41)
        lo, hi = 1, 7_500
        left = shard_slice(outer, lo, hi)
        right = shard_slice(outer, hi + 1, 15_000)
        spanning = sum(
            1 for t in outer if t.start <= hi and hi + 1 <= t.end
        )
        assert len(left) + len(right) == len(outer) + spanning
        assert spanning > 0  # long-lived mixture guarantees spanners

    def test_slice_shares_tuple_objects(self):
        outer, _ = _relations(42)
        sliced = shard_slice(outer, 1, 15_000)
        assert len(sliced) == len(outer)
        assert all(a is b for a, b in zip(sliced, outer))


class TestDifferential:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    @pytest.mark.parametrize("seed", [101, 202])
    def test_sharded_pairs_bit_identical(self, shards, seed):
        outer, inner = _relations(seed)
        base = OIPJoin(k=16).join(outer, inner)
        router = TimeShardRouter(shards=shards, backend="thread")
        merged = router.execute(
            outer, inner, join_factory=lambda: OIPJoin(k=16)
        )
        assert merged.completed
        assert sorted(map(join_pair_key, merged.pairs)) == sorted(
            map(join_pair_key, base.pairs)
        )

    def test_explicit_ranges_bit_identical(self):
        outer, inner = _relations(303)
        domain = TimeShardRouter.domain_of(outer, inner)
        mid = (domain[0] + domain[1]) // 2
        router = TimeShardRouter(
            ranges=[[domain[0], mid], [mid + 1, domain[1]]]
        )
        base = OIPJoin(k=16).join(outer, inner)
        merged = router.execute(
            outer, inner, join_factory=lambda: OIPJoin(k=16)
        )
        assert sorted(map(join_pair_key, merged.pairs)) == sorted(
            map(join_pair_key, base.pairs)
        )

    def test_stale_explicit_plan_rejected_at_query_time(self):
        outer, inner = _relations(404)
        router = TimeShardRouter(ranges=[[1, 100]])  # far too narrow
        with pytest.raises(ScaleOutConfigError, match="cover"):
            router.execute(
                outer, inner, join_factory=lambda: OIPJoin(k=16)
            )

    def test_duplicates_actually_dropped(self):
        outer, inner = _relations(505)
        router = TimeShardRouter(shards=5)
        merged = router.execute(
            outer, inner, join_factory=lambda: OIPJoin(k=16)
        )
        sharded = merged.details["sharded"]
        # Long-lived intervals guarantee cross-boundary pairs, so the
        # ownership rule must have rejected some discoveries.
        assert sharded["duplicates_dropped"] > 0
        assert sharded["replicated_outer"] > 0
        found = sum(s["pairs"] for s in sharded["per_shard"])
        assert found == len(merged.pairs)

    def test_skew_metrics_published(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        outer, inner = _relations(606)
        router = TimeShardRouter(shards=3, metrics=registry)
        router.execute(outer, inner, join_factory=lambda: OIPJoin(k=16))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["service.router.queries"] == 1
        assert snapshot["gauges"]["service.router.shards"] == 3
        assert snapshot["gauges"]["service.router.latency_skew"] >= 1.0
        hist = snapshot["histograms"]["service.router.shard.latency_ms"]
        assert hist["count"] == 3


class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("router") / "router.oip")
        outer, inner = _relations(707)
        save_index(path, outer, inner)
        return path

    def test_per_request_shards_match_oracle(self, snapshot):
        svc = JoinService(snapshot)
        svc.start()
        oracle = offline_query(snapshot)
        for shards in (1, 2, 4):
            body = svc.query("join", shards=shards)
            assert body["fingerprint"] == oracle["fingerprint"]
            assert body["pairs"] == oracle["pairs"]

    def test_service_level_shard_plan_matches_oracle(self, snapshot):
        svc = JoinService(snapshot, shards=3)
        svc.start()
        oracle = offline_query(snapshot)
        body = svc.query("join")
        assert body["fingerprint"] == oracle["fingerprint"]

    def test_sharded_lookup_matches_oracle(self, snapshot):
        svc = JoinService(snapshot)
        svc.start()
        oracle = offline_query(snapshot, op="lookup", window=[1, 4_000])
        body = svc.query("lookup", window=[1, 4_000], shards=3)
        assert body["fingerprint"] == oracle["fingerprint"]
        assert body["pairs"] == oracle["pairs"]

    def test_bad_request_shards_rejected(self, snapshot):
        svc = JoinService(snapshot)
        svc.start()
        with pytest.raises(BadRequestError):
            svc.query("join", shards=0)
        with pytest.raises(BadRequestError):
            svc.query("join", shards="many")

    def test_wire_dispatch_carries_shards(self, snapshot):
        svc = JoinService(snapshot)
        svc.start()
        oracle = offline_query(snapshot)
        response = svc.handle_request({"op": "join", "id": 1, "shards": 2})
        assert response["ok"] and response["fingerprint"] == oracle[
            "fingerprint"
        ]
        rejected = svc.handle_request({"op": "join", "id": 2, "shards": 0})
        assert not rejected["ok"]
        assert rejected["error"]["code"] == "bad_request"
