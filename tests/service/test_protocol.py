"""Wire framing and the stdio front-end."""

import io
import json

import pytest

from repro.core.interval import Interval
from repro.service import JoinService, serve_stdio
from repro.service.errors import BadRequestError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_message,
    read_messages,
)
from repro.storage import save_index
from repro.workloads import long_lived_mixture


class TestFraming:
    def test_round_trip(self):
        message = {"op": "join", "id": 3, "deadline_ms": 250.0}
        assert decode_line(encode_message(message)) == message

    def test_blank_lines_skipped(self):
        assert decode_line(b"\n") is None
        assert decode_line(b"   \n") is None

    def test_garbage_is_structured(self):
        with pytest.raises(BadRequestError):
            decode_line(b"{not json\n")
        with pytest.raises(BadRequestError):
            decode_line(b"[1, 2, 3]\n")  # not an object
        with pytest.raises(BadRequestError):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_read_messages_stream(self):
        stream = io.BytesIO(
            encode_message({"op": "ping"})
            + b"\n"
            + encode_message({"op": "health"})
        )
        ops = [message["op"] for message in read_messages(stream)]
        assert ops == ["ping", "health"]


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("stdio") / "stdio.oip")
    outer = long_lived_mixture(
        120, 0.3, Interval(1, 8_000), seed=81, name="outer"
    )
    inner = long_lived_mixture(
        120, 0.3, Interval(1, 8_000), seed=82, name="inner"
    )
    save_index(path, outer, inner)
    return path


class TestStdio:
    def test_session_with_shutdown(self, snapshot):
        service = JoinService(snapshot)
        service.start()
        stdin = io.BytesIO(
            encode_message({"op": "ping", "id": 1})
            + b"not json\n"
            + encode_message({"op": "join", "id": 2})
            + encode_message({"op": "shutdown", "id": 3})
            + encode_message({"op": "ping", "id": 4})  # after shutdown
        )
        stdout = io.BytesIO()
        handled = serve_stdio(service, stdin, stdout)
        assert handled == 3  # the trailing ping was never read
        lines = stdout.getvalue().splitlines()
        responses = [json.loads(line) for line in lines]
        assert responses[0] == {"id": 1, "ok": True, "pong": True}
        assert responses[1]["ok"] is False
        assert responses[1]["error"]["code"] == "bad_request"
        assert responses[2]["id"] == 2 and responses[2]["pairs"] > 0
        assert responses[3] == {"id": 3, "ok": True, "stopping": True}
        assert service.status == "stopped"

    def test_eof_ends_session_without_drain(self, snapshot):
        service = JoinService(snapshot)
        service.start()
        stdout = io.BytesIO()
        handled = serve_stdio(
            service, io.BytesIO(encode_message({"op": "ping"})), stdout
        )
        assert handled == 1
        assert service.status == "serving"
        service.drain(timeout_s=2.0)
