"""Tests for the B+-tree substrate."""

import random

import pytest

from repro.btree import BPlusTree
from repro.storage.metrics import CostCounters


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert tree.height == 1

    def test_insert_and_search(self):
        tree = BPlusTree()
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]
        assert tree.search(6) == []

    def test_duplicates_accumulate_in_order(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.search(5) == ["a", "b"]
        assert len(tree) == 2

    def test_order_below_three_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_composite_tuple_keys(self):
        """The RIT indexes (fork, endpoint) composite keys."""
        tree = BPlusTree(order=4)
        tree.insert((2, 10), "a")
        tree.insert((2, 5), "b")
        tree.insert((1, 99), "c")
        assert tree.search((2, 5)) == ["b"]
        assert [v for _, v in tree.items()] == ["c", "b", "a"]


class TestBulkBehaviour:
    @pytest.mark.parametrize("order", [3, 4, 8, 32])
    def test_sorted_iteration(self, order):
        rng = random.Random(order)
        keys = [rng.randint(0, 10_000) for _ in range(500)]
        tree = BPlusTree(order=order)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == sorted(keys)

    @pytest.mark.parametrize("order", [3, 4, 8, 32])
    def test_invariants_after_many_inserts(self, order):
        rng = random.Random(order + 100)
        tree = BPlusTree(order=order)
        for _ in range(400):
            tree.insert(rng.randint(0, 999), None)
            tree.check_invariants()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for key in range(1000):
            tree.insert(key, key)
        # Order-4 tree: height <= log_2(1000) + slack.
        assert tree.height <= 12

    def test_ascending_and_descending_inserts(self):
        for keys in (range(200), range(200, 0, -1)):
            tree = BPlusTree(order=5)
            for key in keys:
                tree.insert(key, key)
            tree.check_invariants()
            assert [k for k, _ in tree.items()] == sorted(keys)


class TestRangeScan:
    def _populated(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(key, f"v{key}")
        return tree

    def test_inclusive_range(self):
        tree = self._populated()
        keys = [k for k, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self):
        tree = self._populated()
        keys = [
            k
            for k, _ in tree.range_scan(
                10, 20, include_low=False, include_high=False
            )
        ]
        assert keys == [12, 14, 16, 18]

    def test_range_with_no_matches(self):
        tree = self._populated()
        assert list(tree.range_scan(101, 200)) == []

    def test_range_covering_everything(self):
        tree = self._populated()
        assert len(list(tree.range_scan(-10, 1000))) == 50

    def test_bounds_between_keys(self):
        tree = self._populated()
        keys = [k for k, _ in tree.range_scan(9, 13)]
        assert keys == [10, 12]

    def test_duplicates_in_range(self):
        tree = BPlusTree(order=4)
        for _ in range(3):
            tree.insert(7, "x")
        assert len(list(tree.range_scan(7, 7))) == 3

    def test_matches_sorted_filter_oracle(self):
        rng = random.Random(42)
        keys = [rng.randint(0, 500) for _ in range(300)]
        tree = BPlusTree(order=6)
        for key in keys:
            tree.insert(key, key)
        for _ in range(20):
            low = rng.randint(0, 500)
            high = rng.randint(low, 500)
            scanned = [k for k, _ in tree.range_scan(low, high)]
            expected = sorted(k for k in keys if low <= k <= high)
            assert scanned == expected


class TestCostCharging:
    def test_search_charges_node_accesses(self):
        counters = CostCounters()
        tree = BPlusTree(order=4, counters=counters)
        for key in range(100):
            tree.insert(key, key)
        counters.reset()
        tree.search(50)
        assert counters.partition_accesses >= tree.height
        assert counters.cpu_comparisons > 0

    def test_range_scan_charges_leaf_walk(self):
        counters = CostCounters()
        tree = BPlusTree(order=4, counters=counters)
        for key in range(100):
            tree.insert(key, key)
        counters.reset()
        list(tree.range_scan(0, 99))
        # Walking all leaves costs at least one access per leaf chain hop.
        assert counters.partition_accesses > tree.height
