"""Tests for blocks and block runs."""

import pytest

from repro.core.relation import TemporalTuple
from repro.storage.block import Block, BlockRun


class TestBlock:
    def test_append_until_full(self):
        block = Block(0, capacity=2)
        block.append(TemporalTuple(1, 2))
        assert not block.is_full
        block.append(TemporalTuple(3, 4))
        assert block.is_full
        assert block.free_slots == 0

    def test_overflow_rejected(self):
        block = Block(0, capacity=1)
        block.append(TemporalTuple(1, 2))
        with pytest.raises(OverflowError):
            block.append(TemporalTuple(3, 4))

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Block(0, capacity=0)

    def test_iteration_in_insertion_order(self):
        block = Block(0, capacity=3)
        for index in range(3):
            block.append(TemporalTuple(index, index, index))
        assert [t.payload for t in block] == [0, 1, 2]


class TestBlockRun:
    def test_empty_run(self):
        run = BlockRun()
        assert len(run) == 0
        assert run.tuple_count == 0
        assert not run.has_open_block
        with pytest.raises(IndexError):
            _ = run.last_block

    def test_tuple_count_across_blocks(self):
        run = BlockRun()
        for block_id in range(3):
            block = Block(block_id, capacity=2)
            block.append(TemporalTuple(0, 0))
            run.add_block(block)
        assert run.tuple_count == 3
        assert run.block_ids == [0, 1, 2]

    def test_has_open_block(self):
        run = BlockRun()
        block = Block(0, capacity=2)
        block.append(TemporalTuple(0, 0))
        run.add_block(block)
        assert run.has_open_block
        block.append(TemporalTuple(1, 1))
        assert not run.has_open_block

    def test_iter_tuples_flattens(self):
        run = BlockRun()
        block_a = Block(0, capacity=1)
        block_a.append(TemporalTuple(0, 0, "a"))
        block_b = Block(1, capacity=1)
        block_b.append(TemporalTuple(1, 1, "b"))
        run.add_block(block_a)
        run.add_block(block_b)
        assert [t.payload for t in run.iter_tuples()] == ["a", "b"]
