"""Tests for the deterministic fault-injection substrate."""

import pytest

from repro.storage.faults import (
    FAULT_PROFILES,
    CorruptBlockError,
    FaultInjector,
    FaultKind,
    FaultPolicy,
    ReadRetriesExceededError,
    StorageFaultError,
    fault_profile,
    perform_read,
)
from repro.storage.metrics import CostCounters, ResilienceCounters


class TestFaultPolicy:
    def test_default_policy_is_fault_free(self):
        policy = FaultPolicy()
        assert not policy.injects_faults
        assert all(
            policy.decide(block_id, attempt) is FaultKind.OK
            for block_id in range(50)
            for attempt in range(4)
        )

    def test_decisions_are_deterministic(self):
        policy = FaultPolicy(seed=3, transient_probability=0.2)
        again = FaultPolicy(seed=3, transient_probability=0.2)
        decisions = [policy.decide(b, a) for b in range(200) for a in range(3)]
        assert decisions == [
            again.decide(b, a) for b in range(200) for a in range(3)
        ]

    def test_different_seeds_differ(self):
        one = FaultPolicy(seed=1, transient_probability=0.2)
        two = FaultPolicy(seed=2, transient_probability=0.2)
        assert [one.decide(b, 0) for b in range(300)] != [
            two.decide(b, 0) for b in range(300)
        ]

    def test_probability_roughly_honoured(self):
        policy = FaultPolicy(seed=0, transient_probability=0.25)
        faults = sum(
            policy.decide(b, 0) is FaultKind.TRANSIENT for b in range(2000)
        )
        assert 0.18 < faults / 2000 < 0.32

    def test_transient_schedule_pins_attempts(self):
        policy = FaultPolicy(transient_schedule={7: 2})
        assert policy.decide(7, 0) is FaultKind.TRANSIENT
        assert policy.decide(7, 1) is FaultKind.TRANSIENT
        assert policy.decide(7, 2) is FaultKind.OK
        assert policy.decide(8, 0) is FaultKind.OK

    def test_corrupt_schedule_pins_attempts(self):
        policy = FaultPolicy(corrupt_schedule={3: 1})
        assert policy.decide(3, 0) is FaultKind.CORRUPT
        assert policy.decide(3, 1) is FaultKind.OK

    def test_permanent_block_never_recovers(self):
        policy = FaultPolicy(permanent_blocks={5})
        assert all(
            policy.decide(5, attempt) is FaultKind.TRANSIENT
            for attempt in range(20)
        )

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="transient_probability"):
            FaultPolicy(transient_probability=1.5)
        with pytest.raises(ValueError, match="corrupt_probability"):
            FaultPolicy(corrupt_probability=-0.1)

    def test_schedule_validation(self):
        with pytest.raises(ValueError, match="transient_schedule"):
            FaultPolicy(transient_schedule={1: -1})

    def test_injector_is_stateless(self):
        policy = FaultPolicy(seed=9, corrupt_probability=0.3)
        first, second = FaultInjector(policy), FaultInjector(policy)
        for block_id in range(100):
            assert first.decide(block_id, 0) == second.decide(block_id, 0)


class TestFaultProfiles:
    def test_none_profile_is_none(self):
        assert fault_profile("none") is None
        assert fault_profile("off") is None

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            fault_profile("tornado")

    @pytest.mark.parametrize("name", sorted(FAULT_PROFILES))
    def test_named_profiles_inject(self, name):
        policy = fault_profile(name, seed=4)
        assert policy is not None
        assert policy.injects_faults
        assert policy.seed == 4


class TestPerformRead:
    def test_fault_free_sequential_classification(self):
        counters = CostCounters()
        last = None
        for block_id in (0, 1, 2, 9):
            last = perform_read(block_id, counters, last)
        assert counters.sequential_reads == 2  # 1 and 2 follow the chain
        assert counters.random_reads == 2  # 0 (first) and 9 (jump)

    def test_retries_charged_random(self):
        counters = CostCounters()
        resilience = ResilienceCounters()
        injector = FaultInjector(FaultPolicy(transient_schedule={1: 2}))
        new_last = perform_read(
            1, counters, 0, injector=injector, resilience=resilience
        )
        assert new_last == 1
        # Attempt 0 follows block 0 (sequential); both retries are random.
        assert counters.sequential_reads == 1
        assert counters.random_reads == 2
        assert resilience.transient_faults == 2
        assert resilience.retries == 2
        assert resilience.backoff_units == 2 ** 0 + 2 ** 1

    def test_retry_budget_exhaustion_raises_structured_error(self):
        injector = FaultInjector(FaultPolicy(permanent_blocks={4}))
        resilience = ResilienceCounters()
        with pytest.raises(ReadRetriesExceededError) as excinfo:
            perform_read(
                4,
                CostCounters(),
                None,
                injector=injector,
                resilience=resilience,
                max_retries=2,
                context=("inner partition", (3, 5)),
            )
        error = excinfo.value
        assert error.block_id == 4
        assert error.attempts == 3
        assert error.context == ("inner partition", (3, 5))
        assert "block 4" in str(error)
        assert "inner partition" in str(error)
        assert isinstance(error, StorageFaultError)

    def test_persistent_corruption_raises_corrupt_error(self):
        injector = FaultInjector(FaultPolicy(corrupt_schedule={2: 10}))
        with pytest.raises(CorruptBlockError) as excinfo:
            perform_read(
                2, CostCounters(), None, injector=injector, max_retries=1
            )
        assert excinfo.value.block_id == 2
        assert excinfo.value.attempts == 2

    def test_verify_failure_counts_as_corruption(self):
        resilience = ResilienceCounters()
        with pytest.raises(CorruptBlockError):
            perform_read(
                0,
                CostCounters(),
                None,
                resilience=resilience,
                max_retries=1,
                verify=lambda: False,
            )
        assert resilience.corruptions_detected == 2
        assert resilience.checksum_verifications == 2

    def test_latency_spike_succeeds_but_is_recorded(self):
        resilience = ResilienceCounters()
        injector = FaultInjector(FaultPolicy(seed=0, latency_probability=1.0))
        counters = CostCounters()
        assert perform_read(
            3, counters, None, injector=injector, resilience=resilience
        ) == 3
        assert resilience.latency_spikes == 1
        assert resilience.retries == 0
        assert counters.block_reads == 1

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            perform_read(0, CostCounters(), None, max_retries=-1)

    def test_zero_retries_allows_clean_read(self):
        assert perform_read(0, CostCounters(), None, max_retries=0) == 0
