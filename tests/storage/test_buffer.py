"""Tests for the buffer pool and replacement policies."""

import pytest

from repro.storage.buffer import (
    BufferPool,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    UnboundedBufferPool,
)
from repro.storage.metrics import CostCounters


class TestBufferPoolBasics:
    def test_first_read_is_a_miss(self):
        pool = BufferPool(4)
        counters = CostCounters()
        pool.read(1, counters)
        assert counters.block_reads == 1
        assert counters.buffer_hits == 0

    def test_repeated_read_is_a_hit(self):
        pool = BufferPool(4)
        counters = CostCounters()
        pool.read(1, counters)
        pool.read(1, counters)
        assert counters.block_reads == 1
        assert counters.buffer_hits == 1

    def test_hits_plus_misses_equal_requests(self):
        pool = BufferPool(3)
        counters = CostCounters()
        requests = [1, 2, 3, 1, 4, 2, 2, 5, 1]
        for block_id in requests:
            pool.read(block_id, counters)
        assert counters.block_reads + counters.buffer_hits == len(requests)

    def test_capacity_never_exceeded(self):
        pool = BufferPool(3)
        counters = CostCounters()
        for block_id in range(50):
            pool.read(block_id, counters)
            assert pool.resident_count <= 3

    def test_sequential_detection(self):
        pool = BufferPool(10)
        counters = CostCounters()
        for block_id in (5, 6, 7):
            pool.read(block_id, counters)
        pool.read(20, counters)
        assert counters.sequential_reads == 2  # 6 and 7 follow 5 and 6
        assert counters.random_reads == 2  # 5 (first) and 20 (jump)

    def test_read_run(self):
        pool = BufferPool(10)
        counters = CostCounters()
        pool.read_run([1, 2, 3], counters)
        assert counters.block_reads == 3

    def test_clear_empties_pool(self):
        pool = BufferPool(4)
        counters = CostCounters()
        pool.read(1, counters)
        pool.clear()
        assert 1 not in pool
        pool.read(1, counters)
        assert counters.block_reads == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestLRUEviction:
    def test_least_recent_evicted(self):
        pool = BufferPool(2, policy=LRUPolicy())
        counters = CostCounters()
        pool.read(1, counters)
        pool.read(2, counters)
        pool.read(1, counters)  # refresh 1
        pool.read(3, counters)  # evicts 2
        assert 1 in pool
        assert 2 not in pool
        assert 3 in pool

    def test_access_refreshes_residency(self):
        pool = BufferPool(2, policy=LRUPolicy())
        counters = CostCounters()
        pool.read(1, counters)
        pool.read(2, counters)
        pool.read(3, counters)  # evicts 1 (least recent)
        assert 1 not in pool
        assert 2 in pool


class TestFIFOEviction:
    def test_first_in_evicted_despite_access(self):
        pool = BufferPool(2, policy=FIFOPolicy())
        counters = CostCounters()
        pool.read(1, counters)
        pool.read(2, counters)
        pool.read(1, counters)  # access does NOT refresh under FIFO
        pool.read(3, counters)  # evicts 1
        assert 1 not in pool
        assert 2 in pool


class TestClockEviction:
    def test_second_chance(self):
        pool = BufferPool(2, policy=ClockPolicy())
        counters = CostCounters()
        pool.read(1, counters)
        pool.read(2, counters)
        pool.read(1, counters)  # sets reference bit of 1
        pool.read(3, counters)  # clock skips 1 (bit set), evicts 2
        assert 1 in pool
        assert 2 not in pool

    def test_all_referenced_falls_back_to_round_robin(self):
        pool = BufferPool(2, policy=ClockPolicy())
        counters = CostCounters()
        pool.read(1, counters)
        pool.read(2, counters)
        pool.read(1, counters)
        pool.read(2, counters)
        pool.read(3, counters)  # both referenced: clears bits, evicts 1
        assert pool.resident_count == 2
        assert 3 in pool


class TestUnboundedPool:
    def test_never_evicts(self):
        pool = UnboundedBufferPool()
        counters = CostCounters()
        for block_id in range(1000):
            pool.read(block_id, counters)
        assert pool.resident_count == 1000
        pool.read(0, counters)
        assert counters.buffer_hits == 1

    def test_models_warm_cache(self):
        """Second full scan is free (the 64-GB server of Figure 11(c))."""
        pool = UnboundedBufferPool()
        counters = CostCounters()
        pool.read_run(range(100), counters)
        first_scan = counters.block_reads
        pool.read_run(range(100), counters)
        assert counters.block_reads == first_scan
