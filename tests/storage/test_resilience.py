"""Tests for checksum verification, retry recovery and buffer-pool
corruption handling in the storage manager."""

import pytest

from repro.core.relation import TemporalTuple
from repro.storage.block import Block, tuple_checksum
from repro.storage.buffer import BufferPool, UnboundedBufferPool
from repro.storage.faults import (
    CorruptBlockError,
    FaultInjector,
    FaultPolicy,
    ReadRetriesExceededError,
)
from repro.storage.manager import StorageManager
from repro.storage.metrics import CostCounters, ResilienceCounters


def tuples(count, offset=0):
    return [TemporalTuple(offset + i, offset + i, i) for i in range(count)]


def make_manager(**kwargs):
    counters = CostCounters()
    resilience = ResilienceCounters()
    manager = StorageManager(
        counters=counters, resilience=resilience, **kwargs
    )
    return manager, counters, resilience


class TestBlockChecksums:
    def test_checksum_follows_appends(self):
        block = Block(0, 4)
        assert block.checksum == 0
        block.append(TemporalTuple(1, 5, "a"))
        first = block.checksum
        block.append(TemporalTuple(2, 9, "b"))
        assert block.checksum != first
        assert block.verify()

    def test_checksum_is_content_defined(self):
        one, two = Block(0, 4), Block(7, 4)
        for tup in tuples(3):
            one.append(tup)
            two.append(tup)
        assert one.checksum == two.checksum == one.compute_checksum()

    def test_tamper_breaks_verification(self):
        block = Block(0, 4)
        for tup in tuples(3):
            block.append(tup)
        block.tamper(1, TemporalTuple(100, 200, "evil"))
        assert not block.verify()

    def test_delivery_corruption_cleared_by_refresh(self):
        block = Block(0, 4)
        block.append(TemporalTuple(1, 2))
        block.mark_corrupted()
        assert not block.verify()
        block.refresh_from_device()
        assert block.verify()

    def test_media_corruption_survives_refresh(self):
        block = Block(0, 4)
        block.append(TemporalTuple(1, 2))
        block.mark_corrupted(permanent=True)
        block.refresh_from_device()
        assert not block.verify()

    def test_tuple_checksum_depends_on_payload(self):
        assert tuple_checksum(TemporalTuple(1, 2, "x")) != tuple_checksum(
            TemporalTuple(1, 2, "y")
        )


class TestManagerVerification:
    def test_clean_reads_verify_and_pass(self):
        manager, counters, resilience = make_manager()
        run = manager.store_tuples(tuples(30))
        assert list(manager.read_run(run)) == list(run.iter_tuples())
        assert resilience.checksum_verifications == len(run)
        assert resilience.corruptions_detected == 0

    def test_delivery_corruption_recovered_by_reread(self):
        manager, counters, resilience = make_manager()
        run = manager.store_tuples(tuples(14))
        run.blocks[0].mark_corrupted()
        manager.read_block(0, block=run.blocks[0])
        assert run.blocks[0].verify()
        assert resilience.corruptions_detected == 0  # refresh precedes verify
        assert counters.block_reads == 1

    def test_media_corruption_raises_structured_error(self):
        manager, counters, resilience = make_manager(max_retries=2)
        run = manager.store_tuples(tuples(14))
        run.blocks[0].mark_corrupted(permanent=True)
        with pytest.raises(CorruptBlockError) as excinfo:
            manager.read_block(0, block=run.blocks[0], context="partition (0, 1)")
        assert excinfo.value.block_id == 0
        assert excinfo.value.attempts == 3
        assert "partition (0, 1)" in str(excinfo.value)
        assert resilience.corruptions_detected == 3
        assert resilience.retries == 2

    def test_verification_can_be_disabled(self):
        manager, counters, resilience = make_manager(verify_checksums=False)
        run = manager.store_tuples(tuples(14))
        run.blocks[0].mark_corrupted(permanent=True)
        manager.read_block(0, block=run.blocks[0])  # no error: not verified
        assert resilience.checksum_verifications == 0

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            StorageManager(max_retries=-1)


class TestLastReadClassification:
    """Satellite: failed reads must not poison the sequential/random
    classification of the next successful read."""

    def test_failed_read_leaves_chain_at_last_success(self):
        injector = FaultInjector(FaultPolicy(permanent_blocks={1}))
        manager, counters, resilience = make_manager(
            fault_injector=injector, max_retries=1
        )
        manager.store_tuples(tuples(42))  # blocks 0..2
        manager.read_block(0)
        with pytest.raises(ReadRetriesExceededError):
            manager.read_block(1)
        assert manager._last_read_id == 0  # unchanged by the failure

    def test_next_read_classified_against_last_successful(self):
        injector = FaultInjector(FaultPolicy(permanent_blocks={5}))
        manager, counters, resilience = make_manager(
            fault_injector=injector, max_retries=0
        )
        manager.store_tuples(tuples(140))  # blocks 0..9
        manager.read_block(0)
        with pytest.raises(ReadRetriesExceededError):
            manager.read_block(5)
        # Block 1 follows the last *successful* read (0): sequential.
        counters_before = counters.sequential_reads
        manager.read_block(1)
        assert counters.sequential_reads == counters_before + 1

    def test_retried_read_still_advances_chain_on_success(self):
        injector = FaultInjector(FaultPolicy(transient_schedule={1: 1}))
        manager, counters, resilience = make_manager(fault_injector=injector)
        manager.store_tuples(tuples(42))
        manager.read_block(0)
        manager.read_block(1)  # one transient fault, then success
        sequential_before = counters.sequential_reads
        manager.read_block(2)  # follows 1: sequential
        assert counters.sequential_reads == sequential_before + 1
        assert resilience.retries == 1


class TestBufferPoolCorruption:
    """Satellite: a corrupted cached block is evicted and re-fetched,
    never served stale."""

    def test_corrupted_pool_hit_is_invalidated_and_refetched(self):
        pool = BufferPool(8)
        manager, counters, resilience = make_manager(buffer_pool=pool)
        run = manager.store_tuples(tuples(14))
        block = run.blocks[0]
        manager.read_block(0, block=block)  # device read, admitted
        assert 0 in pool
        block.mark_corrupted()  # cached copy goes bad
        reads_before = counters.block_reads
        manager.read_block(0, block=block)
        assert counters.block_reads == reads_before + 1  # not a hit
        assert resilience.pool_invalidations == 1
        assert resilience.corruptions_detected == 1
        assert block.verify()  # re-fetch delivered a clean copy
        assert 0 in pool  # re-admitted after the device read

    def test_clean_pool_hit_verified_but_not_charged(self):
        pool = BufferPool(8)
        manager, counters, resilience = make_manager(buffer_pool=pool)
        run = manager.store_tuples(tuples(14))
        manager.read_block(0, block=run.blocks[0])
        reads_before = counters.block_reads
        manager.read_block(0, block=run.blocks[0])
        assert counters.block_reads == reads_before  # buffer hit
        assert counters.buffer_hits == 1
        assert resilience.checksum_verifications == 2

    def test_permanently_corrupt_block_fails_even_through_pool(self):
        pool = BufferPool(8)
        manager, counters, resilience = make_manager(
            buffer_pool=pool, max_retries=1
        )
        run = manager.store_tuples(tuples(14))
        block = run.blocks[0]
        manager.read_block(0, block=block)
        block.mark_corrupted(permanent=True)
        with pytest.raises(CorruptBlockError):
            manager.read_block(0, block=block)
        assert 0 not in pool  # never re-admitted

    def test_unbounded_pool_supports_invalidation(self):
        pool = UnboundedBufferPool()
        manager, counters, resilience = make_manager(buffer_pool=pool)
        run = manager.store_tuples(tuples(14))
        block = run.blocks[0]
        manager.read_block(0, block=block)
        block.mark_corrupted()
        manager.read_block(0, block=block)
        assert resilience.pool_invalidations == 1
        assert block.verify()


class TestFaultInjectionThroughManager:
    def test_transient_faults_recovered_transparently(self):
        injector = FaultInjector(
            FaultPolicy(seed=2, transient_probability=0.3)
        )
        manager, counters, resilience = make_manager(fault_injector=injector)
        run = manager.store_tuples(tuples(420))
        assert list(manager.read_run(run)) == list(run.iter_tuples())
        assert resilience.transient_faults > 0
        assert resilience.retries == resilience.transient_faults
        assert (
            counters.block_reads
            == len(run) + resilience.retries
        )

    def test_same_seed_same_resilience_counters(self):
        def chaos_run():
            injector = FaultInjector(
                FaultPolicy(seed=5, transient_probability=0.1,
                            corrupt_probability=0.05)
            )
            manager, counters, resilience = make_manager(
                fault_injector=injector
            )
            run = manager.store_tuples(tuples(140))
            list(manager.read_run(run))
            return resilience.snapshot(), counters.snapshot()

        assert chaos_run() == chaos_run()
