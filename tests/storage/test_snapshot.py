"""Snapshot round-trip and recovery properties.

The acceptance property of the persistence layer: a join over a loaded
snapshot is *bit-identical* to a join that rebuilt the index in memory
— same pairs, same cost counters, same resilience counters — across
workloads and k regimes.  And every injected crash point during a save
leaves the path in a state that either fscks clean or degrades to a
rebuild with, again, identical results.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.relation import TemporalRelation
from repro.storage import (
    SimulatedCrashError,
    SnapshotError,
    StorageManager,
    WriteFaultPolicy,
    fsck_index,
    load_index,
    read_statistics,
    save_index,
)
from repro.storage.snapshot import relation_endpoint_digest, tmp_path
from repro.workloads import (
    long_lived_mixture,
    point_relation,
    uniform_relation,
)

WORKLOADS = {
    "mixture": lambda seed: long_lived_mixture(
        400, 0.3, Interval(1, 30_000), seed=seed
    ),
    "uniform": lambda seed: uniform_relation(
        400, Interval(1, 30_000), 0.01, seed=seed
    ),
    "points": lambda seed: point_relation(
        400, Interval(1, 30_000), seed=seed
    ),
}

K_REGIMES = {
    "derived": {},
    "pinned": {"k": 7},
    "per_side": {"k_outer": 5, "k_inner": 11},
}


def assert_identical(result, baseline):
    assert result.pairs == baseline.pairs
    assert result.counters.snapshot() == baseline.counters.snapshot()
    assert result.resilience.snapshot() == baseline.resilience.snapshot()


class TestRoundTrip:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("regime", sorted(K_REGIMES))
    def test_loaded_join_bit_identical(self, tmp_path_factory, workload, regime):
        outer = WORKLOADS[workload](1)
        inner = WORKLOADS[workload](2)
        path = str(
            tmp_path_factory.mktemp("snap") / f"{workload}-{regime}.oip"
        )
        kwargs = K_REGIMES[regime]
        save_index(path, outer, inner, **kwargs)
        baseline = OIPJoin(**kwargs).join(outer, inner)
        loaded = OIPJoin(index_path=path, **kwargs).join(outer, inner)
        assert loaded.details["index"]["loaded"] is True
        assert_identical(loaded, baseline)
        base_details = dict(baseline.details)
        load_details = dict(loaded.details)
        load_details.pop("index")
        assert load_details == base_details

    def test_load_restores_same_tuple_objects(self, tmp_path):
        outer = WORKLOADS["mixture"](3)
        inner = WORKLOADS["mixture"](4)
        path = str(tmp_path / "same.oip")
        save_index(path, outer, inner)
        loaded = load_index(path, outer, inner, storage=StorageManager())
        restored = {
            id(tup)
            for node in loaded.outer_list.iter_nodes()
            for tup in node.run.iter_tuples()
        }
        assert restored <= {id(tup) for tup in outer.tuples}
        for node in loaded.outer_list.iter_nodes():
            for block in node.run.blocks:
                assert block.verify()

    def test_generation_increments(self, tmp_path):
        outer = WORKLOADS["uniform"](5)
        inner = WORKLOADS["uniform"](6)
        path = str(tmp_path / "gen.oip")
        assert save_index(path, outer, inner)["generation"] == 0
        assert save_index(path, outer, inner)["generation"] == 1
        assert read_statistics(path)["meta"]["generation"] == 1

    def test_read_statistics_matches_relations(self, tmp_path):
        outer = WORKLOADS["mixture"](7)
        inner = WORKLOADS["uniform"](8)
        path = str(tmp_path / "stats.oip")
        save_index(path, outer, inner)
        stats = read_statistics(path)["stats"]
        for side, relation in (("outer", outer), ("inner", inner)):
            assert stats[side]["cardinality"] == relation.cardinality
            assert (
                stats[side]["duration_fraction"]
                == relation.duration_fraction
            )

    def test_empty_relation_rejected(self, tmp_path):
        outer = WORKLOADS["uniform"](9)
        with pytest.raises(ValueError):
            save_index(
                str(tmp_path / "empty.oip"),
                outer,
                TemporalRelation.from_pairs([]),
            )


class TestDegradeReasons:
    def test_missing(self, tmp_path):
        with pytest.raises(SnapshotError) as excinfo:
            load_index(
                str(tmp_path / "nope.oip"),
                WORKLOADS["uniform"](1),
                WORKLOADS["uniform"](2),
                storage=StorageManager(),
            )
        assert excinfo.value.reason == "missing"

    def test_fingerprint_mismatch(self, tmp_path):
        outer = WORKLOADS["mixture"](1)
        inner = WORKLOADS["mixture"](2)
        path = str(tmp_path / "fp.oip")
        save_index(path, outer, inner)
        other = WORKLOADS["mixture"](3)
        with pytest.raises(SnapshotError) as excinfo:
            load_index(path, other, inner, storage=StorageManager())
        assert excinfo.value.reason == "fingerprint_mismatch"

    def test_config_mismatch(self, tmp_path):
        outer = WORKLOADS["mixture"](1)
        inner = WORKLOADS["mixture"](2)
        path = str(tmp_path / "cfg.oip")
        save_index(path, outer, inner, k=4)
        with pytest.raises(SnapshotError) as excinfo:
            load_index(
                path,
                outer,
                inner,
                storage=StorageManager(),
                expected={"k_mode": "fixed", "k": 9},
            )
        assert excinfo.value.reason == "config_mismatch"

    def test_no_payloads_still_loads_but_blocks_maintenance(self, tmp_path):
        from repro.storage import MaintainedIndex

        outer = WORKLOADS["mixture"](1)
        inner = WORKLOADS["mixture"](2)
        path = str(tmp_path / "nopay.oip")
        save_index(path, outer, inner, store_payloads=False)
        # Loading works: positions index into the caller's relations,
        # so the stored payloads are only needed by maintenance.
        loaded = load_index(path, outer, inner, storage=StorageManager())
        assert loaded.meta["payloads_stored"] is False
        with pytest.raises(SnapshotError) as excinfo:
            MaintainedIndex.open(path)
        assert excinfo.value.reason == "no_payloads"

    def test_truncated(self, tmp_path):
        outer = WORKLOADS["uniform"](1)
        inner = WORKLOADS["uniform"](2)
        path = str(tmp_path / "trunc.oip")
        save_index(path, outer, inner)
        os.truncate(path, os.path.getsize(path) // 2)
        with pytest.raises(SnapshotError) as excinfo:
            load_index(path, outer, inner, storage=StorageManager())
        assert excinfo.value.reason in ("truncated", "section_crc")

    def test_degrade_leaves_results_identical(self, tmp_path):
        outer = WORKLOADS["mixture"](1)
        inner = WORKLOADS["mixture"](2)
        path = str(tmp_path / "deg.oip")
        save_index(path, outer, inner)
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        baseline = OIPJoin().join(outer, inner)
        degraded = OIPJoin(index_path=path).join(outer, inner)
        assert degraded.details["index"]["loaded"] is False
        assert_identical(degraded, baseline)


class TestCrashSweep:
    """Every injected crash point either fscks clean or degrades —
    never a wrong answer, never an unrecoverable path."""

    @pytest.fixture(scope="class")
    def relations(self):
        return WORKLOADS["mixture"](21), WORKLOADS["mixture"](22)

    @pytest.fixture(scope="class")
    def baseline(self, relations):
        outer, inner = relations
        return OIPJoin().join(outer, inner)

    def sweep_offsets(self, path, relations):
        save_index(path, *relations)
        size = os.path.getsize(path)
        os.unlink(path)
        # Crash points spread across the blob, including the header,
        # the section table and both ends.
        return [0, 1, 16, 97, size // 3, size // 2, size - 1], size

    @pytest.mark.parametrize(
        "kind", ["torn_write_at", "drop_fsync", "bitflip_at"]
    )
    def test_every_crash_point_recovers(
        self, tmp_path, relations, baseline, kind
    ):
        outer, inner = relations
        path = str(tmp_path / f"{kind}.oip")
        offsets, _size = self.sweep_offsets(path, (outer, inner))
        for offset in offsets:
            if kind == "drop_fsync":
                # The torn offset of a lost fsync comes from the
                # policy's seeded draw, not from a pinned offset.
                policy = WriteFaultPolicy(drop_fsync=True, at_commit=0)
            elif kind == "torn_write_at":
                policy = WriteFaultPolicy(torn_write_at=offset, at_commit=0)
            else:
                policy = WriteFaultPolicy(bitflip_at=offset, at_commit=0)
            try:
                save_index(path, outer, inner, write_faults=policy)
                crashed = False
            except SimulatedCrashError:
                crashed = True
            if kind != "bitflip_at":
                assert crashed
            verdict = fsck_index(path)
            if verdict["loadable"]:
                result = OIPJoin(index_path=path).join(outer, inner)
                assert result.details["index"]["loaded"] is True
            else:
                # fsck already removed stale tmp litter.
                assert not os.path.exists(tmp_path_for(path))
                result = OIPJoin(index_path=path).join(outer, inner)
                assert result.details["index"]["loaded"] is False
            assert_identical(result, baseline)
            if os.path.exists(path):
                os.unlink(path)
            if kind == "drop_fsync":
                break  # offset comes from the seeded draw; one case

    def test_failed_rename_leaves_old_snapshot(self, tmp_path, relations, baseline):
        outer, inner = relations
        path = str(tmp_path / "rename.oip")
        save_index(path, outer, inner)
        with pytest.raises(SimulatedCrashError):
            save_index(
                path,
                outer,
                inner,
                write_faults=WriteFaultPolicy(fail_rename=True, at_commit=0),
            )
        # The previous generation survives untouched; fsck removes the
        # orphaned temp file.
        assert os.path.exists(tmp_path_for(path))
        verdict = fsck_index(path)
        assert verdict["loadable"] and "removed_tmp" in verdict["repairs"]
        result = OIPJoin(index_path=path).join(outer, inner)
        assert result.details["index"]["loaded"] is True
        assert_identical(result, baseline)


def tmp_path_for(path):
    return tmp_path(path)


class TestCacheInvalidation:
    def test_cache_purged_on_index_load(self, tmp_path):
        outer = WORKLOADS["mixture"](31)
        inner = WORKLOADS["mixture"](32)
        path = str(tmp_path / "cache.oip")
        save_index(path, outer, inner)
        join = OIPJoin(index_path=path, kernel="sweep")
        first = join.join(outer, inner)
        assert first.details["kernel_cache"]["invalidations"] == 0
        second = join.join(outer, inner)
        # The reload purged every cached decode; stale entries are
        # never served and the purge is visible in the counter.
        assert (
            second.details["kernel_cache"]["invalidations"]
            == first.details["kernel_cache"]["entries"]
        )
        assert second.pairs == first.pairs

    def test_invalidate_all_counts(self):
        from repro.core.kernels import DecodedRunCache

        cache = DecodedRunCache(capacity=8)
        cache.put(("a", 0), ((), (), ()))
        cache.put(("b", 0), ((), (), ()))
        assert cache.invalidate_all() == 2
        assert cache.invalidations == 2
        assert cache.get(("a", 0)) is None


# ----------------------------------------------------------------------
# Property-based round trips over random relations.
# ----------------------------------------------------------------------


@st.composite
def relation_pairs(draw):
    span = Interval(1, 5_000)

    def one(side):
        records = []
        for index in range(draw(st.integers(1, 40))):
            start = draw(st.integers(span.start, span.end))
            end = draw(st.integers(start, span.end))
            records.append((start, end, f"{side}{index}"))
        return TemporalRelation.from_records(records, name=side)

    return one("r"), one("s")


@given(relation_pairs(), st.integers(1, 12))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_property_round_trip(tmp_path_factory, pair, k):
    outer, inner = pair
    path = str(tmp_path_factory.mktemp("prop") / "prop.oip")
    save_index(path, outer, inner, k=k)
    baseline = OIPJoin(k=k).join(outer, inner)
    loaded = OIPJoin(index_path=path, k=k).join(outer, inner)
    assert loaded.details["index"]["loaded"] is True
    assert_identical(loaded, baseline)
    assert (
        read_statistics(path)["meta"]["config_outer"]["k"]
        == baseline.details["k"]
    )


@given(relation_pairs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_property_endpoint_digest_stable(tmp_path_factory, pair):
    outer, _ = pair
    clone = TemporalRelation.from_records(
        [(t.start, t.end, t.payload) for t in outer.tuples], name="r"
    )
    assert relation_endpoint_digest(outer) == relation_endpoint_digest(clone)
