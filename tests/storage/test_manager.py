"""Tests for the storage manager."""

from repro.core.relation import TemporalTuple
from repro.storage.buffer import BufferPool
from repro.storage.device import DeviceProfile
from repro.storage.manager import StorageManager
from repro.storage.metrics import CostCounters


def tuples(count):
    return [TemporalTuple(i, i, i) for i in range(count)]


class TestAllocation:
    def test_blocks_allocated_on_demand(self):
        manager = StorageManager()
        run = manager.new_run()
        assert manager.allocated_blocks == 0
        manager.append(run, TemporalTuple(0, 0))
        assert manager.allocated_blocks == 1

    def test_block_filled_before_new_allocation(self):
        manager = StorageManager()  # b = 14
        run = manager.store_tuples(tuples(14))
        assert len(run) == 1
        manager.append(run, TemporalTuple(99, 99))
        assert len(run) == 2

    def test_sequential_ids_within_one_pass(self):
        manager = StorageManager()
        run = manager.store_tuples(tuples(30))
        assert run.block_ids == [0, 1, 2]

    def test_interleaved_runs_get_interleaved_ids(self):
        manager = StorageManager()
        run_a = manager.new_run()
        run_b = manager.new_run()
        manager.append(run_a, TemporalTuple(0, 0))
        manager.append(run_b, TemporalTuple(1, 1))
        assert run_a.block_ids == [0]
        assert run_b.block_ids == [1]

    def test_writes_charged(self):
        counters = CostCounters()
        manager = StorageManager(counters=counters)
        manager.store_tuples(tuples(30))
        assert counters.block_writes == 3

    def test_writes_not_charged_when_disabled(self):
        counters = CostCounters()
        manager = StorageManager(counters=counters, charge_writes=False)
        manager.store_tuples(tuples(30))
        assert counters.block_writes == 0

    def test_device_capacity_respected(self):
        manager = StorageManager(device=DeviceProfile.disk())
        run = manager.store_tuples(tuples(117))
        assert len(run) == 1


class TestReading:
    def test_read_run_yields_all_tuples(self):
        manager = StorageManager()
        run = manager.store_tuples(tuples(20))
        assert len(list(manager.read_run(run))) == 20

    def test_read_charges_per_block(self):
        counters = CostCounters()
        manager = StorageManager(counters=counters)
        run = manager.store_tuples(tuples(30))
        list(manager.read_run(run))
        assert counters.block_reads == 3

    def test_sequential_read_detection(self):
        counters = CostCounters()
        manager = StorageManager(counters=counters)
        run = manager.store_tuples(tuples(30))
        list(manager.read_run(run))
        # First block is a jump, the remaining two are sequential.
        assert counters.sequential_reads == 2
        assert counters.random_reads == 1

    def test_rereading_same_run_is_random_then_repeat(self):
        counters = CostCounters()
        manager = StorageManager(counters=counters)
        run = manager.store_tuples(tuples(30))
        list(manager.read_run(run))
        list(manager.read_run(run))
        assert counters.block_reads == 6

    def test_buffer_pool_routes_reads(self):
        counters = CostCounters()
        pool = BufferPool(100)
        manager = StorageManager(counters=counters, buffer_pool=pool)
        run = manager.store_tuples(tuples(30))
        list(manager.read_run(run))
        list(manager.read_run(run))
        assert counters.block_reads == 3
        assert counters.buffer_hits == 3

    def test_read_runs_concatenates(self):
        manager = StorageManager()
        run_a = manager.store_tuples(tuples(5))
        run_b = manager.store_tuples(tuples(5))
        assert len(list(manager.read_runs([run_a, run_b]))) == 10


class TestHelpers:
    def test_blocks_for(self):
        manager = StorageManager()
        assert manager.blocks_for(0) == 0
        assert manager.blocks_for(15) == 2

    def test_run_block_ids(self):
        manager = StorageManager()
        run_a = manager.store_tuples(tuples(15))
        run_b = manager.store_tuples(tuples(1))
        assert manager.run_block_ids([run_a, run_b]) == [0, 1, 2]
