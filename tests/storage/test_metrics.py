"""Tests for cost counters and cost weights."""

import pytest

from repro.storage.metrics import CostCounters, CostWeights


class TestCostWeights:
    def test_paper_main_memory_values(self):
        weights = CostWeights.main_memory()
        assert weights.cpu == 0.5
        assert weights.io == 10.0

    def test_disk_ratio(self):
        weights = CostWeights.disk()
        assert weights.io / weights.cpu == pytest.approx(200.0)

    def test_from_ratio(self):
        weights = CostWeights.from_ratio(0.01)
        assert weights.ratio == pytest.approx(0.01)

    def test_ratio_with_zero_io(self):
        assert CostWeights(cpu=1.0, io=0.0).ratio == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(cpu=-0.1, io=1.0)
        with pytest.raises(ValueError):
            CostWeights.from_ratio(-1.0)

    def test_zero_costs_allowed(self):
        """Section 6.2 explicitly allows c_io >= 0 and c_cpu >= 0."""
        CostWeights(cpu=0.0, io=0.0)


class TestCostCounters:
    def test_initial_state_zero(self):
        counters = CostCounters()
        assert counters.cpu_comparisons == 0
        assert counters.total_ios == 0
        assert counters.false_hit_ratio() == 0.0

    def test_charging(self):
        counters = CostCounters()
        counters.charge_cpu(3)
        counters.charge_read(2)
        counters.charge_write()
        counters.charge_false_hit()
        counters.charge_partition_access(4)
        counters.charge_result(5)
        assert counters.cpu_comparisons == 3
        assert counters.block_reads == 2
        assert counters.block_writes == 1
        assert counters.total_ios == 3
        assert counters.false_hits == 1
        assert counters.partition_accesses == 4
        assert counters.result_tuples == 5

    def test_sequential_random_split(self):
        counters = CostCounters()
        counters.charge_read(sequential=True)
        counters.charge_read(sequential=False)
        counters.charge_read(sequential=False)
        assert counters.sequential_reads == 1
        assert counters.random_reads == 2
        assert counters.block_reads == 3

    def test_false_hit_ratio(self):
        counters = CostCounters()
        counters.charge_result(3)
        counters.charge_false_hit(1)
        assert counters.false_hit_ratio() == pytest.approx(0.25)
        assert counters.fetched_tuples == 4

    def test_modelled_cost(self):
        counters = CostCounters()
        counters.charge_cpu(10)
        counters.charge_read(2)
        weights = CostWeights(cpu=1.0, io=5.0)
        assert counters.modelled_cost(weights) == pytest.approx(20.0)

    def test_extras(self):
        counters = CostCounters()
        counters.charge_extra("migrations", 2)
        counters.charge_extra("migrations")
        assert counters.extras["migrations"] == 3
        assert counters.snapshot()["extra.migrations"] == 3

    def test_extras_namespaced_cannot_shadow_builtins(self):
        """An extra named like a built-in counter must not overwrite the
        built-in's value in the snapshot (regression: extras used to be
        merged un-namespaced)."""
        counters = CostCounters()
        counters.charge_read(2)
        counters.charge_extra("block_reads", 99)
        snap = counters.snapshot()
        assert snap["block_reads"] == 2
        assert snap["extra.block_reads"] == 99

    def test_merged_with(self):
        a = CostCounters()
        a.charge_cpu(1)
        a.charge_extra("duplicates", 2)
        b = CostCounters()
        b.charge_cpu(4)
        b.charge_read()
        b.charge_extra("duplicates", 1)
        b.charge_extra("migrations", 7)
        merged = a.merged_with(b)
        assert merged.cpu_comparisons == 5
        assert merged.block_reads == 1
        assert merged.extras == {"duplicates": 3, "migrations": 7}
        # Sources unchanged.
        assert a.cpu_comparisons == 1

    def test_reset(self):
        counters = CostCounters()
        counters.charge_cpu(5)
        counters.charge_extra("x", 1)
        counters.reset()
        assert counters.cpu_comparisons == 0
        assert counters.extras == {}

    def test_merge_then_reset_sources_independent(self):
        """Merging with non-empty extras on both sides must deep-copy the
        extras: resetting either source afterwards leaves the merged set
        (and the other source) untouched."""
        a = CostCounters()
        a.charge_extra("duplicates", 2)
        a.charge_extra("migrations", 1)
        b = CostCounters()
        b.charge_extra("duplicates", 5)
        b.charge_extra("probes", 4)
        merged = a.merged_with(b)
        assert merged.extras == {
            "duplicates": 7,
            "migrations": 1,
            "probes": 4,
        }
        a.reset()
        b.reset()
        assert merged.extras == {
            "duplicates": 7,
            "migrations": 1,
            "probes": 4,
        }
        assert a.extras == {} and b.extras == {}
        snap = merged.snapshot()
        assert snap["extra.duplicates"] == 7
        assert snap["extra.probes"] == 4

    def test_buffer_hits_not_ios(self):
        counters = CostCounters()
        counters.charge_buffer_hit(3)
        assert counters.total_ios == 0
        assert counters.buffer_hits == 3

    def test_snapshot_keys(self):
        snap = CostCounters().snapshot()
        for key in (
            "cpu_comparisons",
            "block_reads",
            "false_hits",
            "partition_accesses",
            "result_tuples",
        ):
            assert key in snap
