"""Maintenance-journal and maintained-index behaviour.

The journal is the write-ahead half of incremental maintenance: every
insert/delete is CRC-framed and fsynced *before* it is applied, so a
crash replays acknowledged deltas and loses at most the record being
written.  Compaction folds the deltas into a fresh snapshot generation
and resets the journal — the snapshot commit is the linearization
point.
"""

import os

import pytest

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.storage import (
    MaintainedIndex,
    MaintenanceJournal,
    SimulatedCrashError,
    WriteFaultPolicy,
    fsck_index,
    save_index,
)
from repro.storage.snapshot import journal_path
from repro.workloads import long_lived_mixture


@pytest.fixture
def snapshot(tmp_path):
    outer = long_lived_mixture(120, 0.3, Interval(1, 8_000), seed=41)
    inner = long_lived_mixture(120, 0.3, Interval(1, 8_000), seed=42)
    path = str(tmp_path / "maint.oip")
    save_index(path, outer, inner)
    return path, outer, inner


class TestJournal:
    def test_append_scan_round_trip(self, tmp_path):
        journal = MaintenanceJournal(str(tmp_path / "j.journal"))
        journal.reset(3)
        records = [
            {"op": "insert", "side": "outer", "start": 1, "end": 5,
             "payload": "a"},
            {"op": "delete", "side": "inner", "start": 2, "end": 2,
             "payload": None},
        ]
        for record in records:
            journal.append(record)
        state = journal.scan()
        assert state.header_ok and not state.torn
        assert state.generation == 3
        assert state.records == records

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        journal = MaintenanceJournal(str(tmp_path / "j.journal"))
        journal.reset(0)
        journal.append({"op": "insert", "side": "outer", "start": 1,
                        "end": 2, "payload": None})
        with open(journal.path, "ab") as handle:
            handle.write(b"\x07garbage-partial-frame")
        state = journal.scan()
        assert state.torn and len(state.records) == 1
        journal.truncate_tail(state.good_length)
        clean = journal.scan()
        assert not clean.torn and clean.records == state.records

    def test_corrupt_header_not_trusted(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = MaintenanceJournal(path)
        journal.reset(0)
        with open(path, "r+b") as handle:
            handle.write(b"XXXX")
        assert journal.scan().header_ok is False


class TestMaintainedIndex:
    def test_insert_delete_replay(self, snapshot):
        path, outer, inner = snapshot
        index = MaintainedIndex.open(path)
        base_cardinality = index.cardinality("outer")
        index.insert("outer", 10, 500, "new-a")
        index.insert("inner", 20, 20, "new-b")
        assert index.delete("outer", 10, 500, "new-a") is True
        assert index.delete("outer", 10, 500, "new-a") is False
        assert index.pending == 3
        index.check_invariants()
        # A reopened index replays the journal to the same state.
        replayed = MaintainedIndex.open(path)
        assert replayed.pending == 3
        assert replayed.cardinality("outer") == base_cardinality
        assert replayed.cardinality("inner") == index.cardinality("inner")
        replayed.check_invariants()

    def test_compact_folds_and_resets(self, snapshot):
        path, outer, inner = snapshot
        index = MaintainedIndex.open(path)
        index.insert("outer", 10, 500, "compact-me")
        info = index.compact()
        assert info["generation"] == 1
        assert index.pending == 0
        reopened = MaintainedIndex.open(path)
        assert reopened.generation == 1
        assert reopened.pending == 0
        # The folded tuple is join-visible through the new snapshot.
        new_outer, new_inner = reopened.relations()
        result = OIPJoin(index_path=path).join(new_outer, new_inner)
        assert result.details["index"]["loaded"] is True
        assert result.details["index"]["generation"] == 1
        rebuilt = OIPJoin().join(new_outer, new_inner)
        assert result.pairs == rebuilt.pairs
        assert result.counters.snapshot() == rebuilt.counters.snapshot()

    def test_stale_journal_reset_on_open(self, snapshot):
        path, outer, inner = snapshot
        journal = MaintenanceJournal.for_index(path)
        journal.reset(99)  # generation disagrees with the snapshot's 0
        journal.append({"op": "insert", "side": "outer", "start": 1,
                        "end": 2, "payload": None})
        index = MaintainedIndex.open(path)
        # The stale record was discarded, not replayed.
        assert index.pending == 0
        assert journal.scan().generation == 0

    def test_crash_during_append_leaves_replayable_prefix(self, snapshot):
        path, outer, inner = snapshot
        index = MaintainedIndex.open(path)
        index.insert("outer", 10, 400, "kept")
        crashing = MaintenanceJournal.for_index(
            path,
            write_faults=WriteFaultPolicy(torn_write_at=2, at_commit=0),
        )
        with pytest.raises(SimulatedCrashError):
            crashing.append({"op": "insert", "side": "outer", "start": 5,
                             "end": 6, "payload": "lost"})
        verdict = fsck_index(path)
        assert "journal_torn_tail" in verdict["problems"]
        assert "truncated_journal_tail" in verdict["repairs"]
        assert verdict["ok"]
        replayed = MaintainedIndex.open(path)
        assert replayed.pending == 1  # "kept" survived, "lost" did not
        replayed.check_invariants()

    def test_journal_file_lives_next_to_snapshot(self, snapshot):
        path, _, _ = snapshot
        index = MaintainedIndex.open(path)
        index.insert("outer", 10, 400, "x")
        assert os.path.exists(journal_path(path))
        assert journal_path(path) == path + ".journal"


class TestJournalReplayErrors:
    """Satellite contract: a journal record that cannot be replayed
    surfaces as a structured :class:`JournalReplayError` naming the
    record index and its byte offset — not a bare KeyError buried in a
    traceback."""

    def test_unreplayable_record_names_index_and_offset(self, snapshot):
        from repro.storage import JournalReplayError

        path, _, _ = snapshot
        index = MaintainedIndex.open(path)
        index.insert("outer", 3, 9, "ok")  # record 0: replayable
        journal = MaintenanceJournal(journal_path(path))
        # Record 1: frame-valid (CRC and JSON intact) but semantically
        # unknown — exactly what a version skew would produce.
        journal.append({"op": "frobnicate", "side": "outer", "start": 1,
                        "end": 2, "payload": None})
        state = journal.scan()
        assert len(state.records) == len(state.offsets) == 2
        with pytest.raises(JournalReplayError) as excinfo:
            MaintainedIndex.open(path)
        error = excinfo.value
        assert error.reason == "journal_replay"
        assert error.record_index == 1
        assert error.offset == state.offsets[1]
        assert error.path == journal.path
        assert "record 1" in str(error)
        assert str(state.offsets[1]) in str(error)

    def test_missing_field_is_also_structured(self, snapshot):
        from repro.storage import JournalReplayError

        path, _, _ = snapshot
        MaintainedIndex.open(path).insert("inner", 4, 5, "x")
        journal = MaintenanceJournal(journal_path(path))
        journal.append({"op": "insert", "start": 1, "end": 2})  # no side
        with pytest.raises(JournalReplayError) as excinfo:
            MaintainedIndex.open(path)
        assert excinfo.value.record_index == 1

    def test_scan_offsets_track_frame_starts(self, tmp_path):
        from repro.storage.snapshot import _JOURNAL_HEADER

        journal = MaintenanceJournal(str(tmp_path / "offsets.journal"))
        journal.reset(0)
        for position in range(3):
            journal.append({"op": "insert", "side": "outer",
                            "start": position, "end": position + 1,
                            "payload": "p" * position})
        state = journal.scan()
        assert len(state.offsets) == 3
        assert state.offsets[0] == _JOURNAL_HEADER.size
        assert state.offsets == sorted(set(state.offsets))
