"""Tests for storage device profiles."""

import pytest

from repro.storage.device import TUPLE_SIZE_BYTES, DeviceProfile


class TestProfiles:
    def test_paper_tuple_size(self):
        assert TUPLE_SIZE_BYTES == 35

    def test_main_memory_block_holds_14_tuples(self):
        """Paper setup: 512-byte blocks, 35-byte tuples -> b = 14."""
        assert DeviceProfile.main_memory().tuples_per_block == 14

    def test_disk_block_holds_117_tuples(self):
        assert DeviceProfile.disk().tuples_per_block == 4096 // 35

    def test_disk_has_seek_penalty(self):
        assert DeviceProfile.disk().seek_factor > 1.0
        assert DeviceProfile.main_memory().seek_factor == 1.0

    def test_block_smaller_than_tuple_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", block_size_bytes=10)

    def test_seek_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(
                name="bad", block_size_bytes=512, seek_factor=0.5
            )


class TestBlockMath:
    def test_blocks_for_tuples(self):
        device = DeviceProfile.main_memory()
        assert device.blocks_for_tuples(0) == 0
        assert device.blocks_for_tuples(1) == 1
        assert device.blocks_for_tuples(14) == 1
        assert device.blocks_for_tuples(15) == 2
        assert device.blocks_for_tuples(140) == 10

    def test_io_time_applies_seek_penalty(self):
        device = DeviceProfile.disk(seek_factor=10.0)
        sequential_only = device.io_time(100, 0)
        random_only = device.io_time(0, 100)
        assert random_only == pytest.approx(sequential_only * 10.0)
