"""Seeded N-thread contention hammers for the governor primitives.

The serving layer trusts two invariants under arbitrary interleaving:
admission slot accounting can never go negative or exceed its bounds,
and breaker state transitions stay legal with monotone observability
counters.  These tests hammer both with deterministic per-thread seeds
while sampler threads watch the live state for violations.
"""

import random
import threading

from repro.engine.governor import (
    AdmissionController,
    AdmissionRejectedError,
    CircuitBreaker,
)

THREADS = 12
ROUNDS = 40


class TestAdmissionContention:
    def _hammer(self, controller, seed, outcomes):
        rng = random.Random(seed)
        for _ in range(ROUNDS):
            try:
                with controller.admit(timeout=rng.choice([0.0, 0.005, 0.05])):
                    if rng.random() < 0.5:
                        threading.Event().wait(rng.random() * 0.002)
                outcomes["admitted"] += 1
            except AdmissionRejectedError as error:
                assert error.active >= 0
                assert error.queued >= 0
                outcomes["rejected"] += 1

    def test_slot_accounting_never_negative(self):
        controller = AdmissionController(max_active=3, max_queued=4)
        stop = threading.Event()
        violations = []

        def sampler():
            while not stop.is_set():
                active, queued = controller.active, controller.queued
                if not (0 <= active <= controller.max_active):
                    violations.append(("active", active))
                if not (0 <= queued <= controller.max_queued):
                    violations.append(("queued", queued))

        watch = threading.Thread(target=sampler, daemon=True)
        watch.start()
        per_thread = [
            {"admitted": 0, "rejected": 0} for _ in range(THREADS)
        ]
        threads = [
            threading.Thread(
                target=self._hammer,
                args=(controller, 1000 + index, per_thread[index]),
            )
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watch.join(2.0)
        assert violations == []
        stats = controller.stats
        admitted = sum(outcome["admitted"] for outcome in per_thread)
        rejected = sum(outcome["rejected"] for outcome in per_thread)
        # Conservation: every submission was either admitted or
        # rejected, every admitted query completed, and the pool
        # returned to empty.
        assert stats.submitted == THREADS * ROUNDS
        assert stats.submitted == stats.admitted + stats.rejected
        assert stats.admitted == stats.completed == admitted
        assert stats.rejected == rejected
        assert stats.timeouts <= stats.rejected
        assert controller.active == 0
        assert controller.queued == 0
        assert 1 <= stats.peak_active <= controller.max_active
        assert stats.peak_queued <= controller.max_queued

    def test_zero_queue_rejects_immediately_under_contention(self):
        controller = AdmissionController(max_active=1, max_queued=0)
        barrier = threading.Barrier(THREADS)

        def worker(seed):
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(ROUNDS):
                try:
                    with controller.admit(timeout=0.0):
                        threading.Event().wait(rng.random() * 0.001)
                except AdmissionRejectedError:
                    pass

        threads = [
            threading.Thread(target=worker, args=(2000 + index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = controller.stats
        assert stats.submitted == stats.admitted + stats.rejected
        assert stats.admitted == stats.completed
        assert stats.peak_queued == 0
        assert controller.active == 0


class TestBreakerContention:
    LEGAL = {
        CircuitBreaker.CLOSED,
        CircuitBreaker.OPEN,
        CircuitBreaker.HALF_OPEN,
    }

    def test_transitions_stay_legal_and_counters_monotone(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3)
        stop = threading.Event()
        violations = []
        observed = []

        def sampler():
            last_trips = last_denied = 0
            while not stop.is_set():
                snap = breaker.snapshot()
                if snap["state"] not in self.LEGAL:
                    violations.append(snap["state"])
                if snap["trips"] < last_trips or snap["denied"] < last_denied:
                    violations.append(("regressed", snap))
                last_trips, last_denied = snap["trips"], snap["denied"]
                observed.append(snap["state"])

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(ROUNDS * 5):
                roll = rng.random()
                if roll < 0.4:
                    breaker.allow_parallel()
                elif roll < 0.75:
                    breaker.record_failure()
                else:
                    breaker.record_success()

        watch = threading.Thread(target=sampler, daemon=True)
        watch.start()
        threads = [
            threading.Thread(target=worker, args=(3000 + index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watch.join(2.0)
        assert violations == []
        assert breaker.state in self.LEGAL
        assert breaker.trips >= 1  # the hammer certainly tripped it
        # The breaker must still work after the storm: a clean
        # success run closes it from any state.
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_cooldown_reaches_half_open_once(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        barrier = threading.Barrier(THREADS)
        allowed = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            verdict = breaker.allow_parallel()
            with lock:
                allowed.append(verdict)

        threads = [
            threading.Thread(target=worker) for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly the first `cooldown` calls were denied while open;
        # the rest saw half-open and were allowed through.
        assert allowed.count(False) == 5
        assert allowed.count(True) == THREADS - 5
        assert breaker.denied == 5
        assert breaker.state == CircuitBreaker.HALF_OPEN
