"""Tests for the query-lifecycle governor.

Covers the four governor pillars in isolation — budgets, cancellation,
checkpoint/resume plumbing, admission control and the circuit breaker —
plus their integration points: keyword-interaction validation on
:class:`~repro.core.join.OIPJoin`, fail-fast on exhausted budgets,
planner-level budget refusal and the breaker-driven sequential fallback.
The end-to-end cancel/resume differential lives in
``tests/chaos/test_lifecycle.py``.
"""

import json
import threading

import pytest

from repro.baselines.sort_merge import SortMergeJoin
from repro.core import cost_model_for, derive_k
from repro.core.base import join_pair_key
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.relation import TemporalRelation
from repro.engine.governor import (
    AdmissionController,
    AdmissionRejectedError,
    BudgetExceededError,
    CancellationToken,
    CheckpointMismatchError,
    CheckpointWriter,
    CircuitBreaker,
    QueryBudget,
    QueryCancelledError,
    QueryCheckpoint,
    make_fingerprint,
    relation_digest,
)
from repro.engine.parallel import WorkerFaultPlan
from repro.engine.planner import JoinPlanner
from repro.storage.buffer import BufferPool
from repro.storage.metrics import (
    CostCounters,
    CostWeights,
    ResilienceCounters,
)
from repro.workloads import long_lived_mixture


@pytest.fixture(scope="module")
def relations():
    outer = long_lived_mixture(
        200, 0.3, Interval(1, 12_000), seed=71, name="outer"
    )
    inner = long_lived_mixture(
        200, 0.3, Interval(1, 12_000), seed=72, name="inner"
    )
    return outer, inner


# ----------------------------------------------------------------------
# QueryBudget.
# ----------------------------------------------------------------------


class TestQueryBudget:
    @pytest.mark.parametrize(
        "field",
        ("deadline_ms", "max_comparisons", "max_block_reads", "max_cost"),
    )
    def test_negative_limits_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            QueryBudget(**{field: -1})

    def test_unbounded_by_default(self):
        assert not QueryBudget().bounded
        assert QueryBudget(max_comparisons=10).bounded
        assert QueryBudget(deadline_ms=5.0).bounded

    def test_preflight_flags_zero_limits(self):
        assert QueryBudget().preflight_violation() is None
        assert QueryBudget(max_comparisons=5).preflight_violation() is None
        assert QueryBudget(deadline_ms=0).preflight_violation() == "deadline"
        assert (
            QueryBudget(max_comparisons=0).preflight_violation()
            == "comparisons"
        )
        assert (
            QueryBudget(max_block_reads=0).preflight_violation()
            == "block-reads"
        )
        assert QueryBudget(max_cost=0).preflight_violation() == "cost"

    def test_violation_names_first_exceeded_limit(self):
        counters = CostCounters()
        counters.charge_cpu(100)
        budget = QueryBudget(max_comparisons=99)
        assert budget.violation(counters, elapsed_ms=0.0) == "comparisons"
        # Limits are strict: exactly at the limit is still within budget.
        assert (
            QueryBudget(max_comparisons=100).violation(counters, 0.0) is None
        )
        # Deadline is checked first and uses >= (a deadline of 10 ms is
        # over as soon as 10 ms elapsed).
        both = QueryBudget(deadline_ms=10.0, max_comparisons=1)
        assert both.violation(counters, elapsed_ms=10.0) == "deadline"
        assert both.violation(counters, elapsed_ms=9.0) == "comparisons"

    def test_cost_limit_priced_with_budget_weights(self):
        counters = CostCounters()
        counters.charge_cpu(10)
        heavy = CostWeights(cpu=100.0, io=1.0)
        budget = QueryBudget(max_cost=500.0, weights=heavy)
        assert budget.violation(counters, 0.0) == "cost"
        # The same counters fit easily under the default pricing.
        assert QueryBudget(max_cost=500.0).violation(counters, 0.0) is None

    def test_from_cost_units(self):
        budget = QueryBudget.from_cost_units(1234.5, deadline_ms=50.0)
        assert budget.max_cost == 1234.5
        assert budget.deadline_ms == 50.0

    def test_from_cost_model(self, relations):
        outer, inner = relations
        model = cost_model_for(outer, inner)
        k = derive_k(model).k
        budget = QueryBudget.from_cost_model(model, k, headroom=4.0)
        assert budget.max_cost == pytest.approx(4.0 * model.overhead_cost(k))
        assert budget.weights is model.weights
        with pytest.raises(ValueError, match="headroom"):
            QueryBudget.from_cost_model(model, k, headroom=0.0)


# ----------------------------------------------------------------------
# CancellationToken.
# ----------------------------------------------------------------------


class TestCancellationToken:
    def test_manual_cancel(self):
        token = CancellationToken()
        assert not token.cancelled
        assert not token.poll()
        token.cancel()
        assert token.cancelled
        assert token.poll()
        assert token.checks == 2

    def test_cancel_after_checks_is_deterministic(self):
        token = CancellationToken(cancel_after_checks=2)
        assert not token.poll()
        assert not token.poll()
        assert token.poll()  # third check crosses the threshold
        assert token.cancelled

    def test_cancel_after_zero_checks_stops_immediately(self):
        token = CancellationToken(cancel_after_checks=0)
        assert token.poll()

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="cancel_after_checks"):
            CancellationToken(cancel_after_checks=-1)

    def test_raise_if_cancelled(self):
        token = CancellationToken()
        token.raise_if_cancelled()  # armed but not cancelled: no-op
        token.cancel()
        with pytest.raises(QueryCancelledError) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.checks == 2

    def test_cancel_from_another_thread(self):
        token = CancellationToken()
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join()
        assert token.poll()


# ----------------------------------------------------------------------
# Fail fast on exhausted budgets.
# ----------------------------------------------------------------------


class TestFailFast:
    @pytest.mark.parametrize(
        "budget",
        (
            QueryBudget(max_comparisons=0),
            QueryBudget(max_block_reads=0),
            QueryBudget(max_cost=0),
            QueryBudget(deadline_ms=0),
        ),
    )
    def test_exhausted_budget_does_no_partition_work(
        self, relations, budget
    ):
        outer, inner = relations
        with pytest.raises(BudgetExceededError) as excinfo:
            OIPJoin(budget=budget).join(outer, inner)
        error = excinfo.value
        assert "exhausted at launch" in str(error)
        assert error.partitions_completed == 0
        # Preflight fires before k derivation and partitioning: the
        # partial counters show zero work of any kind.
        assert all(v == 0 for v in error.counters.snapshot().values())
        assert error.checkpoint_path is None


# ----------------------------------------------------------------------
# Keyword-interaction validation (OIPJoin constructor).
# ----------------------------------------------------------------------


class TestKeywordValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"parallelism": 1, "parallel_chunk_timeout": 0.5},
            {"parallelism": 1, "parallel_chunk_retries": 3},
            {"parallelism": 1, "parallel_fault_plan": WorkerFaultPlan()},
            {"parallel_chunk_size": 4},
            {"parallel_chunk_timeout": 0.5},
            {"parallel_chunk_retries": 1},
        ),
    )
    def test_pooled_only_keywords_need_a_pool(self, kwargs):
        with pytest.raises(ValueError, match="parallel"):
            OIPJoin(**kwargs)

    def test_rejection_names_the_offending_keywords(self):
        with pytest.raises(ValueError, match="parallel_chunk_timeout"):
            OIPJoin(parallelism=1, parallel_chunk_timeout=1.0)

    def test_valid_combinations_construct(self):
        OIPJoin(parallelism=1, parallel_chunk_size=4)  # inline chunks: ok
        OIPJoin(
            parallelism=2,
            parallel_chunk_size=4,
            parallel_chunk_timeout=5.0,
            parallel_chunk_retries=1,
            parallel_fault_plan=WorkerFaultPlan(),
        )

    def test_checkpoint_every_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            OIPJoin(checkpoint_every=4)
        with pytest.raises(ValueError, match="checkpoint_every"):
            OIPJoin(checkpoint_path="x.json", checkpoint_every=0)

    def test_buffer_pool_excludes_checkpoint_and_resume(self):
        pool = BufferPool(capacity_blocks=8)
        with pytest.raises(ValueError, match="buffer pool"):
            OIPJoin(buffer_pool=pool, checkpoint_path="x.json")
        with pytest.raises(ValueError, match="buffer pool"):
            OIPJoin(buffer_pool=pool, resume_from="x.json")


# ----------------------------------------------------------------------
# Checkpoints.
# ----------------------------------------------------------------------


def _checkpoint(fingerprint=None, completed=4, count=10):
    return QueryCheckpoint(
        fingerprint=fingerprint or {"algorithm": "oip", "k_outer": 3},
        partitions_completed=completed,
        partition_count=count,
        counters={"cpu_comparisons": 17, "block_reads": 5},
        resilience={"faults_observed": 0},
        pairs=[(0, 1), (2, 0)],
    )


class TestQueryCheckpoint:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        original = _checkpoint()
        assert original.write(path) == path
        loaded = QueryCheckpoint.load(path)
        assert loaded == original

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        payload = {"version": 99, "fingerprint": {}, "pairs": []}
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointMismatchError, match="version"):
            QueryCheckpoint.load(str(path))

    def test_validate_rejects_foreign_fingerprint(self):
        checkpoint = _checkpoint({"algorithm": "oip", "k_outer": 3})
        with pytest.raises(CheckpointMismatchError, match="k_outer"):
            checkpoint.validate({"algorithm": "oip", "k_outer": 5}, 10)

    def test_validate_rejects_partition_count_drift(self):
        checkpoint = _checkpoint()
        with pytest.raises(CheckpointMismatchError, match="partitions"):
            checkpoint.validate(checkpoint.fingerprint, 11)

    def test_validate_rejects_out_of_range_progress(self):
        checkpoint = _checkpoint(completed=12, count=10)
        with pytest.raises(CheckpointMismatchError, match="out"):
            checkpoint.validate(checkpoint.fingerprint, 10)

    def test_relation_digest_is_order_sensitive(self):
        forward = TemporalRelation.from_records(
            [(1, 3, "a"), (5, 9, "b")], name="r"
        )
        reversed_ = TemporalRelation.from_records(
            [(5, 9, "b"), (1, 3, "a")], name="r"
        )
        assert relation_digest(forward) != relation_digest(reversed_)

    def test_resume_against_different_relation_rejected(
        self, relations, tmp_path
    ):
        outer, inner = relations
        path = str(tmp_path / "ck.json")
        token = CancellationToken(cancel_after_checks=3)
        part = OIPJoin(
            cancellation=token, checkpoint_path=path, checkpoint_every=1
        ).join(outer, inner)
        assert not part.completed
        other = long_lived_mixture(
            200, 0.3, Interval(1, 12_000), seed=99, name="inner"
        )
        with pytest.raises(CheckpointMismatchError, match="differs in"):
            OIPJoin(resume_from=path).join(outer, other)


class TestCheckpointWriter:
    def _writer(self, relations, tmp_path, every=2):
        outer, inner = relations
        return CheckpointWriter(
            path=str(tmp_path / "ck.json"),
            every=every,
            fingerprint=make_fingerprint("oip", 3, 3, outer, inner),
            partition_count=10,
            outer=outer,
            inner=inner,
        )

    def test_cadence(self, relations, tmp_path):
        writer = self._writer(relations, tmp_path, every=2)
        counters, resilience = CostCounters(), ResilienceCounters()
        written = [
            writer.maybe_write(done, counters, resilience, [])
            for done in range(1, 6)
        ]
        # Due at 2 and 4; never at 0 work, odd counts skipped.
        assert [path is not None for path in written] == [
            False, True, False, True, False,
        ]
        assert writer.writes == 2

    def test_force_overrides_cadence(self, relations, tmp_path):
        writer = self._writer(relations, tmp_path, every=100)
        counters, resilience = CostCounters(), ResilienceCounters()
        assert writer.maybe_write(0, counters, resilience, []) is None
        assert (
            writer.maybe_write(3, counters, resilience, [], force=True)
            is not None
        )
        loaded = QueryCheckpoint.load(writer.path)
        assert loaded.partitions_completed == 3

    def test_duplicate_boundary_not_rewritten(self, relations, tmp_path):
        writer = self._writer(relations, tmp_path, every=2)
        counters, resilience = CostCounters(), ResilienceCounters()
        assert writer.maybe_write(2, counters, resilience, []) is not None
        assert writer.maybe_write(2, counters, resilience, []) is None
        assert writer.writes == 1

    def test_interval_must_be_positive(self, relations):
        outer, inner = relations
        with pytest.raises(ValueError, match="interval"):
            CheckpointWriter(
                path="x.json",
                every=0,
                fingerprint={},
                partition_count=1,
                outer=outer,
                inner=inner,
            )


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_active"):
            AdmissionController(max_active=0)
        with pytest.raises(ValueError, match="max_queued"):
            AdmissionController(max_active=1, max_queued=-1)

    def test_rejects_when_saturated_and_queue_full(self):
        controller = AdmissionController(max_active=1, max_queued=0)
        with controller.admit():
            with pytest.raises(AdmissionRejectedError) as excinfo:
                with controller.admit():
                    pass  # pragma: no cover
            assert not excinfo.value.timed_out
        # Rejection is observable in the stats, not silent.
        stats = controller.stats
        assert stats.submitted == 2
        assert stats.admitted == 1
        assert stats.rejected == 1
        assert stats.completed == 1

    def test_queue_wait_timeout(self):
        controller = AdmissionController(max_active=1, max_queued=1)
        with controller.admit():
            with pytest.raises(AdmissionRejectedError) as excinfo:
                with controller.admit(timeout=0.01):
                    pass  # pragma: no cover
            assert excinfo.value.timed_out
        assert controller.stats.timeouts == 1

    def test_queued_query_admitted_after_release(self):
        controller = AdmissionController(max_active=1, max_queued=1)
        holding = threading.Event()
        release = threading.Event()
        outcome = {}

        def holder():
            with controller.admit():
                holding.set()
                release.wait(timeout=5.0)

        def waiter():
            holding.wait(timeout=5.0)
            with controller.admit(timeout=5.0):
                outcome["admitted"] = True

        threads = [
            threading.Thread(target=holder),
            threading.Thread(target=waiter),
        ]
        threads[0].start()
        holding.wait(timeout=5.0)
        threads[1].start()
        while controller.queued == 0 and threads[1].is_alive():
            pass  # the waiter is about to enqueue
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert outcome.get("admitted")
        assert controller.stats.admitted == 2
        assert controller.stats.peak_queued == 1

    def test_run_executes_joins_within_slot_limit(self, relations):
        outer, inner = relations
        controller = AdmissionController(max_active=2, max_queued=8)
        reference = OIPJoin().join(outer, inner)
        results = []
        lock = threading.Lock()

        def worker():
            result = controller.run(OIPJoin(), outer, inner, timeout=30.0)
            with lock:
                results.append(result)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(results) == 5
        assert all(
            r.pair_keys() == reference.pair_keys() for r in results
        )
        stats = controller.stats
        assert stats.completed == 5
        assert stats.peak_active <= 2
        assert controller.active == 0


# ----------------------------------------------------------------------
# Circuit breaker.
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0)

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cooldown_then_half_open_trial(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # Two joins are denied the pool; the denials advance the cooldown.
        assert not breaker.allow_parallel()
        assert not breaker.allow_parallel()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.denied == 2
        # The half-open trial is allowed through.
        assert breaker.allow_parallel()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow_parallel()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        assert breaker.snapshot() == {
            "state": "open",
            "trips": 1,
            "denied": 0,
        }


class TestBreakerIntegration:
    def test_degraded_runs_trip_the_breaker_to_sequential(self, relations):
        outer, inner = relations
        reference = OIPJoin().join(outer, inner)
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        # Chunk 0 fails more times than the retry budget allows: the
        # executor downgrades it, which the breaker records as a failure.
        degraded = OIPJoin(
            parallelism=2,
            parallel_chunk_retries=1,
            parallel_fault_plan=WorkerFaultPlan(fail_chunks={0: 99}),
            circuit_breaker=breaker,
        ).join(outer, inner)
        assert degraded.pair_keys() == reference.pair_keys()
        assert degraded.details["degraded_chunks"] >= 1
        assert degraded.details["breaker_state"] == CircuitBreaker.OPEN
        assert breaker.trips == 1
        # The next join is denied the pool and runs sequentially — the
        # fallback is recorded in the execution details.
        fallback = OIPJoin(
            parallelism=2, circuit_breaker=breaker
        ).join(outer, inner)
        assert fallback.pair_keys() == reference.pair_keys()
        assert fallback.details["parallel_fallback"] == "circuit_open"
        assert "probe_chunks" not in fallback.details
        # Cooldown spent: the half-open trial runs parallel again and,
        # healthy, closes the breaker.
        trial = OIPJoin(
            parallelism=2, circuit_breaker=breaker
        ).join(outer, inner)
        assert trial.pair_keys() == reference.pair_keys()
        assert trial.details["breaker_state"] == CircuitBreaker.CLOSED


# ----------------------------------------------------------------------
# Planner budget refusal.
# ----------------------------------------------------------------------


class TestPlannerBudget:
    def test_refuses_plan_whose_estimate_exceeds_budget(self, relations):
        outer, inner = relations
        with pytest.raises(BudgetExceededError, match="planner estimate"):
            JoinPlanner().plan(
                outer, inner, budget=QueryBudget(max_comparisons=10)
            )
        with pytest.raises(BudgetExceededError, match="block reads"):
            JoinPlanner().plan(
                outer, inner, budget=QueryBudget(max_block_reads=1)
            )

    def test_threads_budget_into_the_planned_join(self, relations):
        outer, inner = relations
        budget = QueryBudget(max_comparisons=10**12)
        plan = JoinPlanner().plan(outer, inner, budget=budget)
        assert plan.algorithm.budget is budget
        result = plan.execute(outer, inner)
        assert result.completed

    def test_join_shorthand_enforces_budget(self, relations):
        outer, inner = relations
        with pytest.raises(BudgetExceededError):
            JoinPlanner().join(
                outer, inner, budget=QueryBudget(max_cost=1.0)
            )


# ----------------------------------------------------------------------
# Cooperative cancellation through the algorithm layers.
# ----------------------------------------------------------------------


class TestCancellationIntegration:
    def test_oip_cancels_at_partition_boundary(self, relations):
        outer, inner = relations
        reference = OIPJoin().join(outer, inner)
        token = CancellationToken(cancel_after_checks=5)
        partial = OIPJoin(cancellation=token).join(outer, inner)
        assert not partial.completed
        assert partial.details["cancelled"] is True
        done = partial.details["partitions_completed"]
        assert 0 < done < partial.details["outer_partitions"]
        # The sequential loop is deterministic: a partial result is an
        # exact prefix of the uninterrupted pair stream (compare in
        # emission order — pair_keys() sorts).
        keys = [join_pair_key(pair) for pair in partial.pairs]
        reference_keys = [join_pair_key(pair) for pair in reference.pairs]
        assert keys == reference_keys[: len(keys)]

    def test_baseline_cancels_via_storage_polling(self, relations):
        outer, inner = relations
        reference = SortMergeJoin().join(outer, inner)
        token = CancellationToken(cancel_after_checks=10)
        partial = SortMergeJoin(cancellation=token).join(outer, inner)
        assert not partial.completed
        assert partial.details.get("cancelled") is True
        assert token.checks > 10
        assert set(partial.pair_keys()) <= set(reference.pair_keys())
        assert partial.cardinality < reference.cardinality

    def test_results_default_to_completed(self, relations):
        outer, inner = relations
        assert OIPJoin().join(outer, inner).completed
