"""Tests for resilient parallel execution: chunk retries, timeouts,
worker-crash recovery and graceful degradation to the sequential path.

Every scenario asserts the PR-1 contract survives the failure: the match
set, pair order and cost counters equal the healthy sequential run.
"""

import pytest

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.engine.parallel import (
    ExecutionReport,
    InjectedWorkerError,
    WorkerFaultPlan,
    build_probe_schedule,
    execute_schedule,
)
from repro.storage.faults import FaultPolicy, StorageFaultError
from repro.workloads import long_lived_mixture


@pytest.fixture(scope="module")
def relations():
    outer = long_lived_mixture(
        400, 0.3, Interval(1, 30_000), seed=11, name="outer"
    )
    inner = long_lived_mixture(
        400, 0.3, Interval(1, 30_000), seed=12, name="inner"
    )
    return outer, inner


@pytest.fixture(scope="module")
def sequential_result(relations):
    outer, inner = relations
    return OIPJoin().join(outer, inner)


def assert_identical(result, reference):
    assert result.pair_keys() == reference.pair_keys()
    assert result.counters.snapshot() == reference.counters.snapshot()


class TestChunkRetries:
    def test_failed_chunk_is_retried_and_result_identical(
        self, relations, sequential_result
    ):
        outer, inner = relations
        plan = WorkerFaultPlan(fail_chunks={0: 1, 2: 2})
        result = OIPJoin(
            parallelism=3, parallel_fault_plan=plan
        ).join(outer, inner)
        assert_identical(result, sequential_result)
        assert result.resilience.chunk_retries >= 3
        assert result.details.get("chunk_retries", 0) >= 3

    def test_exhausted_retries_degrade_to_inline(
        self, relations, sequential_result
    ):
        outer, inner = relations
        plan = WorkerFaultPlan(fail_chunks={0: 99})
        result = OIPJoin(
            parallelism=3,
            parallel_chunk_retries=1,
            parallel_fault_plan=plan,
        ).join(outer, inner)
        assert_identical(result, sequential_result)
        assert result.resilience.sequential_downgrades >= 1
        assert result.details.get("degraded_chunks", 0) >= 1

    def test_thread_crash_is_a_retryable_failure(
        self, relations, sequential_result
    ):
        outer, inner = relations
        plan = WorkerFaultPlan(crash_chunks=frozenset({1}))
        result = OIPJoin(
            parallelism=3, parallel_fault_plan=plan
        ).join(outer, inner)
        assert_identical(result, sequential_result)
        assert result.resilience.chunk_retries >= 1


class TestChunkTimeouts:
    def test_slow_chunk_times_out_and_completes_elsewhere(
        self, relations, sequential_result
    ):
        outer, inner = relations
        plan = WorkerFaultPlan(slow_chunks={0: 0.4})
        result = OIPJoin(
            parallelism=3,
            parallel_chunk_timeout=0.05,
            parallel_chunk_retries=0,
            parallel_fault_plan=plan,
        ).join(outer, inner)
        assert_identical(result, sequential_result)
        assert result.resilience.chunk_timeouts >= 1
        assert result.resilience.sequential_downgrades >= 1


class TestProcessPoolRecovery:
    def test_worker_crash_degrades_to_sequential(
        self, relations, sequential_result
    ):
        outer, inner = relations
        plan = WorkerFaultPlan(crash_chunks=frozenset({0}))
        result = OIPJoin(
            parallelism=2,
            parallel_backend="process",
            parallel_fault_plan=plan,
        ).join(outer, inner)
        assert_identical(result, sequential_result)
        assert result.resilience.worker_crashes >= 1
        assert result.resilience.sequential_downgrades >= 1
        assert result.details.get("degraded_chunks", 0) >= 1


class TestStorageFaultPropagation:
    def test_permanent_fault_not_retried_at_chunk_level(self, relations):
        outer, inner = relations
        policy = FaultPolicy(permanent_blocks=frozenset({0}))
        with pytest.raises(StorageFaultError) as excinfo:
            OIPJoin(parallelism=3, fault_policy=policy).join(outer, inner)
        assert excinfo.value.block_id == 0
        assert "partition" in str(excinfo.value)

    def test_transient_faults_identical_across_backends(
        self, relations, sequential_result
    ):
        outer, inner = relations
        policy = FaultPolicy(seed=21, transient_probability=0.1)
        seq = OIPJoin(fault_policy=policy).join(outer, inner)
        par = OIPJoin(fault_policy=policy, parallelism=4).join(outer, inner)
        # Pairs match the healthy run; counters match between the two
        # faulty runs (retried reads are charged, so they exceed the
        # healthy run's IO).
        assert seq.pair_keys() == sequential_result.pair_keys()
        assert_identical(par, seq)
        assert seq.resilience.retries > 0
        assert (
            seq.resilience.storage_snapshot()
            == par.resilience.storage_snapshot()
        )


class TestConfigurationValidation:
    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            OIPJoin(parallelism=2, parallel_chunk_timeout=0)
        with pytest.raises(ValueError, match="timeout"):
            OIPJoin(parallelism=2, parallel_chunk_timeout=-1.0)

    def test_negative_chunk_retries_rejected(self):
        with pytest.raises(ValueError, match="chunk retries"):
            OIPJoin(parallelism=2, parallel_chunk_retries=-1)

    def test_negative_read_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            OIPJoin(max_read_retries=-1)

    def test_executor_rejects_bad_timeout(self, relations):
        outer, inner = relations
        from repro.storage.metrics import CostCounters

        counters = CostCounters()
        with pytest.raises(ValueError, match="timeout"):
            execute_schedule(
                _tiny_schedule(outer, inner, counters),
                counters,
                [],
                workers=2,
                timeout=0,
            )
        with pytest.raises(ValueError, match="max_chunk_retries"):
            execute_schedule(
                _tiny_schedule(outer, inner, counters),
                counters,
                [],
                workers=2,
                max_chunk_retries=-1,
            )

    def test_injected_worker_error_is_runtime_error(self):
        assert issubclass(InjectedWorkerError, RuntimeError)

    def test_execution_report_degraded_flag(self):
        assert not ExecutionReport().degraded
        assert ExecutionReport(downgraded_chunks=1).degraded


def _tiny_schedule(outer, inner, counters):
    from repro.core.lazy_list import oip_create
    from repro.core.oip import OIPConfiguration
    from repro.storage.manager import StorageManager

    storage = StorageManager(counters=counters)
    outer_list = oip_create(outer, OIPConfiguration.for_relation(outer, 4), storage)
    inner_list = oip_create(inner, OIPConfiguration.for_relation(inner, 4), storage)
    return build_probe_schedule(outer_list, inner_list, 4, counters)
