"""Tests for temporal predicates and Allen's relations."""

import pytest

from repro.core.interval import Interval
from repro.core.relation import TemporalTuple
from repro.engine.predicates import (
    after,
    allen_relation,
    before,
    contains,
    during,
    equals,
    finished_by,
    finishes,
    meets,
    met_by,
    overlap_duration,
    overlap_interval,
    overlaps,
    overlaps_at_least,
    started_by,
    starts,
)


def t(start, end):
    return TemporalTuple(start, end)


class TestOverlapPredicates:
    def test_overlaps(self):
        assert overlaps(t(1, 5), t(5, 9))
        assert not overlaps(t(1, 4), t(5, 9))

    def test_overlap_interval(self):
        assert overlap_interval(t(1, 6), t(4, 9)) == Interval(4, 6)
        assert overlap_interval(t(1, 2), t(5, 6)) is None

    def test_overlap_duration(self):
        assert overlap_duration(t(1, 6), t(4, 9)) == 3
        assert overlap_duration(t(1, 2), t(5, 6)) == 0
        assert overlap_duration(t(3, 3), t(3, 3)) == 1

    def test_overlaps_at_least(self):
        """The paper's 'employed during at least 5 months' refinement."""
        five = overlaps_at_least(5)
        employee = t(1, 12)
        long_project = t(3, 8)  # 6 shared months
        short_project = t(10, 12)  # 3 shared months
        assert five(employee, long_project)
        assert not five(employee, short_project)

    def test_overlaps_at_least_rejects_non_positive(self):
        with pytest.raises(ValueError):
            overlaps_at_least(0)


class TestAllenRelations:
    def test_before_after(self):
        assert before(t(1, 3), t(5, 9))
        assert after(t(5, 9), t(1, 3))
        assert not before(t(1, 4), t(5, 9))  # meets, not before

    def test_meets_met_by(self):
        assert meets(t(1, 4), t(5, 9))
        assert met_by(t(5, 9), t(1, 4))

    def test_starts_started_by(self):
        assert starts(t(1, 3), t(1, 9))
        assert started_by(t(1, 9), t(1, 3))
        assert not starts(t(1, 9), t(1, 9))  # equals

    def test_finishes_finished_by(self):
        assert finishes(t(5, 9), t(1, 9))
        assert finished_by(t(1, 9), t(5, 9))

    def test_during_contains(self):
        assert during(t(3, 5), t(1, 9))
        assert contains(t(1, 9), t(3, 5))
        assert not during(t(1, 5), t(1, 9))  # starts

    def test_equals(self):
        assert equals(t(2, 7), t(2, 7))
        assert not equals(t(2, 7), t(2, 8))

    @pytest.mark.parametrize(
        "left,right,name",
        [
            ((1, 2), (5, 6), "before"),
            ((5, 6), (1, 2), "after"),
            ((1, 4), (5, 6), "meets"),
            ((5, 6), (1, 4), "met_by"),
            ((1, 5), (3, 9), "overlaps"),
            ((3, 9), (1, 5), "overlapped_by"),
            ((1, 3), (1, 9), "starts"),
            ((1, 9), (1, 3), "started_by"),
            ((5, 9), (1, 9), "finishes"),
            ((1, 9), (5, 9), "finished_by"),
            ((3, 5), (1, 9), "during"),
            ((1, 9), (3, 5), "contains"),
            ((2, 7), (2, 7), "equals"),
        ],
    )
    def test_allen_relation_names(self, left, right, name):
        assert allen_relation(t(*left), t(*right)) == name

    def test_exactly_one_relation_holds(self):
        """The thirteen relations partition all interval pairs."""
        for ls in range(5):
            for le in range(ls, 5):
                for rs in range(5):
                    for re in range(rs, 5):
                        name = allen_relation(t(ls, le), t(rs, re))
                        assert isinstance(name, str)
                        # Overlap predicates agree with the relation name.
                        disjoint = name in (
                            "before",
                            "after",
                            "meets",
                            "met_by",
                        )
                        assert overlaps(t(ls, le), t(rs, re)) != disjoint
