"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestJoinCommand:
    def test_default_join(self, capsys):
        assert main(["join", "--cardinality", "100"]) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "false_hits" in out

    def test_named_algorithm(self, capsys):
        assert main(["join", "--cardinality", "80", "--algorithm", "smj"]) == 0
        assert "smj:" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--algorithm", "nope", "--cardinality", "10"])

    @pytest.mark.parametrize(
        "workload", ["uniform", "mixture", "points", "clustered"]
    )
    def test_every_synthetic_workload(self, workload, capsys):
        assert (
            main(["join", "--workload", workload, "--cardinality", "60"])
            == 0
        )
        assert "result pairs" in capsys.readouterr().out

    def test_dataset_workload(self, capsys):
        assert (
            main(
                [
                    "join",
                    "--workload",
                    "incumbent",
                    "--cardinality",
                    "120",
                ]
            )
            == 0
        )
        assert "result pairs" in capsys.readouterr().out

    def test_workers_flag_runs_parallel_oip(self, capsys):
        assert (
            main(
                [
                    "join",
                    "--workload",
                    "mixture",
                    "--cardinality",
                    "150",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parallelism: 2" in out
        assert "probe_tasks" in out

    def test_workers_zero_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be >= 1"):
            main(["join", "--cardinality", "50", "--workers", "0"])

    def test_workers_rejected_for_other_algorithms(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "join",
                    "--cardinality",
                    "50",
                    "--algorithm",
                    "smj",
                    "--workers",
                    "2",
                ]
            )

    def test_deterministic_by_seed(self, capsys):
        main(["join", "--cardinality", "90", "--seed", "3"])
        first = capsys.readouterr().out
        main(["join", "--cardinality", "90", "--seed", "3"])
        second = capsys.readouterr().out
        # Counter lines must match exactly (runtime line differs).
        assert first.splitlines()[1:] == second.splitlines()[1:]


class TestCompareCommand:
    def test_compare_runs_and_agrees(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--cardinality",
                    "120",
                    "--algorithms",
                    "oip,smj,nlj",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "WARNING" not in out
        for name in ("oip", "smj", "nlj"):
            assert name in out

    def test_unknown_algorithm_in_list(self):
        with pytest.raises(SystemExit):
            main(["compare", "--algorithms", "oip,bogus"])


class TestDeriveKCommand:
    def test_example_8(self, capsys):
        assert (
            main(
                [
                    "derive-k",
                    "--outer",
                    "10000000",
                    "--inner",
                    "100000000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "converged: True" in out
        # The Example 8 fixed point (within implementation rounding).
        assert "k = 16," in out


class TestDatasetsCommand:
    def test_prints_all_standins(self, capsys):
        assert main(["datasets", "--cardinality", "300"]) == 0
        out = capsys.readouterr().out
        for name in ("incumbent", "feed", "webkit"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["join", "--cardinality", "5"])
        assert args.cardinality == 5
