"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestJoinCommand:
    def test_default_join(self, capsys):
        assert main(["join", "--cardinality", "100"]) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "false_hits" in out

    def test_named_algorithm(self, capsys):
        assert main(["join", "--cardinality", "80", "--algorithm", "smj"]) == 0
        assert "smj:" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--algorithm", "nope", "--cardinality", "10"])

    @pytest.mark.parametrize(
        "workload", ["uniform", "mixture", "points", "clustered"]
    )
    def test_every_synthetic_workload(self, workload, capsys):
        assert (
            main(["join", "--workload", workload, "--cardinality", "60"])
            == 0
        )
        assert "result pairs" in capsys.readouterr().out

    def test_dataset_workload(self, capsys):
        assert (
            main(
                [
                    "join",
                    "--workload",
                    "incumbent",
                    "--cardinality",
                    "120",
                ]
            )
            == 0
        )
        assert "result pairs" in capsys.readouterr().out

    def test_workers_flag_runs_parallel_oip(self, capsys):
        assert (
            main(
                [
                    "join",
                    "--workload",
                    "mixture",
                    "--cardinality",
                    "150",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parallelism: 2" in out
        assert "probe_tasks" in out

    def test_workers_zero_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be >= 1"):
            main(["join", "--cardinality", "50", "--workers", "0"])

    def test_workers_rejected_for_other_algorithms(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "join",
                    "--cardinality",
                    "50",
                    "--algorithm",
                    "smj",
                    "--workers",
                    "2",
                ]
            )

    def test_deterministic_by_seed(self, capsys):
        main(["join", "--cardinality", "90", "--seed", "3"])
        first = capsys.readouterr().out
        main(["join", "--cardinality", "90", "--seed", "3"])
        second = capsys.readouterr().out
        # Counter lines must match exactly (runtime line differs).
        assert first.splitlines()[1:] == second.splitlines()[1:]


class TestCompareCommand:
    def test_compare_runs_and_agrees(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--cardinality",
                    "120",
                    "--algorithms",
                    "oip,smj,nlj",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "WARNING" not in out
        for name in ("oip", "smj", "nlj"):
            assert name in out

    def test_unknown_algorithm_in_list(self):
        with pytest.raises(SystemExit):
            main(["compare", "--algorithms", "oip,bogus"])


class TestDeriveKCommand:
    def test_example_8(self, capsys):
        assert (
            main(
                [
                    "derive-k",
                    "--outer",
                    "10000000",
                    "--inner",
                    "100000000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "converged: True" in out
        # The Example 8 fixed point (within implementation rounding).
        assert "k = 16," in out


class TestDatasetsCommand:
    def test_prints_all_standins(self, capsys):
        assert main(["datasets", "--cardinality", "300"]) == 0
        out = capsys.readouterr().out
        for name in ("incumbent", "feed", "webkit"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["join", "--cardinality", "5"])
        assert args.cardinality == 5


class TestLifecycleFlags:
    """The governor's CLI surface: budgets, checkpoint/resume, and the
    SIGINT-to-cooperative-cancellation round trip."""

    JOIN = ["join", "--workload", "mixture", "--cardinality", "600"]

    def test_budget_exceeded_exits_75_with_partial_counters(self, capsys):
        code = main(self.JOIN + ["--max-comparisons", "2000"])
        assert code == 75
        out = capsys.readouterr().out
        assert "budget exceeded (comparisons)" in out
        assert "partial counters:" in out
        assert "cpu_comparisons" in out

    def test_exhausted_budget_fails_fast(self, capsys):
        assert main(self.JOIN + ["--max-comparisons", "0"]) == 75
        assert "exhausted at launch" in capsys.readouterr().out

    def test_generous_deadline_completes(self, capsys):
        assert main(self.JOIN + ["--deadline-ms", "60000"]) == 0
        assert "result pairs" in capsys.readouterr().out

    def test_negative_budget_rejected(self):
        with pytest.raises(SystemExit):
            main(self.JOIN + ["--max-comparisons", "-5"])

    def test_lifecycle_flags_are_oip_only(self):
        with pytest.raises(SystemExit, match="oip"):
            main(self.JOIN + ["--algorithm", "smj", "--deadline-ms", "100"])
        with pytest.raises(SystemExit, match="oip"):
            main(self.JOIN + ["--algorithm", "grace", "--checkpoint", "x"])

    def test_budget_abort_checkpoint_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        code = main(
            self.JOIN
            + [
                "--max-comparisons",
                "2000",
                "--checkpoint",
                path,
                "--checkpoint-every",
                "1",
            ]
        )
        assert code == 75
        assert f"checkpoint written to: {path}" in capsys.readouterr().out
        # Resuming without the budget finishes the join and reports the
        # same totals an uninterrupted run would.
        assert main(self.JOIN) == 0
        full = capsys.readouterr().out
        assert main(self.JOIN + ["--resume-from", path]) == 0
        resumed = capsys.readouterr().out
        assert "resumed_from_partition" in resumed
        # Identical pair count and counter totals vs the full run.
        assert full.splitlines()[0].split(" in ")[0] == (
            resumed.splitlines()[0].split(" in ")[0]
        )
        assert [
            line for line in full.splitlines() if "cpu_comparisons" in line
        ] == [
            line
            for line in resumed.splitlines()
            if "cpu_comparisons" in line
        ]

class TestObservabilityFlags:
    """--trace / --metrics-out / --report / --json and the report-diff
    mode of the compare subcommand."""

    JOIN = ["join", "--workload", "mixture", "--cardinality", "150"]

    def test_report_written_and_valid(self, tmp_path, capsys):
        from repro.obs.report import load_report

        path = str(tmp_path / "run.json")
        assert main(self.JOIN + ["--report", path]) == 0
        report = load_report(path)  # validates against the schema
        assert report["algorithm"] == "oip"
        assert report["completed"] is True
        # The text summary is unchanged by the report flag.
        assert "result pairs" in capsys.readouterr().out

    def test_trace_written_as_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(self.JOIN + ["--trace", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        roots = [r for r in records if r["kind"] == "span"]
        assert roots and roots[-1]["name"] == "join"
        phases = {child["name"] for child in roots[-1]["children"]}
        assert {"derive_k", "oipcreate", "probe"} <= phases

    def test_metrics_out_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(self.JOIN + ["--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["join.counters.result_tuples"] > 0
        assert "oip.partition_blocks" in snapshot["histograms"]

    def test_metrics_out_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        assert (
            main(
                self.JOIN
                + [
                    "--metrics-out",
                    str(path),
                    "--metrics-format",
                    "prometheus",
                ]
            )
            == 0
        )
        text = path.read_text()
        assert "# TYPE join_counters_block_reads counter" in text
        assert 'oip_partition_blocks_bucket{le="+Inf"}' in text

    def test_json_mode_matches_report_file(self, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        assert main(self.JOIN + ["--json", "--report", path]) == 0
        out = capsys.readouterr().out
        with open(path, "r", encoding="utf-8") as handle:
            assert out == handle.read()
        report = json.loads(out)
        assert report["counters"]["result_tuples"] == report["result"]["pairs"]

    def test_compare_reports_mode(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        other = str(tmp_path / "other.json")
        assert main(self.JOIN + ["--report", base]) == 0
        assert main(self.JOIN + ["--workers", "2", "--report", other]) == 0
        capsys.readouterr()
        assert main(["compare", base, other]) == 0
        out = capsys.readouterr().out
        assert "compare: oip (base) vs oip (other)" in out
        assert "phase times:" in out
        # Sequential and parallel runs count identically.
        assert "counters deltas:\n  (identical)" in out

    def test_compare_reports_json(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        assert main(self.JOIN + ["--report", base]) == 0
        capsys.readouterr()
        assert main(["compare", base, base, "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["counters"] == []
        assert parsed["regressions"] == 0

    def test_compare_rejects_one_report(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly two"):
            main(["compare", str(tmp_path / "only.json")])

    def test_compare_json_requires_reports(self):
        with pytest.raises(SystemExit, match="report-diff"):
            main(["compare", "--json", "--cardinality", "40"])

    def test_obs_flags_off_output_identical(self, capsys):
        """The observability flags change nothing when absent — counter
        lines match a pre-observability-style bare run exactly."""
        main(self.JOIN + ["--seed", "5"])
        bare = capsys.readouterr().out
        main(self.JOIN + ["--seed", "5"])
        again = capsys.readouterr().out
        assert bare.splitlines()[1:] == again.splitlines()[1:]


class TestLifecycleSlow:
    @pytest.mark.slow
    def test_sigint_round_trip(self, tmp_path):
        """A real SIGINT mid-join lands a checkpoint and exit 130; a
        follow-up --resume-from completes with exit 0."""
        import os
        import signal
        import subprocess
        import sys
        import time

        path = str(tmp_path / "sigint-ck.json")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "join",
            "--workload",
            "mixture",
            "--cardinality",
            "4000",
            "--algorithm",
            "oip",
            "--checkpoint",
            path,
            "--checkpoint-every",
            "1",
        ]
        env = dict(os.environ)
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE, text=True
        )
        time.sleep(1.2)
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 130, out
        assert f"checkpoint written to: {path}" in out
        assert "--resume-from" in out
        resumed = subprocess.run(
            argv[:-4] + ["--resume-from", path],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stdout
        assert "result pairs" in resumed.stdout


class TestTelemetryCommands:
    def test_serve_parser_accepts_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--index", "x.oip", "--tracing",
                "--query-log", "q.ndjson", "--slow-query-ms", "25",
                "--log-sample-rate", "0.5", "--metrics-port", "0",
            ]
        )
        assert args.tracing is True
        assert args.query_log == "q.ndjson"
        assert args.slow_query_ms == 25.0
        assert args.log_sample_rate == 0.5
        assert args.metrics_port == 0

    def test_stats_parser_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])
        args = build_parser().parse_args(
            ["stats", "--port", "1234", "--json"]
        )
        assert args.port == 1234 and args.json is True

    def test_calibrate_round_trip(self, tmp_path, capsys):
        report = str(tmp_path / "run.json")
        assert (
            main(
                [
                    "join", "--workload", "mixture", "--cardinality", "80",
                    "--report", report,
                ]
            )
            == 0
        )
        capsys.readouterr()
        out = str(tmp_path / "cal.json")
        assert main(["calibrate", report, "--out", out]) == 0
        document = json.loads(open(out).read())
        assert document["kind"] == "cost_calibration"
        assert document["samples"] == 1

    def test_calibrate_missing_report_exits_2(self, tmp_path, capsys):
        assert main(["calibrate", str(tmp_path / "nope.json")]) == 2
