"""Tests for the query operators."""

from repro import TemporalRelation
from repro.core.interval import Interval
from repro.engine.operators import (
    OverlapJoinOperator,
    ScanOperator,
)
from repro.engine.predicates import overlaps_at_least


def employees():
    return TemporalRelation.from_records(
        [
            (1, 12, "ann"),
            (3, 5, "bob"),
            (9, 20, "cho"),
        ],
        name="employees",
    )


def projects():
    return TemporalRelation.from_records(
        [
            (2, 8, "apollo"),
            (10, 11, "gemini"),
            (30, 40, "mercury"),
        ],
        name="projects",
    )


class TestScanAndSelect:
    def test_scan_returns_relation(self):
        scan = ScanOperator(employees())
        assert len(scan.execute()) == 3

    def test_select_filters(self):
        scan = ScanOperator(employees()).select(
            lambda tup: tup.duration >= 10
        )
        assert sorted(t.payload for t in scan.execute()) == ["ann", "cho"]

    def test_chained_selects(self):
        scan = (
            ScanOperator(employees())
            .select(lambda tup: tup.duration >= 10)
            .select(lambda tup: tup.start == 1)
        )
        assert [t.payload for t in scan.execute()] == ["ann"]

    def test_time_slice(self):
        scan = ScanOperator(employees()).time_slice(Interval(4, 4))
        assert sorted(t.payload for t in scan.execute()) == ["ann", "bob"]


class TestOverlapJoinOperator:
    def test_plain_join(self):
        join = OverlapJoinOperator(
            ScanOperator(employees()), ScanOperator(projects())
        )
        rows = join.execute()
        pairs = sorted((a.payload, b.payload) for a, b, _ in rows)
        assert pairs == [
            ("ann", "apollo"),
            ("ann", "gemini"),
            ("bob", "apollo"),
            ("cho", "gemini"),
        ]

    def test_rows_carry_overlap_interval(self):
        join = OverlapJoinOperator(
            ScanOperator(employees()), ScanOperator(projects())
        )
        for employee, project, shared in join.execute():
            assert shared.start == max(employee.start, project.start)
            assert shared.end == min(employee.end, project.end)

    def test_paper_refinement_example(self):
        """Section 1: employees employed during at least 5 months while a
        project is ongoing — refine AFTER computing the overlap."""
        join = OverlapJoinOperator(
            ScanOperator(employees()), ScanOperator(projects())
        ).refine(overlaps_at_least(5))
        rows = join.execute()
        assert [(a.payload, b.payload) for a, b, _ in rows] == [
            ("ann", "apollo")
        ]

    def test_multiple_refinements_conjoin(self):
        join = (
            OverlapJoinOperator(
                ScanOperator(employees()), ScanOperator(projects())
            )
            .refine(overlaps_at_least(1))
            .refine(lambda a, b: b.payload != "gemini")
        )
        pairs = [(a.payload, b.payload) for a, b, _ in join.execute()]
        assert ("ann", "gemini") not in pairs

    def test_last_result_exposes_join_statistics(self):
        join = OverlapJoinOperator(
            ScanOperator(employees()), ScanOperator(projects())
        )
        join.execute()
        assert join.last_result is not None
        assert join.last_result.algorithm == "oip"

    def test_custom_algorithm_injected(self):
        from repro.baselines.sort_merge import SortMergeJoin

        join = OverlapJoinOperator(
            ScanOperator(employees()),
            ScanOperator(projects()),
            algorithm=SortMergeJoin(),
        )
        rows = join.execute()
        assert join.last_result.algorithm == "smj"
        assert len(rows) == 4

    def test_join_over_filtered_inputs(self):
        join = OverlapJoinOperator(
            ScanOperator(employees()).select(
                lambda tup: tup.payload == "cho"
            ),
            ScanOperator(projects()),
        )
        pairs = [(a.payload, b.payload) for a, b, _ in join.execute()]
        assert pairs == [("cho", "gemini")]
