"""Batched multi-query execution: correctness, amortisation, lifecycle.

The acceptance properties:

* every windowed query returns exactly the oracle pairs for its window
  (three-way overlap ``max(r.TS, s.TS, W.TS) <= min(r.TE, s.TE, W.TE)``),
  and the union over a tiling of the time range equals the single-query
  join's full result;
* the batch shares **one** OIPCREATE — the trace of a batch run carries
  exactly two ``oipcreate`` spans however many windows follow — and one
  decode cache across the queries;
* per-query results are bit-identical across every kernel (naive, sweep,
  numpy, auto) and with the cache disabled;
* per-query run reports validate against the checked-in schema;
* governor, admission and cancellation flow through per query.
"""

import json
import random

import pytest

from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.core.kernels import KERNELS, numpy_available
from repro.core.oip import OIPConfiguration
from repro.engine.batch import BatchJoin, BatchResult, equal_windows
from repro.engine.governor import (
    AdmissionController,
    BudgetExceededError,
    CancellationToken,
    QueryBudget,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import validate_report
from repro.obs.trace import Tracer

from ..conftest import random_relation


def windowed_oracle(outer, inner, window):
    """Sorted canonical keys of every pair overlapping inside *window*."""
    keys = []
    for r in outer:
        for s in inner:
            if max(r.start, s.start, window.start) <= min(
                r.end, s.end, window.end
            ):
                keys.append(
                    (r.start, r.end, r.payload, s.start, s.end, s.payload)
                )
    return sorted(keys)


def count_spans(span, name):
    total = 1 if span.name == name else 0
    return total + sum(count_spans(child, name) for child in span.children)


@pytest.fixture(scope="module")
def relations():
    rng = random.Random(20140608)
    outer = random_relation(rng, 200, range_size=2_000, name="r")
    inner = random_relation(rng, 180, range_size=2_000, name="s")
    return outer, inner


class TestEqualWindows:
    def test_tiles_the_range_exactly(self):
        windows = equal_windows(Interval(1, 100), 7)
        assert len(windows) == 7
        assert windows[0].start == 1
        assert windows[-1].end == 100
        for before, after in zip(windows, windows[1:]):
            assert after.start == before.end + 1
        # duration 100 = 7*14 + 2: the first two windows are longer.
        assert [w.duration for w in windows] == [15, 15, 14, 14, 14, 14, 14]

    def test_single_window_is_the_range(self):
        assert equal_windows(Interval(5, 9), 1) == [Interval(5, 9)]

    def test_exact_division(self):
        windows = equal_windows(Interval(0, 99), 4)
        assert [w.duration for w in windows] == [25, 25, 25, 25]

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            equal_windows(Interval(1, 10), 0)

    def test_rejects_more_windows_than_points(self):
        with pytest.raises(ValueError, match="non-empty"):
            equal_windows(Interval(1, 3), 5)


class TestClampedQueryIndices:
    CONFIG = OIPConfiguration(k=4, d=10, o=0)  # granules [0,9]..[30,39]

    def test_interior_query(self):
        assert self.CONFIG.clamped_query_indices(Interval(12, 27)) == (1, 2)

    def test_clamps_to_grid(self):
        assert self.CONFIG.clamped_query_indices(Interval(-50, 500)) == (0, 3)

    def test_disjoint_left_and_right(self):
        assert self.CONFIG.clamped_query_indices(Interval(-20, -1)) is None
        assert self.CONFIG.clamped_query_indices(Interval(40, 99)) is None

    def test_boundary_points(self):
        assert self.CONFIG.clamped_query_indices(Interval(0, 0)) == (0, 0)
        assert self.CONFIG.clamped_query_indices(Interval(39, 39)) == (3, 3)
        assert self.CONFIG.clamped_query_indices(Interval(-5, 0)) == (0, 0)


class TestBatchCorrectness:
    def test_each_query_matches_windowed_oracle(self, relations):
        outer, inner = relations
        windows = equal_windows(outer.time_range, 5)
        result = BatchJoin().run(outer, inner, windows)
        assert isinstance(result, BatchResult)
        assert result.completed
        assert len(result.queries) == 5
        for window, query in zip(windows, result.queries):
            assert query.pair_keys() == windowed_oracle(outer, inner, window)
            assert query.details["shared_partitioning"] is True

    def test_union_over_tiling_equals_full_join(self, relations):
        outer, inner = relations
        full = OIPJoin().join(outer, inner)
        result = BatchJoin().run(
            outer, inner, equal_windows(outer.time_range, 7)
        )
        union = sorted(
            key
            for query in result.queries
            for key in set(query.pair_keys())
        )
        # Windows tile the range, so dedup of the per-window results is
        # exactly the unwindowed join.
        assert sorted(set(union)) == full.pair_keys()

    def test_disjoint_window_returns_nothing(self, relations):
        outer, inner = relations
        far = Interval(outer.time_range.end + 1_000,
                       outer.time_range.end + 2_000)
        result = BatchJoin().run(outer, inner, [far])
        assert result.total_pairs == 0
        assert result.queries[0].completed

    def test_empty_input_side(self, relations):
        outer, _ = relations
        from repro.core.relation import TemporalRelation

        empty = TemporalRelation.from_records([], name="empty")
        windows = [Interval(1, 10), Interval(11, 20)]
        result = BatchJoin().run(outer, empty, windows)
        assert result.completed
        assert len(result.queries) == 2
        assert result.total_pairs == 0

    def test_rejects_empty_window_list(self, relations):
        outer, inner = relations
        with pytest.raises(ValueError, match="at least one window"):
            BatchJoin().run(outer, inner, [])


class TestSharedPartitioning:
    """The amortisation acceptance criterion: one OIPCREATE, one cache."""

    def test_exactly_two_oipcreate_spans(self, relations):
        outer, inner = relations
        tracer = Tracer()
        windows = equal_windows(outer.time_range, 6)
        BatchJoin(tracer=tracer).run(outer, inner, windows)
        root = tracer.roots[-1]
        assert root.name == "batch"
        assert count_spans(root, "oipcreate") == 2
        assert count_spans(root, "query") == 6

    def test_one_oipcreate_regardless_of_window_count(self, relations):
        outer, inner = relations
        counts = {}
        for n in (1, 4):
            tracer = Tracer()
            BatchJoin(tracer=tracer).run(
                outer, inner, equal_windows(outer.time_range, n)
            )
            counts[n] = count_spans(tracer.roots[-1], "oipcreate")
        assert counts == {1: 2, 4: 2}

    def test_decode_cache_shared_across_queries(self, relations):
        outer, inner = relations
        result = BatchJoin().run(
            outer, inner, equal_windows(outer.time_range, 4)
        )
        cache = result.details["kernel_cache"]
        # Later queries re-probe partitions decoded by earlier ones.
        assert cache["hits"] > 0

    def test_build_cost_charged_once(self, relations):
        outer, inner = relations
        one = BatchJoin().run(outer, inner, [outer.time_range])
        many = BatchJoin().run(
            outer, inner, equal_windows(outer.time_range, 5)
        )
        assert (
            many.build_counters.snapshot() == one.build_counters.snapshot()
        )


class TestBatchDeterminism:
    """Per-query results are bit-identical across kernels and caching."""

    @staticmethod
    def _fingerprints(result):
        return [
            (
                query.pair_keys(),
                query.counters.snapshot(),
                query.resilience.storage_snapshot(),
            )
            for query in result.queries
        ]

    @pytest.fixture(scope="class")
    def reference(self, relations):
        outer, inner = relations
        return BatchJoin(kernel="naive").run(
            outer, inner, equal_windows(outer.time_range, 4)
        )

    @pytest.mark.parametrize("kernel", sorted(set(KERNELS) - {"naive"}))
    def test_kernel_identity(self, relations, reference, kernel):
        if kernel == "numpy" and not numpy_available():
            pytest.skip("numpy is not installed")
        outer, inner = relations
        result = BatchJoin(kernel=kernel).run(
            outer, inner, equal_windows(outer.time_range, 4)
        )
        assert result.details["kernel"] == kernel
        assert self._fingerprints(result) == self._fingerprints(reference)

    def test_auto_identity(self, relations, reference):
        outer, inner = relations
        result = BatchJoin(kernel="auto").run(
            outer, inner, equal_windows(outer.time_range, 4)
        )
        assert self._fingerprints(result) == self._fingerprints(reference)

    def test_cache_disabled_identity(self, relations, reference):
        outer, inner = relations
        result = BatchJoin(decode_cache_size=0).run(
            outer, inner, equal_windows(outer.time_range, 4)
        )
        assert "kernel_cache" not in result.details
        assert self._fingerprints(result) == self._fingerprints(reference)


class TestBatchReports:
    def test_per_query_reports_validate(self, relations):
        outer, inner = relations
        windows = equal_windows(outer.time_range, 3)
        result = BatchJoin(collect_report=True).run(outer, inner, windows)
        assert len(result.queries) == 3
        for query in result.queries:
            assert query.report is not None
            validate_report(query.report)  # raises on violation
            assert query.report["algorithm"] == "oip.batch"
            assert query.report["result"]["pairs"] == len(query.pairs)
            # The phase table is rooted at the query span.
            phases = {row["name"] for row in query.report["phases"]}
            assert "probe" in phases

    def test_reports_off_by_default(self, relations):
        outer, inner = relations
        result = BatchJoin().run(outer, inner, [outer.time_range])
        assert all(query.report is None for query in result.queries)

    def test_metrics_flow_per_query(self, relations):
        outer, inner = relations
        metrics = MetricsRegistry()
        result = BatchJoin(metrics=metrics).run(
            outer, inner, equal_windows(outer.time_range, 3)
        )
        snapshot = metrics.snapshot()
        assert (
            snapshot["counters"]["join.counters.result_tuples"]
            == result.total_pairs
        )
        assert snapshot["counters"]["batch.build.block_writes"] > 0


class TestBatchLifecycle:
    def test_cancellation_stops_the_batch(self, relations):
        outer, inner = relations
        token = CancellationToken(cancel_after_checks=6)
        windows = equal_windows(outer.time_range, 5)
        result = BatchJoin(cancellation=token, collect_report=True).run(
            outer, inner, windows
        )
        assert not result.completed
        assert result.details["cancelled"] is True
        assert len(result.queries) < len(windows)
        partial = result.queries[-1]
        assert not partial.completed
        assert partial.details["cancelled"] is True
        # The partial query still gets a schema-valid report carrying
        # the governor section.
        validate_report(partial.report)
        assert partial.report["governor"]["cancelled"] is True

    def test_budget_is_per_query(self, relations):
        outer, inner = relations
        with pytest.raises(BudgetExceededError):
            BatchJoin(budget=QueryBudget(max_comparisons=50)).run(
                outer, inner, equal_windows(outer.time_range, 3)
            )
        # A budget generous enough for any single window passes even if
        # the *sum* over windows exceeds it — it restarts per query.
        full = BatchJoin().run(
            outer, inner, equal_windows(outer.time_range, 4)
        )
        per_query = max(
            query.counters.cpu_comparisons for query in full.queries
        )
        total = sum(
            query.counters.cpu_comparisons for query in full.queries
        )
        assert total > per_query
        result = BatchJoin(
            budget=QueryBudget(max_comparisons=per_query)
        ).run(outer, inner, equal_windows(outer.time_range, 4))
        assert result.completed

    def test_admission_accounting(self, relations):
        outer, inner = relations
        admission = AdmissionController(max_active=1)
        result = BatchJoin(admission=admission).run(
            outer, inner, equal_windows(outer.time_range, 4)
        )
        assert result.completed
        stats = result.details["admission"]
        assert stats["admitted"] == 4
        assert stats["completed"] == 4
        assert stats["rejected"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="kernel"):
            BatchJoin(kernel="bogus")
        with pytest.raises(ValueError, match="k must be"):
            BatchJoin(k=0)
        with pytest.raises(ValueError, match="decode_cache_size"):
            BatchJoin(decode_cache_size=-1)


class TestBatchCli:
    JOIN = ["join", "--workload", "mixture", "--cardinality", "200"]

    def test_batch_report_path(self):
        from repro.cli import _batch_report_path

        assert _batch_report_path("run.json", 2) == "run.q2.json"
        assert _batch_report_path("out/run.report.json", 0) == (
            "out/run.report.q0.json"
        )
        assert _batch_report_path("noext", 1) == "noext.q1"

    def test_batch_runs_and_summarises(self, capsys):
        from repro.cli import main

        assert main(self.JOIN + ["--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("query ") == 3
        assert "one shared partitioning" in out
        assert "3/3 queries" in out

    def test_batch_matches_full_join_totals(self, capsys):
        from repro.cli import main

        assert main(self.JOIN + ["--seed", "11"]) == 0
        full = capsys.readouterr().out
        full_pairs = int(
            full.splitlines()[0].split(":")[1].split("result pairs")[0]
            .strip().replace(",", "")
        )
        assert main(self.JOIN + ["--seed", "11", "--batch", "1"]) == 0
        batch = capsys.readouterr().out
        assert f"oip.batch: {full_pairs:,} result pairs" in batch

    def test_batch_with_numpy_kernel(self, capsys):
        from repro.cli import main

        if not numpy_available():
            pytest.skip("numpy is not installed")
        assert main(self.JOIN + ["--batch", "2", "--kernel", "numpy"]) == 0
        assert "kernel: numpy" in capsys.readouterr().out

    def test_batch_per_query_reports(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.report import load_report

        path = str(tmp_path / "batch.json")
        assert main(self.JOIN + ["--batch", "2", "--report", path]) == 0
        for index in range(2):
            report = load_report(str(tmp_path / f"batch.q{index}.json"))
            assert report["algorithm"] == "oip.batch"

    def test_batch_json_mode_is_report_array(self, capsys):
        from repro.cli import main

        assert main(self.JOIN + ["--batch", "2", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert isinstance(reports, list) and len(reports) == 2
        for report in reports:
            assert report["algorithm"] == "oip.batch"

    def test_batch_rejected_for_other_algorithms(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="oip"):
            main(self.JOIN + ["--algorithm", "smj", "--batch", "2"])

    def test_batch_zero_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match=">= 1"):
            main(self.JOIN + ["--batch", "0"])

    def test_batch_incompatible_flags_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--workers"):
            main(self.JOIN + ["--batch", "2", "--workers", "2"])
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(self.JOIN + ["--batch", "2", "--checkpoint", "x.json"])

    def test_batch_budget_exit_75(self, capsys):
        from repro.cli import main

        code = main(
            self.JOIN + ["--batch", "3", "--max-comparisons", "100"]
        )
        assert code == 75
        assert "per-query budget exceeded" in capsys.readouterr().out
