"""Differential tests: the parallel OIPJOIN must be *bit-identical* to
the sequential OIPJOIN — same result pairs in the same order, and the
same cost counters field by field — on every workload, backend and
worker count.  This is the contract that lets the planner switch to the
partition-pair scheduler without changing any paper semantics (AFR/APA
accounting included)."""

from __future__ import annotations

import pytest

from repro import TemporalRelation
from repro.core.interval import Interval
from repro.core.join import OIPJoin
from repro.engine.parallel import build_probe_schedule, execute_schedule
from repro.storage.buffer import BufferPool
from repro.workloads import long_lived_mixture, point_relation, uniform_relation

TIME_RANGE = Interval(1, 2**16)


def _workload(kind: str):
    """Synthetic outer/inner pairs covering the paper's regimes."""
    if kind == "short":
        return (
            uniform_relation(250, TIME_RANGE, 0.001, seed=11, name="r"),
            uniform_relation(250, TIME_RANGE, 0.001, seed=12, name="s"),
        )
    if kind == "long":
        return (
            long_lived_mixture(250, 0.8, TIME_RANGE, seed=13, name="r"),
            long_lived_mixture(250, 0.8, TIME_RANGE, seed=14, name="s"),
        )
    if kind == "mixed":
        return (
            long_lived_mixture(250, 0.3, TIME_RANGE, seed=15, name="r"),
            long_lived_mixture(250, 0.3, TIME_RANGE, seed=16, name="s"),
        )
    if kind == "points":
        return (
            point_relation(250, TIME_RANGE, seed=17, name="r"),
            point_relation(250, TIME_RANGE, seed=18, name="s"),
        )
    raise AssertionError(kind)


def assert_identical(sequential, parallel):
    """The full bit-identical contract, not just set equality."""
    assert parallel.pairs == sequential.pairs  # same pairs, same order
    assert (
        parallel.counters.snapshot() == sequential.counters.snapshot()
    ), "merged worker counters must reproduce the sequential totals"


WORKLOADS = ("short", "long", "mixed", "points")


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("kind", WORKLOADS)
    @pytest.mark.parametrize("workers", (1, 2, 3))
    def test_thread_backend(self, kind, workers):
        outer, inner = _workload(kind)
        sequential = OIPJoin().join(outer, inner)
        parallel = OIPJoin(
            parallelism=workers, parallel_backend="thread"
        ).join(outer, inner)
        assert_identical(sequential, parallel)

    @pytest.mark.parametrize("kind", ("long", "mixed"))
    def test_process_backend(self, kind):
        outer, inner = _workload(kind)
        sequential = OIPJoin().join(outer, inner)
        parallel = OIPJoin(
            parallelism=2, parallel_backend="process"
        ).join(outer, inner)
        assert_identical(sequential, parallel)

    @pytest.mark.parametrize("workers", (1, 4))
    def test_pinned_k_equals_one(self, workers):
        """k = 1: a single partition per side, one probe task."""
        outer, inner = _workload("mixed")
        sequential = OIPJoin(k=1).join(outer, inner)
        parallel = OIPJoin(k=1, parallelism=workers).join(outer, inner)
        assert_identical(sequential, parallel)
        assert parallel.details["probe_tasks"] == 1
        assert parallel.details["partition_pairs"] == 1

    def test_tiny_chunk_size(self):
        """One task per chunk still merges deterministically."""
        outer, inner = _workload("mixed")
        sequential = OIPJoin().join(outer, inner)
        parallel = OIPJoin(parallelism=3, parallel_chunk_size=1).join(
            outer, inner
        )
        assert_identical(sequential, parallel)

    def test_empty_relations(self):
        outer, inner = _workload("short")
        empty = TemporalRelation([], name="empty")
        join = OIPJoin(parallelism=2)
        assert join.join(empty, inner).pairs == []
        assert join.join(outer, empty).pairs == []
        assert join.join(empty, empty).pairs == []

    def test_single_tuple_relations(self):
        outer = TemporalRelation.from_records([(5, 9, "a")], name="r")
        inner = TemporalRelation.from_records([(8, 12, "b")], name="s")
        sequential = OIPJoin().join(outer, inner)
        parallel = OIPJoin(parallelism=4, parallel_backend="process").join(
            outer, inner
        )
        assert_identical(sequential, parallel)
        assert len(parallel.pairs) == 1

    def test_disjoint_time_ranges(self):
        """Outer probes that fail the Algorithm-2 range guard still charge
        their reads and guard comparisons identically."""
        outer = TemporalRelation.from_pairs(
            [(i, i + 3) for i in range(1, 50, 5)], name="r"
        )
        inner = TemporalRelation.from_pairs(
            [(i, i + 3) for i in range(1000, 1050, 5)], name="s"
        )
        sequential = OIPJoin().join(outer, inner)
        parallel = OIPJoin(parallelism=2).join(outer, inner)
        assert_identical(sequential, parallel)
        assert parallel.pairs == []


class TestParallelConfiguration:
    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            OIPJoin(parallelism=0)
        with pytest.raises(ValueError):
            OIPJoin(parallelism=-2)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            OIPJoin(parallelism=2, parallel_backend="greenlet")

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            OIPJoin(parallelism=2, parallel_chunk_size=0)

    def test_details_report_schedule(self):
        outer, inner = _workload("mixed")
        result = OIPJoin(parallelism=2).join(outer, inner)
        assert result.details["parallelism"] == 2
        assert result.details["parallel_backend"] == "thread"
        assert result.details["probe_tasks"] == result.details[
            "outer_partitions"
        ]
        assert (
            result.details["partition_pairs"]
            == result.counters.partition_accesses
        )

    def test_buffer_pool_falls_back_to_sequential(self):
        """Pool-hit accounting depends on global read order, so the
        parallel path is skipped — correctly and visibly."""
        outer, inner = _workload("mixed")
        sequential = OIPJoin(buffer_pool=BufferPool(capacity_blocks=64)).join(
            outer, inner
        )
        parallel = OIPJoin(
            buffer_pool=BufferPool(capacity_blocks=64), parallelism=4
        ).join(outer, inner)
        assert_identical(sequential, parallel)
        assert parallel.details["parallel_fallback"] == "buffer_pool"


class TestScheduleEnumeration:
    def test_schedule_matches_lemma1_navigation(self):
        """The up-front pair enumeration must touch exactly the partitions
        iter_relevant (Lemma 1) yields for each outer partition query."""
        from repro.core.lazy_list import oip_create
        from repro.core.oip import OIPConfiguration
        from repro.storage.manager import StorageManager
        from repro.storage.metrics import CostCounters

        outer, inner = _workload("mixed")
        k = 8
        config_r = OIPConfiguration.for_relation(outer, k)
        config_s = OIPConfiguration.for_relation(inner, k)
        storage = StorageManager()
        outer_list = oip_create(outer, config_r, storage)
        inner_list = oip_create(inner, config_s, storage)

        schedule = build_probe_schedule(
            outer_list, inner_list, k, CostCounters()
        )
        inner_nodes = list(inner_list.iter_nodes())
        assert schedule.task_count == outer_list.partition_count
        assert len(schedule.inner_table) == inner_list.partition_count

        inner_range_stop = config_s.o + k * config_s.d
        for task, outer_node in zip(
            schedule.tasks, outer_list.iter_nodes()
        ):
            query = config_r.partition_interval(outer_node.i, outer_node.j)
            if query.end < config_s.o or query.start >= inner_range_stop:
                expected = []
            else:
                s, e = config_s.query_indices(query)
                expected = [
                    (node.i, node.j)
                    for node in inner_list.iter_relevant(s, e)
                ]
            scheduled = [
                (inner_nodes[rel].i, inner_nodes[rel].j)
                for rel in task.relevant
            ]
            assert scheduled == expected

    def test_execute_schedule_validates_arguments(self):
        from repro.core.lazy_list import oip_create
        from repro.core.oip import OIPConfiguration
        from repro.storage.manager import StorageManager
        from repro.storage.metrics import CostCounters

        outer, inner = _workload("short")
        config = OIPConfiguration.for_relation(outer, 4)
        storage = StorageManager()
        outer_list = oip_create(outer, config, storage)
        inner_list = oip_create(
            inner, OIPConfiguration.for_relation(inner, 4), storage
        )
        schedule = build_probe_schedule(
            outer_list, inner_list, 4, CostCounters()
        )
        with pytest.raises(ValueError):
            execute_schedule(schedule, CostCounters(), [], workers=0)
        with pytest.raises(ValueError):
            execute_schedule(
                schedule, CostCounters(), [], workers=2, backend="fiber"
            )
