"""Tests for the statistics-driven join planner."""

import pytest

from repro.core.interval import Interval
from repro.engine.planner import JoinPlanner
from repro.workloads import long_lived_mixture, point_relation
from tests.conftest import oracle_pairs


class TestPlanSelection:
    def test_point_data_picks_sort_merge(self):
        planner = JoinPlanner()
        outer = point_relation(100, seed=1)
        inner = point_relation(100, seed=2)
        plan = planner.plan(outer, inner)
        assert plan.algorithm.name == "smj"
        assert "point data" in plan.reason

    def test_long_lived_data_picks_oip(self):
        planner = JoinPlanner()
        range_ = Interval(1, 2**16)
        outer = long_lived_mixture(100, 0.5, range_, seed=1)
        inner = long_lived_mixture(100, 0.5, range_, seed=2)
        plan = planner.plan(outer, inner)
        assert plan.algorithm.name == "oip"
        assert "long-lived" in plan.reason

    def test_one_long_lived_side_is_enough(self):
        """The paper: smj 'deteriorates as soon as the dataset contains
        a few long-lived tuples'."""
        planner = JoinPlanner()
        range_ = Interval(1, 2**16)
        outer = point_relation(100, range_, seed=1)
        inner = long_lived_mixture(100, 0.2, range_, seed=2)
        assert planner.plan(outer, inner).algorithm.name == "oip"

    def test_plan_records_statistics(self):
        planner = JoinPlanner()
        outer = point_relation(50, seed=3)
        inner = point_relation(50, seed=4)
        plan = planner.plan(outer, inner)
        assert plan.outer_duration_fraction > 0.0
        assert plan.inner_duration_fraction > 0.0

    def test_threshold_configurable(self):
        range_ = Interval(1, 1000)
        outer = long_lived_mixture(100, 0.0, range_, seed=5)
        inner = long_lived_mixture(100, 0.0, range_, seed=6)
        strict = JoinPlanner(point_threshold=1e-9)
        lax = JoinPlanner(point_threshold=1.0)
        assert strict.plan(outer, inner).algorithm.name == "oip"
        assert lax.plan(outer, inner).algorithm.name == "smj"

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            JoinPlanner(point_threshold=0.0)


class TestExecution:
    def test_planned_join_is_correct(self, paper_r, paper_s):
        result = JoinPlanner().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_plan_execute_separately(self):
        planner = JoinPlanner()
        outer = point_relation(60, seed=7)
        inner = point_relation(60, seed=8)
        plan = planner.plan(outer, inner)
        result = plan.execute(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_empty_relations(self, paper_s):
        from repro import TemporalRelation

        result = JoinPlanner().join(TemporalRelation([]), paper_s)
        assert result.pairs == []
