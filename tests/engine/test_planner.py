"""Tests for the statistics-driven join planner."""

import pytest

from repro.core.interval import Interval
from repro.engine.planner import JoinPlanner
from repro.workloads import long_lived_mixture, point_relation
from tests.conftest import oracle_pairs


class TestPlanSelection:
    def test_point_data_picks_sort_merge(self):
        planner = JoinPlanner()
        outer = point_relation(100, seed=1)
        inner = point_relation(100, seed=2)
        plan = planner.plan(outer, inner)
        assert plan.algorithm.name == "smj"
        assert "point data" in plan.reason

    def test_long_lived_data_picks_oip(self):
        planner = JoinPlanner()
        range_ = Interval(1, 2**16)
        outer = long_lived_mixture(100, 0.5, range_, seed=1)
        inner = long_lived_mixture(100, 0.5, range_, seed=2)
        plan = planner.plan(outer, inner)
        assert plan.algorithm.name == "oip"
        assert "long-lived" in plan.reason

    def test_one_long_lived_side_is_enough(self):
        """The paper: smj 'deteriorates as soon as the dataset contains
        a few long-lived tuples'."""
        planner = JoinPlanner()
        range_ = Interval(1, 2**16)
        outer = point_relation(100, range_, seed=1)
        inner = long_lived_mixture(100, 0.2, range_, seed=2)
        assert planner.plan(outer, inner).algorithm.name == "oip"

    def test_plan_records_statistics(self):
        planner = JoinPlanner()
        outer = point_relation(50, seed=3)
        inner = point_relation(50, seed=4)
        plan = planner.plan(outer, inner)
        assert plan.outer_duration_fraction > 0.0
        assert plan.inner_duration_fraction > 0.0

    def test_threshold_configurable(self):
        range_ = Interval(1, 1000)
        outer = long_lived_mixture(100, 0.0, range_, seed=5)
        inner = long_lived_mixture(100, 0.0, range_, seed=6)
        strict = JoinPlanner(point_threshold=1e-9)
        lax = JoinPlanner(point_threshold=1.0)
        assert strict.plan(outer, inner).algorithm.name == "oip"
        assert lax.plan(outer, inner).algorithm.name == "smj"

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            JoinPlanner(point_threshold=0.0)


class TestLazyReasoning:
    def test_reason_not_built_until_accessed(self):
        """Plans are created on every join and usually discarded without
        logging; the reasoning string must not be formatted eagerly."""
        from repro.core.join import OIPJoin
        from repro.engine.planner import JoinPlan

        calls = []

        def factory():
            calls.append(1)
            return "because"

        plan = JoinPlan(
            algorithm=OIPJoin(),
            reason=factory,
            outer_duration_fraction=0.1,
            inner_duration_fraction=0.2,
        )
        assert calls == []
        assert plan.reason == "because"
        assert calls == [1]
        assert plan.reason == "because"  # cached, not rebuilt
        assert calls == [1]

    def test_repr_is_cheap(self):
        """repr() must not materialise the reason string."""
        from repro.core.join import OIPJoin
        from repro.engine.planner import JoinPlan

        calls = []

        def factory():
            calls.append(1)
            return "expensive"

        plan = JoinPlan(
            algorithm=OIPJoin(),
            reason=factory,
            outer_duration_fraction=0.25,
            inner_duration_fraction=0.5,
        )
        text = repr(plan)
        assert calls == []
        assert "oip" in text
        assert "2.50e-01" in text and "5.00e-01" in text

    def test_plain_string_reason_still_works(self):
        from repro.core.join import OIPJoin
        from repro.engine.planner import JoinPlan

        plan = JoinPlan(
            algorithm=OIPJoin(),
            reason="fixed",
            outer_duration_fraction=0.0,
            inner_duration_fraction=0.0,
        )
        assert plan.reason == "fixed"

    def test_planned_reasons_unchanged(self):
        """The lazily built strings match the former eager wording."""
        planner = JoinPlanner()
        range_ = Interval(1, 2**16)
        outer = long_lived_mixture(100, 0.5, range_, seed=1)
        inner = long_lived_mixture(100, 0.5, range_, seed=2)
        assert "long-lived" in planner.plan(outer, inner).reason
        points = point_relation(100, seed=1), point_relation(100, seed=2)
        assert "point data" in planner.plan(*points).reason


class TestParallelPlanning:
    def _mixture_pair(self, n):
        range_ = Interval(1, 2**16)
        return (
            long_lived_mixture(n, 0.5, range_, seed=9),
            long_lived_mixture(n, 0.5, range_, seed=10),
        )

    def test_small_join_stays_sequential(self):
        planner = JoinPlanner(workers=4)
        plan = planner.plan(*self._mixture_pair(50))
        assert plan.algorithm.name == "oip"
        assert plan.parallelism is None

    def test_large_join_goes_parallel(self):
        outer, inner = self._mixture_pair(400)
        planner = JoinPlanner(parallel_threshold=1_000, workers=4)
        plan = planner.plan(outer, inner)
        assert plan.algorithm.name == "oip"
        assert plan.parallelism == 4
        assert plan.estimated_candidates >= 1_000
        assert "partition pairs" in plan.reason

    def test_parallel_plan_executes_identically(self):
        outer, inner = self._mixture_pair(200)
        from repro.core.join import OIPJoin

        sequential = OIPJoin().join(outer, inner)
        plan = JoinPlanner(parallel_threshold=1.0, workers=2).plan(
            outer, inner
        )
        assert plan.parallelism == 2
        result = plan.execute(outer, inner)
        assert result.pairs == sequential.pairs
        assert (
            result.counters.snapshot() == sequential.counters.snapshot()
        )

    def test_parallel_planning_disabled(self):
        outer, inner = self._mixture_pair(200)
        planner = JoinPlanner(parallel_threshold=None, workers=8)
        assert planner.plan(outer, inner).parallelism is None

    def test_single_worker_never_parallel(self):
        outer, inner = self._mixture_pair(200)
        planner = JoinPlanner(parallel_threshold=1.0, workers=1)
        assert planner.plan(outer, inner).parallelism is None

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            JoinPlanner(parallel_threshold=0.0)
        with pytest.raises(ValueError):
            JoinPlanner(workers=0)


class TestExecution:
    def test_planned_join_is_correct(self, paper_r, paper_s):
        result = JoinPlanner().join(paper_r, paper_s)
        assert result.pair_keys() == oracle_pairs(paper_r, paper_s)

    def test_plan_execute_separately(self):
        planner = JoinPlanner()
        outer = point_relation(60, seed=7)
        inner = point_relation(60, seed=8)
        plan = planner.plan(outer, inner)
        result = plan.execute(outer, inner)
        assert result.pair_keys() == oracle_pairs(outer, inner)

    def test_empty_relations(self, paper_s):
        from repro import TemporalRelation

        result = JoinPlanner().join(TemporalRelation([]), paper_s)
        assert result.pairs == []


class TestIndexStatistics:
    """Planning from a persisted snapshot's statistics section."""

    @pytest.fixture
    def indexed(self, tmp_path):
        from repro.storage import save_index

        outer = long_lived_mixture(300, 0.3, Interval(1, 20_000), seed=71)
        inner = long_lived_mixture(300, 0.3, Interval(1, 20_000), seed=72)
        path = str(tmp_path / "plan.oip")
        save_index(path, outer, inner)
        return path, outer, inner

    def test_same_decision_as_relation_statistics(self, indexed):
        path, outer, inner = indexed
        planner = JoinPlanner()
        base = planner.plan(outer, inner)
        plan = planner.plan(outer, inner, index_path=path)
        # Persisted statistics were recorded from these relations, so
        # every decision input matches the relation-scan path.
        assert plan.outer_duration_fraction == base.outer_duration_fraction
        assert plan.inner_duration_fraction == base.inner_duration_fraction
        assert plan.estimated_candidates == base.estimated_candidates
        assert type(plan.algorithm) is type(base.algorithm)
        assert plan.algorithm.index_path == path
        assert "persisted index statistics" in plan.reason

    def test_execution_loads_snapshot(self, indexed):
        path, outer, inner = indexed
        plan = JoinPlanner().plan(outer, inner, index_path=path)
        result = plan.execute(outer, inner)
        assert result.details["index"]["loaded"] is True
        baseline = JoinPlanner().join(outer, inner)
        assert result.pairs == baseline.pairs
        assert result.counters.snapshot() == baseline.counters.snapshot()

    def test_missing_snapshot_falls_back(self, indexed, tmp_path):
        path, outer, inner = indexed
        missing = str(tmp_path / "missing.oip")
        planner = JoinPlanner()
        plan = planner.plan(outer, inner, index_path=missing)
        base = planner.plan(outer, inner)
        assert plan.estimated_candidates == base.estimated_candidates
        assert "index statistics unavailable (missing)" in plan.reason
        # Execution still answers, through the join's degrade path.
        result = plan.execute(outer, inner)
        assert result.details["index"]["loaded"] is False
        assert result.pairs == planner.join(outer, inner).pairs

    def test_point_data_plan_ignores_index(self, indexed, tmp_path):
        path, _, _ = indexed
        outer = point_relation(80, seed=73)
        inner = point_relation(80, seed=74)
        # Index statistics describe mixture data, so the planner will
        # not pick sort-merge from them; without them it does.  Use a
        # corrupt path to force relation statistics.
        plan = JoinPlanner().plan(
            outer, inner, index_path=str(tmp_path / "gone.oip")
        )
        assert "sort-merge" in plan.reason
        assert "left unused" in plan.reason


class TestCalibratedPlanning:
    """Measured-cost planning: a calibration changes the plan choice."""

    def _mixture_pair(self, n):
        range_ = Interval(1, 2**16)
        return (
            long_lived_mixture(n, 0.5, range_, seed=9),
            long_lived_mixture(n, 0.5, range_, seed=10),
        )

    def _calibration(self, cpu_ms, io_ms):
        from repro.obs.calibrate import Calibration

        return Calibration(
            cpu_ms=cpu_ms,
            io_ms=io_ms,
            r_squared=1.0,
            samples=4,
            residual_rms_ms=0.0,
        )

    def test_uncalibrated_plan_has_no_prediction(self):
        plan = JoinPlanner(workers=4).plan(*self._mixture_pair(100))
        assert plan.predicted_ms is None

    def test_calibration_flips_the_parallel_decision(self):
        """The acceptance gate: identical workload and planner knobs,
        only the measured constants differ — and the plan changes."""
        outer, inner = self._mixture_pair(300)
        slow_box = JoinPlanner(
            workers=4, calibration=self._calibration(0.01, 0.5)
        )
        fast_box = JoinPlanner(
            workers=4, calibration=self._calibration(1e-9, 1e-7)
        )
        slow_plan = slow_box.plan(outer, inner)
        fast_plan = fast_box.plan(outer, inner)
        assert slow_plan.predicted_ms >= 50.0
        assert slow_plan.parallelism == 4
        assert "calibrated prediction" in slow_plan.reason
        assert fast_plan.predicted_ms < 50.0
        assert fast_plan.parallelism is None
        assert "parallel floor" in fast_plan.reason
        # Without any calibration the same workload stays sequential
        # under the default candidate-count threshold.
        default_plan = JoinPlanner(workers=4).plan(outer, inner)
        assert default_plan.parallelism is None

    def test_calibrated_weights_reach_the_algorithm(self):
        from repro.storage.metrics import CostWeights

        plan = JoinPlanner(
            calibration=self._calibration(0.01, 0.5)
        ).plan(*self._mixture_pair(100))
        assert plan.algorithm.name == "oip"
        assert plan.algorithm.weights == CostWeights(cpu=0.01, io=0.5)

    def test_parallel_floor_configurable(self):
        outer, inner = self._mixture_pair(300)
        planner = JoinPlanner(
            workers=4,
            calibration=self._calibration(0.01, 0.5),
            parallel_min_predicted_ms=1e9,
        )
        assert planner.plan(outer, inner).parallelism is None

    def test_calibrated_plan_executes_identically(self):
        from repro.core.join import OIPJoin

        outer, inner = self._mixture_pair(150)
        baseline = OIPJoin().join(outer, inner)
        plan = JoinPlanner(
            calibration=self._calibration(0.01, 0.5), workers=2
        ).plan(outer, inner)
        result = plan.execute(outer, inner)
        # Calibrated weights change k (and thus emission order), never
        # the joined pair set.
        assert sorted(result.pair_keys()) == sorted(baseline.pair_keys())

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError, match="calibration"):
            JoinPlanner(calibration=object())
        with pytest.raises(ValueError, match="parallel_min_predicted_ms"):
            JoinPlanner(parallel_min_predicted_ms=0.0)
