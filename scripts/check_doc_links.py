#!/usr/bin/env python
"""Check that markdown links in the given docs resolve.

Three link classes are verified, everything else is ignored:

* relative file links (``[text](src/repro/cli.py)``) must point at an
  existing file or directory, resolved against the doc's own location;
* in-page anchors (``[text](#cost-model)``) must match a heading of the
  same document, slugified the way GitHub does;
* cross-doc anchors (``[text](ARCHITECTURE.md#kernels)``) must match a
  heading of the *target* document.

External links (``http(s)://``, ``mailto:``) are not fetched — CI must
not depend on the network.  Exit status is the number of broken links.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match) for match in HEADING.findall(text)}


def check(path: Path) -> list:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    errors = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path):
                errors.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                errors.append(f"{path}: broken anchor {target!r}")
    return errors


def main(argv) -> int:
    if not argv:
        print("usage: check_doc_links.py DOC.md [DOC.md ...]")
        return 2
    errors = []
    for name in argv:
        doc = Path(name)
        if not doc.exists():
            errors.append(f"{doc}: document does not exist")
            continue
        errors.extend(check(doc))
    for error in errors:
        print(error)
    if not errors:
        print(f"ok: {len(argv)} document(s), all links resolve")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
