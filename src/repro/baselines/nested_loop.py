"""Block nested-loop overlap join — the correctness oracle.

Not part of the paper's evaluation; every other algorithm's result set is
tested against this one.  Implemented as a block nested-loop join over the
storage substrate so its counters are still meaningful: the outer relation
is scanned once, the inner relation once per outer *block*.
"""

from __future__ import annotations

from typing import List

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.relation import TemporalRelation
from ..storage.metrics import CostCounters

__all__ = ["NestedLoopJoin"]


class NestedLoopJoin(OverlapJoinAlgorithm):
    """Exhaustive pairwise overlap join (``O(n_r * n_s)`` comparisons)."""

    name = "nlj"

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        outer_run = storage.store_tuples(outer)
        inner_run = storage.store_tuples(inner)

        pairs: List = self._begin_pairs()
        for outer_block in outer_run:
            storage.read_block(outer_block.block_id, block=outer_block)
            for inner_tuple in storage.read_run(inner_run):
                for outer_tuple in outer_block:
                    self._match(outer_tuple, inner_tuple, counters, pairs)
        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "outer_blocks": len(outer_run),
                "inner_blocks": len(inner_run),
            },
        )
