"""Segment tree overlap join — the paper's ``sgt`` baseline (Section 7).

The index is built on the inner relation.  Elementary segments are the
maximal ranges delimited by any tuple start point or any point following a
tuple end (for tuples ``[1,5], [3,9], [8,9]`` the leaves are ``[1,2],
[3,5], [6,7], [8,9]``, matching the Section 2 example).  Internal nodes
merge the segments of their children.  A tuple is assigned to the
*canonical* set of nodes: the highest nodes whose segment its interval
completely covers (tuple ``[3,9]`` of the example lands in ``[3,5]`` and
``[6,9]`` — stored twice).

The overlap join probes the tree with every outer tuple.  All tuples
stored at a node whose segment intersects the query interval are genuine
results (the segment tree produces **no false hits**), but long-lived
tuples are stored at — and fetched from — many nodes.  Duplicates are
identified during the join with the paper's test: visiting nodes
left-to-right, a stored tuple is emitted only when the intersection of
tuple and query *starts inside the current segment*; if the intersection
starts earlier, the pair was already produced at a previous segment.
Duplicate fetches still pay their block IO and CPU, which is exactly the
overhead the paper measures for ``sgt``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.interval import Interval
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.block import BlockRun
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters

__all__ = ["SegmentTree", "SegmentTreeJoin", "elementary_segments"]


def elementary_segments(tuples: Sequence[TemporalTuple]) -> List[Interval]:
    """The leaf segments of the tree: splits at every tuple start and at
    every point following a tuple end."""
    if not tuples:
        return []
    boundaries = set()
    last = max(t.end for t in tuples) + 1
    for tup in tuples:
        boundaries.add(tup.start)
        boundaries.add(tup.end + 1)
    boundaries.add(min(t.start for t in tuples))
    ordered = sorted(boundaries | {last})
    return [
        Interval(low, high - 1)
        for low, high in zip(ordered, ordered[1:])
        if high - 1 >= low
    ]


class _SegmentNode:
    __slots__ = ("segment", "left", "right", "run")

    def __init__(self, segment: Interval, run: BlockRun) -> None:
        self.segment = segment
        self.left: Optional["_SegmentNode"] = None
        self.right: Optional["_SegmentNode"] = None
        self.run = run


class SegmentTree:
    """Balanced segment tree over the elementary segments of a relation."""

    def __init__(
        self,
        relation: TemporalRelation,
        storage: StorageManager,
    ) -> None:
        self.storage = storage
        self.node_count = 0
        leaves = elementary_segments(relation.tuples)
        self.root = self._build(leaves, 0, len(leaves) - 1)
        for tup in relation:
            self._insert(self.root, tup)

    def _build(
        self, leaves: List[Interval], low: int, high: int
    ) -> Optional[_SegmentNode]:
        if low > high:
            return None
        self.node_count += 1
        if low == high:
            return _SegmentNode(leaves[low], self.storage.new_run())
        middle = (low + high) // 2
        node = _SegmentNode(
            Interval(leaves[low].start, leaves[high].end),
            self.storage.new_run(),
        )
        node.left = self._build(leaves, low, middle)
        node.right = self._build(leaves, middle + 1, high)
        return node

    def _insert(self, node: Optional[_SegmentNode], tup: TemporalTuple) -> None:
        """Canonical assignment: store at the highest nodes whose segment
        the tuple's interval completely covers."""
        if node is None or not tup.overlaps_interval(node.segment):
            return
        if tup.start <= node.segment.start and node.segment.end <= tup.end:
            self.storage.append(node.run, tup)
            return
        self._insert(node.left, tup)
        self._insert(node.right, tup)

    @property
    def height(self) -> int:
        def depth(node: Optional[_SegmentNode]) -> int:
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self.root)

    def stored_entries(self) -> int:
        """Total stored tuple copies — exceeds the relation cardinality by
        the duplication long-lived tuples cause."""

        def count(node: Optional[_SegmentNode]) -> int:
            if node is None:
                return 0
            return node.run.tuple_count + count(node.left) + count(node.right)

        return count(self.root)


class SegmentTreeJoin(OverlapJoinAlgorithm):
    """Overlap join probing a segment tree on the inner relation."""

    name = "sgt"

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        tree = SegmentTree(inner, storage)
        outer_run = storage.store_tuples(outer)

        pairs: List = self._begin_pairs()

        def probe(
            node: Optional[_SegmentNode], outer_tuple: TemporalTuple
        ) -> None:
            if node is None:
                return
            counters.charge_cpu(2)  # segment-overlap test
            if not outer_tuple.overlaps_interval(node.segment):
                return
            counters.charge_partition_access()
            segment_start = node.segment.start
            for inner_tuple in storage.read_run(node.run):
                # Duplicate test: the intersection of the two intervals
                # starts at max of the start points; if that lies before
                # this segment, the pair was emitted at an earlier node.
                counters.charge_cpu(2)
                intersection_start = max(inner_tuple.start, outer_tuple.start)
                if intersection_start < segment_start:
                    counters.charge_extra("duplicates")
                    continue
                pairs.append((outer_tuple, inner_tuple))
            probe(node.left, outer_tuple)
            probe(node.right, outer_tuple)

        for outer_block in outer_run:
            storage.read_block(outer_block.block_id, block=outer_block)
            for outer_tuple in outer_block:
                probe(tree.root, outer_tuple)

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "tree_nodes": tree.node_count,
                "tree_height": tree.height,
                "stored_entries": tree.stored_entries(),
                "inner_cardinality": inner.cardinality,
            },
        )
