"""R*-tree-style interval tree join (paper Section 2, "Disk-Based
Approaches").

A 1-D R-tree over intervals: leaves hold tuples, internal nodes hold the
*minimum bounding intervals* (the 1-D MBRs) of their children.  We
bulk-load with the Sort-Tile-Recursive recipe reduced to one dimension —
sort by interval centre, pack fixed-fanout leaves, build upward — which
approximates the R*-tree's clustering without its expensive forced
reinsertion (the paper notes the R*-tree "is expensive to construct due
to the propagation of MBRs").

The failure mode the paper describes is preserved: **long-lived tuples
inflate the bounding intervals** of every node on their path, sibling
MBRs overlap, and an overlap query must descend multiple paths, fetching
pages whose other tuples are false hits.

The join probes the inner tree with every outer tuple (the standard
R-tree spatial-join simplification for one-dimensional data).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.interval import Interval
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.block import BlockRun
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters

__all__ = ["IntervalRTree", "RTreeJoin"]


class _RTreeNode:
    __slots__ = ("bounds", "children", "run")

    def __init__(
        self,
        bounds: Interval,
        children: Optional[List["_RTreeNode"]],
        run: Optional[BlockRun],
    ) -> None:
        self.bounds = bounds
        self.children = children  # None for leaves
        self.run = run  # None for internal nodes

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class IntervalRTree:
    """Bulk-loaded 1-D R-tree with configurable fanout."""

    def __init__(
        self,
        relation: TemporalRelation,
        storage: StorageManager,
        fanout: int = 16,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.storage = storage
        self.fanout = fanout
        self.node_count = 0
        self.root = self._bulk_load(relation)

    def _bulk_load(self, relation: TemporalRelation) -> _RTreeNode:
        ordered = sorted(
            relation, key=lambda tup: (tup.start + tup.end, tup.start)
        )
        leaves: List[_RTreeNode] = []
        for begin in range(0, len(ordered), self.fanout):
            chunk = ordered[begin : begin + self.fanout]
            run = self.storage.store_tuples(chunk)
            bounds = Interval(
                min(t.start for t in chunk), max(t.end for t in chunk)
            )
            leaves.append(_RTreeNode(bounds, None, run))
            self.node_count += 1
        level = leaves
        while len(level) > 1:
            parents: List[_RTreeNode] = []
            for begin in range(0, len(level), self.fanout):
                chunk = level[begin : begin + self.fanout]
                bounds = Interval(
                    min(node.bounds.start for node in chunk),
                    max(node.bounds.end for node in chunk),
                )
                parents.append(_RTreeNode(bounds, list(chunk), None))
                self.node_count += 1
            level = parents
        return level[0]

    @property
    def height(self) -> int:
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def overlap_query(
        self, query: Interval, counters: CostCounters
    ) -> List[TemporalTuple]:
        """All candidate tuples from leaves whose MBR overlaps *query*.

        Candidates are the page contents — some are false hits; the
        caller tests and charges them.
        """
        candidates: List[TemporalTuple] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counters.charge_cpu(2)  # MBR-overlap test
            if not node.bounds.overlaps(query):
                continue
            counters.charge_partition_access()
            if node.is_leaf:
                candidates.extend(self.storage.read_run(node.run))
            else:
                stack.extend(node.children)
        return candidates

    def mbr_overlap_degree(self) -> float:
        """Average number of sibling MBRs each point of the root range is
        covered by at the leaf level — a diagnostic for the long-lived-
        tuple blow-up."""
        leaves: List[_RTreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children)
        covered = sum(leaf.bounds.duration for leaf in leaves)
        return covered / self.root.bounds.duration


class RTreeJoin(OverlapJoinAlgorithm):
    """Overlap join probing a bulk-loaded interval R-tree (``rtr``)."""

    name = "rtr"

    def __init__(self, *args, fanout: int = 16, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        tree = IntervalRTree(inner, storage, fanout=self.fanout)
        outer_run = storage.store_tuples(outer)

        pairs: List = self._begin_pairs()
        for outer_block in outer_run:
            storage.read_block(outer_block.block_id, block=outer_block)
            for outer_tuple in outer_block:
                for inner_tuple in tree.overlap_query(
                    outer_tuple.interval, counters
                ):
                    self._match(outer_tuple, inner_tuple, counters, pairs)

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "tree_nodes": tree.node_count,
                "tree_height": tree.height,
                "fanout": self.fanout,
                "mbr_overlap_degree": tree.mbr_overlap_degree(),
            },
        )
