"""Size separation spatial join (Koudas & Sevcik, SIGMOD 1997) —
paper Section 2, "Disk-Based Approaches".

The quadtree's recursive space division, flattened to files: level ``l``
divides the time range into cells of width ``range / 2^l``; a tuple is
stored at the *deepest* level whose cell completely contains it, inside
the cell given by its start point.  Each level is one file sorted by
``(cell, start)``.  Two relations are joined by synchronized scans of
every level pair: for an outer tuple, the candidates at inner level
``l`` lie in a window of at most one cell width before its start — the
bounded backtracking that makes the method IO-friendly.

As the paper notes, "due to the recursive space division, small objects
are not guaranteed to be stored at a low level" — a short tuple crossing
a high-level cell boundary floats to the top and is scanned by almost
every window, so the method has **no clustering guarantee** and can
produce many false hits.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.metrics import CostCounters

__all__ = ["SizeSeparationJoin", "level_of"]


def level_of(tup: TemporalTuple, origin: int, width: int, max_level: int) -> int:
    """Deepest level whose cell completely contains *tup*.

    Level 0 is one cell of *width*; level ``l`` has cells of width
    ``width / 2^l``.
    """
    level = 0
    cell_width = width
    while level < max_level and cell_width >= 2:
        half = cell_width // 2
        start_cell = (tup.start - origin) // half
        end_cell = (tup.end - origin) // half
        if start_cell != end_cell:
            break
        level += 1
        cell_width = half
    return level


class SizeSeparationJoin(OverlapJoinAlgorithm):
    """Level-file overlap join (``s3j``) with synchronized window scans."""

    name = "s3j"

    def __init__(self, *args, max_level: int = 12, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if max_level < 0:
            raise ValueError(f"max level must be >= 0, got {max_level}")
        self.max_level = max_level

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        span = outer.time_range.union_span(inner.time_range)
        origin = span.start
        width = 1
        while width < span.duration:
            width <<= 1

        inner_levels = self._build_levels(inner, origin, width)
        # Store each level file contiguously, keep a start-point index.
        level_files: Dict[int, "tuple[List[int], List[TemporalTuple]]"] = {}
        for level, tuples in inner_levels.items():
            tuples.sort(key=lambda tup: tup.start)
            storage.store_tuples(tuples)
            level_files[level] = ([tup.start for tup in tuples], tuples)

        outer_run = storage.store_tuples(
            sorted(outer, key=lambda tup: tup.start)
        )

        pairs: List = self._begin_pairs()
        for outer_block in outer_run:
            storage.read_block(outer_block.block_id, block=outer_block)
            for outer_tuple in outer_block:
                for level, (starts, tuples) in level_files.items():
                    cell_width = max(1, width >> level)
                    counters.charge_cpu()  # window positioning
                    # Tuples at this level span at most one cell, so any
                    # tuple starting more than a cell width before the
                    # outer start cannot reach it.
                    low = bisect.bisect_left(
                        starts, outer_tuple.start - cell_width
                    )
                    for index in range(low, len(tuples)):
                        inner_tuple = tuples[index]
                        counters.charge_cpu()  # stop test
                        if inner_tuple.start > outer_tuple.end:
                            break
                        self._match(
                            outer_tuple, inner_tuple, counters, pairs
                        )

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "levels": sorted(level_files),
                "level_sizes": {
                    level: len(tuples)
                    for level, (_, tuples) in sorted(level_files.items())
                },
                "max_level": self.max_level,
            },
        )

    def _build_levels(
        self, relation: TemporalRelation, origin: int, width: int
    ) -> Dict[int, List[TemporalTuple]]:
        levels: Dict[int, List[TemporalTuple]] = {}
        for tup in relation:
            level = level_of(tup, origin, width, self.max_level)
            levels.setdefault(level, []).append(tup)
        return levels
