"""Grace partition join — the disk-based related-work baseline
(Soo, Snodgrass, Jensen: "Efficient evaluation of the valid-time natural
join", ICDE 1994; paper Section 2, "Disk-Based Approaches").

The time range is divided into ``m`` consecutive ranges.  Every tuple is
stored in the **last** partition it overlaps (the one containing its end
point).  Partitions are joined from last to first; tuples whose interval
extends into earlier ranges are *migrated* to the next partition to be
joined there as well.  A pair is emitted in the partition containing the
later of the two start points, which makes every pair appear exactly
once.

The approach is parameter-guided (``m`` must be chosen by the
application) and, as the paper notes, "is only efficient for few
long-lived tuples, where the overhead of migration is low": every
long-lived tuple is rewritten and re-scanned once per overlapped
partition, which the counters expose as ``migrations`` plus the extra
block writes and reads.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.metrics import CostCounters

__all__ = ["GracePartitionJoin"]


class GracePartitionJoin(OverlapJoinAlgorithm):
    """Range-partitioned overlap join with backward tuple migration.

    ``partitions`` fixes ``m``; by default ``m`` is chosen so an average
    inner partition fills roughly eight blocks — a stand-in for the
    sampling step of the original paper, which sizes partitions to the
    available buffer.
    """

    name = "grace"

    def __init__(self, *args, partitions: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if partitions is not None and partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions

    def _partition_count(self, inner: TemporalRelation) -> int:
        if self.partitions is not None:
            return self.partitions
        blocks = max(
            1, inner.cardinality // self.device.tuples_per_block
        )
        return max(1, math.ceil(blocks / 8))

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        range_start = min(outer.time_range.start, inner.time_range.start)
        range_end = max(outer.time_range.end, inner.time_range.end)
        m = self._partition_count(inner)
        width = -(-(range_end - range_start + 1) // m)

        def partition_of(point: int) -> int:
            return (point - range_start) // width

        def partition_start(index: int) -> int:
            return range_start + index * width

        # Native placement: the partition containing the tuple's end.
        outer_native: List[List[TemporalTuple]] = [[] for _ in range(m)]
        inner_native: List[List[TemporalTuple]] = [[] for _ in range(m)]
        for tup in outer:
            outer_native[partition_of(tup.end)].append(tup)
        for tup in inner:
            inner_native[partition_of(tup.end)].append(tup)

        pairs: List = self._begin_pairs()
        outer_carry: List[TemporalTuple] = []
        inner_carry: List[TemporalTuple] = []
        for index in range(m - 1, -1, -1):
            start_of_range = partition_start(index)
            outer_here = outer_native[index] + outer_carry
            inner_here = inner_native[index] + inner_carry
            outer_run = storage.store_tuples(outer_here)
            inner_run = storage.store_tuples(inner_here)
            for outer_block in outer_run:
                storage.read_block(outer_block.block_id, block=outer_block)
                for inner_tuple in storage.read_run(inner_run):
                    for outer_tuple in outer_block:
                        # Deduplication: emit only in the partition that
                        # contains the later start point; earlier
                        # partitions would see the pair again after both
                        # tuples migrate.
                        counters.charge_cpu()
                        later_start = max(outer_tuple.start, inner_tuple.start)
                        if later_start < start_of_range:
                            counters.charge_extra("duplicate_candidates")
                            continue
                        self._match(outer_tuple, inner_tuple, counters, pairs)
            # Migrate tuples spanning into the previous range.
            outer_carry = [
                tup for tup in outer_here if tup.start < start_of_range
            ]
            inner_carry = [
                tup for tup in inner_here if tup.start < start_of_range
            ]
            migrated = len(outer_carry) + len(inner_carry)
            if migrated:
                counters.charge_extra("migrations", migrated)

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={"partitions": m, "partition_width": width},
        )
