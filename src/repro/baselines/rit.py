"""Relational Interval Tree overlap join — the paper's ``rit`` baseline.

Implements the RI-tree of Kriegel, Pötke and Seidl ("Managing intervals
efficiently in object-relational databases", VLDB 2000) on top of the
library's B+-tree substrate, and the interval join of Enderle, Hampel and
Seidl (SIGMOD 2004) in its index-probing form.

The *virtual backbone* is a complete binary tree over ``[1, 2^h - 1]``
whose root is ``2^{h-1}``; a node's children lie ``step = node_step / 2``
to either side.  Every interval is registered at its *fork node*: the
first backbone node contained in the interval on the path from the root.
Two B+-tree indexes store the registrations — ``lowerIndex`` on
``(fork, start)`` and ``upperIndex`` on ``(fork, end)``.

An overlap query ``[QS, QE]`` is answered in three parts (this is the
key-point/key-range decomposition of the paper's Section 2 example, where
time range ``[1, 64]`` and query ``[5, 7]`` give the point list
``{32, 16, 8}`` and the range list ``{[4, 4], [5, 7]}``):

* **left nodes** — backbone nodes ``w < QS`` passed when descending to
  ``QS``; registered intervals with ``end >= QS`` overlap,
* **right nodes** — backbone nodes ``w > QE`` passed when descending to
  ``QE``; registered intervals with ``start <= QE`` overlap,
* **inner range** — every fork in ``[QS, QE]``: all intervals registered
  there overlap; one B+-tree range scan.

The query produces **no false hits**, but long-lived tuples take fork
nodes high in the backbone, so they are re-scanned by the left/right lists
of almost every probe — the "large number of nodes must be joined" cost
the paper measures.  Tuples are stored in blocks clustered in
``lowerIndex`` order; fetches through ``upperIndex`` therefore hit blocks
out of order, modelling the paper's observation that the clustering of
the two indexes diverges for long-lived tuples.
"""

from __future__ import annotations

from typing import List, Tuple

from ..btree import BPlusTree
from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters

__all__ = ["RelationalIntervalTree", "RITJoin"]

_NEG = float("-inf")
_POS = float("inf")


class RelationalIntervalTree:
    """RI-tree over one relation: virtual backbone + two B+-tree indexes."""

    def __init__(
        self,
        relation: TemporalRelation,
        storage: StorageManager,
        btree_order: int = 32,
    ) -> None:
        self.storage = storage
        counters = storage.counters
        time_range = relation.time_range
        # Shift the domain so the smallest point maps to 1: the backbone
        # arithmetic (root = 2^{h-1}) assumes positive coordinates.
        self.offset = time_range.start - 1
        span = time_range.end - self.offset
        self.height = max(1, span.bit_length())
        self.root = 1 << (self.height - 1)
        self.lower_index = BPlusTree(order=btree_order, counters=counters)
        self.upper_index = BPlusTree(order=btree_order, counters=counters)

        # Register every tuple at its fork node, then lay the tuples out
        # in blocks clustered by (fork, start) — the lowerIndex order.
        registered: List[Tuple[int, TemporalTuple]] = []
        for tup in relation:
            fork = self.fork_node(
                tup.start - self.offset, tup.end - self.offset
            )
            registered.append((fork, tup))
        registered.sort(key=lambda entry: (entry[0], entry[1].start))

        self._runs = []
        run = storage.new_run()
        for fork, tup in registered:
            storage.append(run, tup)
            block_id = run.last_block.block_id
            self.lower_index.insert(
                (fork, tup.start), (block_id, tup)
            )
            self.upper_index.insert((fork, tup.end), (block_id, tup))
        self._runs.append(run)

    def fork_node(self, start: int, end: int) -> int:
        """First backbone node inside ``[start, end]`` from the root."""
        node = self.root
        step = self.root >> 1
        counters = self.storage.counters
        while not start <= node <= end:
            counters.charge_cpu()
            if end < node:
                node -= step
            else:
                node += step
            if step == 0:
                raise AssertionError(
                    f"backbone descent failed for [{start}, {end}]"
                )
            step >>= 1
        counters.charge_cpu()
        return node

    def left_nodes(self, qs: int) -> List[int]:
        """Backbone nodes ``w < qs`` on the descent towards ``qs``."""
        nodes: List[int] = []
        node = self.root
        step = self.root >> 1
        counters = self.storage.counters
        while node != qs and step >= 1:
            counters.charge_cpu()
            if qs < node:
                node -= step
            else:
                nodes.append(node)
                node += step
            step >>= 1
        return nodes

    def right_nodes(self, qe: int) -> List[int]:
        """Backbone nodes ``w > qe`` on the descent towards ``qe``."""
        nodes: List[int] = []
        node = self.root
        step = self.root >> 1
        counters = self.storage.counters
        while node != qe and step >= 1:
            counters.charge_cpu()
            if qe < node:
                nodes.append(node)
                node -= step
            else:
                node += step
            step >>= 1
        return nodes

    def overlap_query(self, start: int, end: int) -> List[Tuple[int, TemporalTuple]]:
        """All ``(block_id, tuple)`` registrations overlapping
        ``[start, end]`` (unshifted coordinates)."""
        qs = max(start - self.offset, 1)
        qe = min(end - self.offset, (1 << self.height) - 1)
        if qs > qe:
            return []
        matches: List[Tuple[int, TemporalTuple]] = []
        for node in self.left_nodes(qs):
            for _, entry in self.upper_index.range_scan(
                (node, start), (node, _POS)
            ):
                matches.append(entry)
        for node in self.right_nodes(qe):
            for _, entry in self.lower_index.range_scan(
                (node, _NEG), (node, end)
            ):
                matches.append(entry)
        for _, entry in self.lower_index.range_scan((qs, _NEG), (qe, _POS)):
            matches.append(entry)
        return matches


class RITJoin(OverlapJoinAlgorithm):
    """Overlap join probing an RI-tree built on the inner relation."""

    name = "rit"

    def __init__(self, *args, btree_order: int = 32, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.btree_order = btree_order

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        tree = RelationalIntervalTree(
            inner, storage, btree_order=self.btree_order
        )
        outer_run = storage.store_tuples(outer)

        pairs: List = self._begin_pairs()
        for outer_block in outer_run:
            storage.read_block(outer_block.block_id, block=outer_block)
            for outer_tuple in outer_block:
                for block_id, inner_tuple in tree.overlap_query(
                    outer_tuple.start, outer_tuple.end
                ):
                    storage.read_block(block_id)
                    pairs.append((outer_tuple, inner_tuple))

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "backbone_height": tree.height,
                "backbone_root": tree.root,
                "lower_index_height": tree.lower_index.height,
                "upper_index_height": tree.upper_index.height,
            },
        )
