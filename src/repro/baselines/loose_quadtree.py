"""Loose quadtree overlap join — the paper's ``lqt`` baseline.

The loose quadtree (Ulrich's "loose octree", Samet) relaxes the regular
quadtree by expanding every cell by a factor ``p``: a cell of width ``w``
accepts tuples contained in the expanded interval of width ``(1 + p) w``
centred on the cell.  With the widely accepted ``p = 1`` (used by the
paper), time range ``[1, 32]`` splits into expanded cells ``[1, 24]`` and
``[9, 32]``, and the boundary tuple ``[16, 17]`` — stuck at the root of a
regular quadtree — descends to a width-2 cell (``[14, 17]`` or
``[16, 19]``).

The clustering guarantee this buys is *not constant*: cell widths grow by
powers of two, so the slack between a tuple and its cell grows with the
tuple's duration.  Long-lived tuples sit in coarse cells, drag large
expanded ranges into every probe and blow up the false hit ratio — the
effect Figures 8, 10 and 11 measure.

The join is the paper's partition-based algorithm: every node of the
outer tree is joined with all relevant (expanded-cell-overlapping) nodes
of the inner tree, with density-based splitting and block storage as in
the regular variant.
"""

from __future__ import annotations

from typing import Optional

from ..core.interval import Interval
from ..storage.manager import StorageManager
from .quadtree import IntervalQuadtree, QuadtreeJoin

__all__ = ["LooseIntervalQuadtree", "LooseQuadtreeJoin"]


class LooseIntervalQuadtree(IntervalQuadtree):
    """Quadtree whose placement bounds are cells expanded by factor ``p``."""

    def __init__(
        self,
        time_range: Interval,
        storage: StorageManager,
        block_capacity: Optional[int] = None,
        expansion: float = 1.0,
    ) -> None:
        if expansion <= 0:
            raise ValueError(
                f"cell expansion factor p must be > 0, got {expansion}"
            )
        self.expansion = expansion
        self._root_cell: Optional[Interval] = None
        super().__init__(time_range, storage, block_capacity=block_capacity)

    def _placement_bounds(self, cell: Interval) -> Interval:
        """Expanded cell ``[a - p*w/2, b + p*w/2]``, clipped to the root."""
        margin = int(self.expansion * cell.duration) // 2
        expanded = cell.expand(margin, margin)
        if self._root_cell is None:
            # First call is for the root itself: remember it as the clip
            # boundary for every deeper cell.
            self._root_cell = cell
            return expanded
        return Interval(
            max(expanded.start, self._root_cell.start),
            min(expanded.end, self._root_cell.end),
        )

    @classmethod
    def build(
        cls,
        relation,
        storage: StorageManager,
        block_capacity: Optional[int] = None,
        expansion: float = 1.0,
    ) -> "LooseIntervalQuadtree":
        tree = cls(
            relation.time_range,
            storage,
            block_capacity=block_capacity,
            expansion=expansion,
        )
        for tup in relation:
            tree.insert(tup)
        return tree


class LooseQuadtreeJoin(QuadtreeJoin):
    """Partition-based join of two loose quadtrees (``lqt``), ``p = 1``."""

    name = "lqt"
    tree_class = LooseIntervalQuadtree

    def __init__(
        self,
        *args,
        block_capacity: Optional[int] = None,
        expansion: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, block_capacity=block_capacity, **kwargs)
        self.expansion = expansion

    def _build_tree(self, relation, storage: StorageManager):
        return LooseIntervalQuadtree.build(
            relation,
            storage,
            block_capacity=self.block_capacity,
            expansion=self.expansion,
        )
