"""Quadtree overlap join — the 1-D regular quadtree baseline.

Following the paper's convention (footnote 1), the second spatial
dimension is dropped, so the "quadtree" over intervals is a binary trie
over the time range: each cell splits into two half-width child cells.
A tuple lives in the smallest cell that completely covers its interval —
tuples crossing a split boundary therefore get stuck high in the tree
(time range ``[1, 32]`` splits into ``[1, 16]``/``[17, 32]``, and a tuple
``[16, 17]`` stays in the root), which is why the quadtree has no
clustering guarantee and produces many false hits for overlap queries.

As in the paper's implementation, splitting is *density based*: a node
materialises children and pushes tuples down only when its storage block
overflows, which keeps blocks well filled at the price of extra false
hits.  The join processes every node of the outer tree against all inner
nodes whose cells overlap it.

The paper reports that the loose quadtree outperformed the regular
quadtree in every experiment (so the latter is omitted from its plots);
both are provided here, and the benchmarks can include either.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.interval import Interval
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.block import BlockRun
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters

__all__ = ["QuadtreeNode", "IntervalQuadtree", "QuadtreeJoin"]


def _padded_width(duration: int) -> int:
    """Smallest power of two >= duration (cells halve cleanly)."""
    width = 1
    while width < duration:
        width <<= 1
    return width


class QuadtreeNode:
    """One cell of the trie: its regular cell, the *placement cell* tuples
    must fit in (equal to the regular cell here; expanded in the loose
    variant), stored tuples and up to two children."""

    __slots__ = ("cell", "bounds", "run", "left", "right")

    def __init__(self, cell: Interval, bounds: Interval, run: BlockRun) -> None:
        self.cell = cell
        self.bounds = bounds
        self.run = run
        self.left: Optional["QuadtreeNode"] = None
        self.right: Optional["QuadtreeNode"] = None

    @property
    def is_split(self) -> bool:
        return self.left is not None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(cell={self.cell.as_tuple()}, "
            f"n={self.run.tuple_count})"
        )


class IntervalQuadtree:
    """1-D quadtree with density-based splitting.

    ``block_capacity`` tuples fit per node block; an overflowing leaf
    splits and redistributes the tuples that fit a child.  Tuples that fit
    no child (boundary crossers) stay and may grow the node's block run.
    """

    def __init__(
        self,
        time_range: Interval,
        storage: StorageManager,
        block_capacity: Optional[int] = None,
    ) -> None:
        self.storage = storage
        self.block_capacity = (
            block_capacity
            if block_capacity is not None
            else storage.device.tuples_per_block
        )
        width = _padded_width(time_range.duration)
        root_cell = Interval(time_range.start, time_range.start + width - 1)
        self.root = self._new_node(root_cell)
        self.node_count = 1

    # -- policy hooks (overridden by the loose variant) ------------------------

    def _placement_bounds(self, cell: Interval) -> Interval:
        """The interval a tuple must be contained in to live at this cell.

        The regular quadtree uses the cell itself.
        """
        return cell

    def _new_node(self, cell: Interval) -> QuadtreeNode:
        return QuadtreeNode(
            cell=cell,
            bounds=self._placement_bounds(cell),
            run=self.storage.new_run(),
        )

    # -- construction -----------------------------------------------------------

    def _child_for(
        self, node: QuadtreeNode, tup: TemporalTuple
    ) -> Optional[QuadtreeNode]:
        """The child *tup* can be pushed into, or ``None`` if it must stay."""
        if node.left is None or node.right is None:
            return None
        midpoint = (tup.start + tup.end) // 2
        child = node.left if midpoint <= node.left.cell.end else node.right
        if child.bounds.start <= tup.start and tup.end <= child.bounds.end:
            return child
        return None

    def _split(self, node: QuadtreeNode) -> None:
        cell = node.cell
        middle = cell.start + cell.duration // 2 - 1
        node.left = self._new_node(Interval(cell.start, middle))
        node.right = self._new_node(Interval(middle + 1, cell.end))
        self.node_count += 2
        # Redistribute: rebuild the node's run keeping only the tuples
        # that fit no child.
        staying = self.storage.new_run()
        for tup in node.run.iter_tuples():
            child = self._child_for(node, tup)
            if child is None:
                self.storage.append(staying, tup)
            else:
                self._place(child, tup)
        node.run = staying

    def _place(self, node: QuadtreeNode, tup: TemporalTuple) -> None:
        while True:
            if node.is_split:
                child = self._child_for(node, tup)
                if child is None:
                    self.storage.append(node.run, tup)
                    return
                node = child
                continue
            if (
                node.run.tuple_count >= self.block_capacity
                and node.cell.duration > 1
            ):
                self._split(node)
                continue
            self.storage.append(node.run, tup)
            return

    def insert(self, tup: TemporalTuple) -> None:
        """Insert one tuple (density-based descent from the root)."""
        self._place(self.root, tup)

    @classmethod
    def build(
        cls,
        relation: TemporalRelation,
        storage: StorageManager,
        block_capacity: Optional[int] = None,
        **kwargs,
    ) -> "IntervalQuadtree":
        tree = cls(
            relation.time_range,
            storage,
            block_capacity=block_capacity,
            **kwargs,
        )
        for tup in relation:
            tree.insert(tup)
        return tree

    # -- traversal -----------------------------------------------------------------

    def iter_nodes(self) -> Iterator[QuadtreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.is_split:
                stack.append(node.right)
                stack.append(node.left)

    def iter_occupied(self) -> Iterator[QuadtreeNode]:
        return (node for node in self.iter_nodes() if node.run.tuple_count)

    def iter_overlapping(
        self, query: Interval, counters: CostCounters
    ) -> Iterator[QuadtreeNode]:
        """Nodes whose placement bounds overlap *query* (candidates that
        may hold overlapping tuples)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            counters.charge_cpu(2)
            if not node.bounds.overlaps(query):
                continue
            yield node
            if node.is_split:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def height(self) -> int:
        def depth(node: Optional[QuadtreeNode]) -> int:
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self.root)


class QuadtreeJoin(OverlapJoinAlgorithm):
    """Partition-based join of two regular quadtrees (``qt``)."""

    name = "qt"
    tree_class = IntervalQuadtree

    def __init__(self, *args, block_capacity: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.block_capacity = block_capacity

    def _build_tree(
        self, relation: TemporalRelation, storage: StorageManager
    ) -> IntervalQuadtree:
        return self.tree_class.build(
            relation, storage, block_capacity=self.block_capacity
        )

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        outer_tree = self._build_tree(outer, storage)
        inner_tree = self._build_tree(inner, storage)

        pairs: List = self._begin_pairs()
        for outer_node in outer_tree.iter_occupied():
            outer_tuples = list(storage.read_run(outer_node.run))
            for inner_node in inner_tree.iter_overlapping(
                outer_node.bounds, counters
            ):
                if inner_node.run.tuple_count == 0:
                    continue
                counters.charge_partition_access()
                for inner_tuple in storage.read_run(inner_node.run):
                    for outer_tuple in outer_tuples:
                        self._match(outer_tuple, inner_tuple, counters, pairs)

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "outer_nodes": outer_tree.node_count,
                "inner_nodes": inner_tree.node_count,
                "outer_height": outer_tree.height,
                "inner_height": inner_tree.height,
            },
        )
