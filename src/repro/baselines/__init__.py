"""Baseline overlap-join algorithms the paper evaluates against.

``lqt`` loose quadtree, ``qt`` regular quadtree, ``rit`` relational
interval tree, ``sgt`` segment tree, ``smj`` sort-merge join — plus the
``grace`` partition join from related work and the block nested-loop
correctness oracle ``nlj``.
"""

from typing import Dict, Type

from ..core.base import OverlapJoinAlgorithm
from ..core.join import OIPJoin
from .grace import GracePartitionJoin
from .loose_quadtree import LooseIntervalQuadtree, LooseQuadtreeJoin
from .nested_loop import NestedLoopJoin
from .quadtree import IntervalQuadtree, QuadtreeJoin, QuadtreeNode
from .rit import RelationalIntervalTree, RITJoin
from .rtree import IntervalRTree, RTreeJoin
from .s3j import SizeSeparationJoin
from .spatial_grid import SpatialGridJoin
from .segment_tree import SegmentTree, SegmentTreeJoin, elementary_segments
from .sort_merge import SortMergeJoin

#: The algorithms of the paper's evaluation (plus extras), by short name.
ALGORITHMS: Dict[str, Type[OverlapJoinAlgorithm]] = {
    "oip": OIPJoin,
    "lqt": LooseQuadtreeJoin,
    "qt": QuadtreeJoin,
    "rit": RITJoin,
    "sgt": SegmentTreeJoin,
    "smj": SortMergeJoin,
    "grace": GracePartitionJoin,
    "rtr": RTreeJoin,
    "s3j": SizeSeparationJoin,
    "spj": SpatialGridJoin,
    "nlj": NestedLoopJoin,
}

__all__ = [
    "ALGORITHMS",
    "NestedLoopJoin",
    "SortMergeJoin",
    "QuadtreeJoin",
    "QuadtreeNode",
    "IntervalQuadtree",
    "LooseQuadtreeJoin",
    "LooseIntervalQuadtree",
    "SegmentTree",
    "SegmentTreeJoin",
    "elementary_segments",
    "RelationalIntervalTree",
    "RITJoin",
    "GracePartitionJoin",
    "IntervalRTree",
    "RTreeJoin",
    "SizeSeparationJoin",
    "SpatialGridJoin",
]
