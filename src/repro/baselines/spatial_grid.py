"""Spatially partitioned temporal join (Lu, Ooi, Tan, VLDB 1994) —
paper Section 2, "Parameter-Guided Approaches".

Interval data is mapped to points in a two-dimensional plane — a tuple
``[TS, TE]`` becomes the point ``(TS, TE)`` — and the plane is divided
into a ``g x g`` grid of regions (only the upper triangle ``TE >= TS``
is populated).  Two relations are joined by determining, for each
region of the outer relation, the *relevant* regions of the inner
relation: an inner region can contain overlapping tuples iff its start
range begins no later than the outer region's largest end and its end
range finishes no earlier than the outer region's smallest start.

The method is **parameter-guided**: the number of regions ``g`` "must be
specified by the application".  Long-lived tuples map to points far off
the diagonal, spreading the populated area and increasing the number of
region pairs to scan — the degradation the paper notes for this family.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.relation import TemporalRelation, TemporalTuple
from ..storage.block import BlockRun
from ..storage.metrics import CostCounters

__all__ = ["SpatialGridJoin"]


class SpatialGridJoin(OverlapJoinAlgorithm):
    """Grid-of-regions overlap join over the (start, end) plane (``spj``)."""

    name = "spj"

    def __init__(self, *args, grid_size: int = 16, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if grid_size < 1:
            raise ValueError(f"grid size must be >= 1, got {grid_size}")
        self.grid_size = grid_size

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        span = outer.time_range.union_span(inner.time_range)
        origin = span.start
        cell = max(1, -(-span.duration // self.grid_size))
        g = self.grid_size

        def region_of(tup: TemporalTuple) -> Tuple[int, int]:
            return (
                min((tup.start - origin) // cell, g - 1),
                min((tup.end - origin) // cell, g - 1),
            )

        outer_regions = self._partition(outer, region_of)
        inner_regions: Dict[Tuple[int, int], BlockRun] = {
            region: storage.store_tuples(tuples)
            for region, tuples in self._partition(inner, region_of).items()
        }

        pairs: List = self._begin_pairs()
        for (outer_s, outer_e), outer_tuples in outer_regions.items():
            outer_run = storage.store_tuples(outer_tuples)
            cached = list(storage.read_run(outer_run))
            for (inner_s, inner_e), inner_run in inner_regions.items():
                # Region-level relevance: the inner region's starts begin
                # in cell inner_s (min start = inner_s*cell) and its ends
                # finish in cell inner_e (max end = (inner_e+1)*cell - 1).
                counters.charge_cpu(2)
                if inner_s > outer_e or inner_e < outer_s:
                    continue
                counters.charge_partition_access()
                for inner_tuple in storage.read_run(inner_run):
                    for outer_tuple in cached:
                        self._match(
                            outer_tuple, inner_tuple, counters, pairs
                        )

        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "grid_size": g,
                "cell_width": cell,
                "outer_regions": len(outer_regions),
                "inner_regions": len(inner_regions),
            },
        )

    @staticmethod
    def _partition(
        relation: TemporalRelation, region_of
    ) -> Dict[Tuple[int, int], List[TemporalTuple]]:
        regions: Dict[Tuple[int, int], List[TemporalTuple]] = {}
        for tup in relation:
            regions.setdefault(region_of(tup), []).append(tup)
        return regions
