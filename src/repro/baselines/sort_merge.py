"""Sort-merge overlap join — the paper's ``smj`` baseline (Section 7).

The paper's variant sorts the two relations by endpoint and exploits the
sort orders in both directions:

* the inner sort order (by start point) is used to *stop scanning* as
  soon as an inner tuple's start point exceeds the current outer tuple's
  end point, and
* the outer sort order is used to *limit backtracking* to the maximum
  tuple duration in the inner relation: an inner tuple whose start point
  lies more than ``l_s - 1`` points before the outer tuple's start cannot
  reach it.

Tuples inside the scan window that do not actually overlap are the false
hits of this algorithm; their number grows with the longest tuple
duration, which is why "the performance of the sort-merge join is highly
affected by the longest tuple in the dataset" (Section 7) and why its AFR
reaches 30-50% on the real datasets.  Both relations are stored in blocks
and scanned block-wise, as the paper's implementation does.
"""

from __future__ import annotations

import bisect
from typing import List

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.relation import TemporalRelation
from ..storage.metrics import CostCounters

__all__ = ["SortMergeJoin"]


class SortMergeJoin(OverlapJoinAlgorithm):
    """Endpoint-sorted merge join with a duration-bounded scan window."""

    name = "smj"

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        storage = self._storage(counters)
        outer_sorted = sorted(outer, key=lambda t: (t.start, t.end))
        inner_sorted = sorted(inner, key=lambda t: (t.start, t.end))
        outer_run = storage.store_tuples(outer_sorted)
        inner_run = storage.store_tuples(inner_sorted)
        inner_blocks = list(inner_run)
        # First start point per inner block: the block-level index the
        # merge uses to find where a scan window begins.
        block_first_start = [block.tuples[0].start for block in inner_blocks]
        max_inner_duration = inner.max_duration

        pairs: List = self._begin_pairs()
        for outer_block in outer_run:
            storage.read_block(outer_block.block_id, block=outer_block)
            for outer_tuple in outer_block:
                # Backtracking bound: inner tuples with
                # start <= outer.end can only overlap when their start is
                # within l_s - 1 points of outer.start.
                window_low = outer_tuple.start - max_inner_duration + 1
                start_block = max(
                    0, bisect.bisect_right(block_first_start, window_low) - 1
                )
                counters.charge_cpu()  # window positioning comparison
                for block_index in range(start_block, len(inner_blocks)):
                    block = inner_blocks[block_index]
                    counters.charge_cpu()  # stop test on block boundary
                    if block_first_start[block_index] > outer_tuple.end:
                        break
                    storage.read_block(block.block_id, block=block)
                    stop = False
                    for inner_tuple in block:
                        counters.charge_cpu()  # stop test (start > end?)
                        if inner_tuple.start > outer_tuple.end:
                            stop = True
                            break
                        counters.charge_cpu()  # backtracking-bound test
                        if inner_tuple.start < window_low:
                            # Fetched with the block but provably unable
                            # to overlap: a false hit of the scan window.
                            counters.charge_false_hit()
                            continue
                        self._match(outer_tuple, inner_tuple, counters, pairs)
                    if stop:
                        break
        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details={
                "outer_blocks": len(outer_run),
                "inner_blocks": len(inner_blocks),
                "max_inner_duration": max_inner_duration,
            },
        )
