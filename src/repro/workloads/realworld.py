"""Synthetic stand-ins for the paper's real-world datasets
(Section 7, Table 2, Figure 9).

The originals are not redistributable:

* **Incumbent** — 16 years of employee-project assignments at day
  granularity (83,852 tuples, range 5,895 days, durations 1-574, avg 184,
  2,689 distinct points).  Assignments start in waves (semesters) and the
  density ramps up over the first years.
* **Feed** — 24 years of nutritive measurements at day granularity
  (3,697,957 tuples, range 8,610 days, avg duration 432); a measurement
  stays valid until the next one for the same feed/nutrient, producing an
  exponential-like duration tail that reaches the full range (max 8,589).
* **Webkit** — 11 years of file-change history at millisecond granularity
  (1,213,476 tuples, range ~2^39 ms, durations 2^10-2^39, avg 2^34,
  110,165 distinct points); intervals are "periods when a file did not
  change", so most files have few, very long intervals.

Each generator reproduces the published time range, duration profile
(min/avg/max and the shape of the Figure 9 histogram) and the skewed
temporal density, at a configurable cardinality (scaled down by default —
pure Python cannot join 3.7M tuples in benchmark time).  The substitution
is recorded in DESIGN.md; the Table 2/Figure 9 bench prints paper values
next to stand-in values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.relation import TemporalRelation, TemporalTuple

__all__ = [
    "PAPER_DATASET_PROPERTIES",
    "PaperDatasetRow",
    "incumbent_standin",
    "feed_standin",
    "webkit_standin",
    "DATASET_GENERATORS",
]


@dataclass(frozen=True)
class PaperDatasetRow:
    """The published Table 2 row for one dataset."""

    name: str
    cardinality: int
    time_range: int
    min_duration: int
    max_duration: int
    avg_duration: int
    distinct_points: int


#: Table 2 as printed in the paper (Webkit entries are powers of two).
PAPER_DATASET_PROPERTIES: Dict[str, PaperDatasetRow] = {
    "incumbent": PaperDatasetRow(
        "incumbent", 83_852, 5_895, 1, 574, 184, 2_689
    ),
    "feed": PaperDatasetRow(
        "feed", 3_697_957, 8_610, 1, 8_589, 432, 5_584
    ),
    "webkit": PaperDatasetRow(
        "webkit", 1_213_476, 2**39, 2**10, 2**39, 2**34, 110_165
    ),
}


def _bounded(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _pin_time_range(
    tuples: List[TemporalTuple], low: int, high: int
) -> None:
    """Force the realised time range to exactly [low, high] so the
    stand-in matches the published Table 2 range: the earliest tuple is
    stretched back to *low* and the latest forward to *high*."""
    if not tuples:
        return
    earliest = min(range(len(tuples)), key=lambda i: tuples[i].start)
    t = tuples[earliest]
    tuples[earliest] = TemporalTuple(low, max(t.end, low), t.payload)
    latest = max(range(len(tuples)), key=lambda i: tuples[i].end)
    t = tuples[latest]
    tuples[latest] = TemporalTuple(min(t.start, high), high, t.payload)


def incumbent_standin(
    cardinality: int = 8_000,
    seed: int = 0,
    name: str = "incumbent",
) -> TemporalRelation:
    """Incumbent stand-in: day granularity over 5,895 days.

    Assignments begin at semester-like waves (twice a year), the workforce
    ramps up over the first half of the period, and durations follow a
    geometric-like distribution with mean ~184 days capped at 574 — the
    published min/avg/max.  Start points snap to a coarse grid, keeping
    the number of distinct time points far below the range, as in the
    original.
    """
    rng = random.Random(seed)
    row = PAPER_DATASET_PROPERTIES["incumbent"]
    span = row.time_range
    wave_step = 182  # two hiring waves per year
    waves = list(range(1, span - row.max_duration, wave_step))
    tuples: List[TemporalTuple] = []
    for index in range(cardinality):
        # Later waves are more likely: density ramps up over time.
        wave = waves[
            min(
                len(waves) - 1,
                int(len(waves) * max(rng.random(), rng.random())),
            )
        ]
        start = wave + 7 * rng.randint(0, 12)  # weekly reporting grid
        duration = _bounded(
            int(rng.expovariate(1.0 / row.avg_duration)) + 1,
            row.min_duration,
            row.max_duration,
        )
        end = _bounded(start + duration - 1, start, span)
        tuples.append(TemporalTuple(start, end, index))
    _pin_time_range(tuples, 1, row.time_range)
    return TemporalRelation(tuples, name=name)


def feed_standin(
    cardinality: int = 20_000,
    seed: int = 0,
    name: str = "feed",
) -> TemporalRelation:
    """Feed stand-in: day granularity over 8,610 days.

    Measurement validity intervals: for each simulated feed/nutrient
    series, consecutive measurement dates delimit the intervals, so
    durations are inter-measurement gaps — mostly short with an
    exponential tail, and the final interval of a series can stretch to
    the end of the range (the published maximum of 8,589 days).
    """
    rng = random.Random(seed)
    row = PAPER_DATASET_PROPERTIES["feed"]
    span = row.time_range
    tuples: List[TemporalTuple] = []
    index = 0
    series_mean_gap = row.avg_duration * 1.02
    while index < cardinality:
        # One measurement series: a feed/nutrient pair measured at
        # irregular dates from a random first measurement onward.
        position = rng.randint(1, int(span * 0.95))
        while index < cardinality and position < span:
            gap = int(rng.expovariate(1.0 / series_mean_gap)) + 1
            end = _bounded(position + gap - 1, position, span)
            if rng.random() < 0.002:
                # A series that was never re-measured: valid to the end.
                end = span
            tuples.append(TemporalTuple(position, end, index))
            index += 1
            position = end + 1
    _pin_time_range(tuples, 1, span)
    return TemporalRelation(tuples, name=name)


def webkit_standin(
    cardinality: int = 12_000,
    seed: int = 0,
    name: str = "webkit",
) -> TemporalRelation:
    """Webkit stand-in: millisecond granularity over ~2^39 ms.

    Every simulated file contributes the no-change intervals between its
    commits.  Commit counts per file are Zipf-like (few hot files, many
    cold ones), so most intervals are enormous — the published average
    duration is 2^34 ms, a sixth of the whole range.
    """
    rng = random.Random(seed)
    row = PAPER_DATASET_PROPERTIES["webkit"]
    span = row.time_range
    min_duration = row.min_duration
    tuples: List[TemporalTuple] = []
    index = 0
    while index < cardinality:
        # A file created at a random time, modified a Zipf-ish number of
        # times afterwards.
        created = 1 + int((span - min_duration - 1) * max(rng.random(), rng.random()))
        changes = min(int(rng.paretovariate(1.1)), 64)
        position = created
        for _ in range(changes):
            if index >= cardinality or position >= span:
                break
            # Hot files commit in rapid bursts; cold files rest for eons.
            mean_gap = (
                row.avg_duration / 500
                if rng.random() < 0.25
                else row.avg_duration * 0.9
            )
            gap = int(rng.expovariate(1.0 / mean_gap)) + min_duration
            end = _bounded(position + gap - 1, position, span)
            tuples.append(TemporalTuple(position, end, index))
            index += 1
            position = end + 1
        if index < cardinality and position < span and rng.random() < 0.1:
            # The interval since the last change, open until "now".
            tuples.append(TemporalTuple(position, span, index))
            index += 1
    _pin_time_range(tuples, 1, span)
    return TemporalRelation(tuples, name=name)


#: Generator per dataset name, with the default scaled cardinalities.
DATASET_GENERATORS: Dict[str, Callable[..., TemporalRelation]] = {
    "incumbent": incumbent_standin,
    "feed": feed_standin,
    "webkit": webkit_standin,
}
