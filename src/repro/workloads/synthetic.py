"""Synthetic workload generators (paper Section 7).

The paper's synthetic experiments draw interval data over a time range of
``[1, 2^24]`` with controlled duration distributions:

* **long-lived mixtures** (Figure 8(a)): a share of long-lived tuples with
  durations up to 8% of the time range (average 4%) mixed with short
  tuples of duration up to 0.01%;
* **maximum-duration sweeps** (Figure 8(b)): all durations uniform up to a
  varying maximum;
* **scaling series** (Figure 11, Table 1): growing cardinalities at fixed
  duration profile (0.1% of the range for the disk experiment).

Everything is seeded and deterministic: the same parameters always yield
the same relation, so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import List

from ..core.interval import Interval
from ..core.relation import TemporalRelation, TemporalTuple

__all__ = [
    "PAPER_TIME_RANGE",
    "uniform_relation",
    "long_lived_mixture",
    "point_relation",
    "clustered_relation",
    "scaling_pair",
]

#: The paper's synthetic time range, [1, 2^24].
PAPER_TIME_RANGE = Interval(1, 2**24)


def _duration(rng: random.Random, max_duration: int) -> int:
    return rng.randint(1, max(1, max_duration))


def uniform_relation(
    cardinality: int,
    time_range: Interval = PAPER_TIME_RANGE,
    max_duration_fraction: float = 0.001,
    seed: int = 0,
    name: str = "uniform",
) -> TemporalRelation:
    """Relation with uniform start points and durations uniform in
    ``[1, max_duration_fraction * |U|]``, clipped to the time range."""
    if cardinality < 0:
        raise ValueError(f"cardinality must be >= 0, got {cardinality}")
    if not 0.0 < max_duration_fraction <= 1.0:
        raise ValueError(
            "max duration fraction must be in (0, 1], got "
            f"{max_duration_fraction}"
        )
    rng = random.Random(seed)
    max_duration = max(1, int(max_duration_fraction * time_range.duration))
    tuples: List[TemporalTuple] = []
    for index in range(cardinality):
        start = rng.randint(time_range.start, time_range.end)
        end = min(start + _duration(rng, max_duration) - 1, time_range.end)
        tuples.append(TemporalTuple(start, end, index))
    return TemporalRelation(tuples, name=name)


def long_lived_mixture(
    cardinality: int,
    long_fraction: float,
    time_range: Interval = PAPER_TIME_RANGE,
    long_max_fraction: float = 0.08,
    short_max_fraction: float = 0.0001,
    seed: int = 0,
    name: str = "mixture",
) -> TemporalRelation:
    """The Figure 8(a) workload: ``long_fraction`` of the tuples are
    long-lived (duration uniform up to ``long_max_fraction`` of the range,
    hence averaging half of it — the paper's 8% max / 4% average), the
    rest short-lived (up to ``short_max_fraction``)."""
    if not 0.0 <= long_fraction <= 1.0:
        raise ValueError(
            f"long fraction must be in [0, 1], got {long_fraction}"
        )
    rng = random.Random(seed)
    span = time_range.duration
    long_max = max(1, int(long_max_fraction * span))
    short_max = max(1, int(short_max_fraction * span))
    long_count = round(cardinality * long_fraction)
    tuples: List[TemporalTuple] = []
    for index in range(cardinality):
        max_duration = long_max if index < long_count else short_max
        start = rng.randint(time_range.start, time_range.end)
        end = min(start + _duration(rng, max_duration) - 1, time_range.end)
        tuples.append(TemporalTuple(start, end, index))
    rng.shuffle(tuples)
    return TemporalRelation(tuples, name=name)


def point_relation(
    cardinality: int,
    time_range: Interval = PAPER_TIME_RANGE,
    seed: int = 0,
    name: str = "points",
) -> TemporalRelation:
    """Duration-1 tuples only (the regime where the paper's summary says
    the sort-merge join wins)."""
    rng = random.Random(seed)
    return TemporalRelation(
        (
            TemporalTuple(point, point, index)
            for index, point in enumerate(
                rng.randint(time_range.start, time_range.end)
                for _ in range(cardinality)
            )
        ),
        name=name,
    )


def clustered_relation(
    cardinality: int,
    time_range: Interval = PAPER_TIME_RANGE,
    cluster_count: int = 8,
    cluster_spread_fraction: float = 0.01,
    max_duration_fraction: float = 0.001,
    seed: int = 0,
    name: str = "clustered",
) -> TemporalRelation:
    """Start points clustered around ``cluster_count`` centres — a skewed
    temporal density like the real datasets' (Figure 9 left column)."""
    if cluster_count < 1:
        raise ValueError(f"cluster count must be >= 1, got {cluster_count}")
    rng = random.Random(seed)
    span = time_range.duration
    spread = max(1, int(cluster_spread_fraction * span))
    max_duration = max(1, int(max_duration_fraction * span))
    centres = [
        rng.randint(time_range.start, time_range.end)
        for _ in range(cluster_count)
    ]
    tuples: List[TemporalTuple] = []
    for index in range(cardinality):
        centre = rng.choice(centres)
        start = min(
            max(time_range.start, int(rng.gauss(centre, spread))),
            time_range.end,
        )
        end = min(start + _duration(rng, max_duration) - 1, time_range.end)
        tuples.append(TemporalTuple(start, end, index))
    return TemporalRelation(tuples, name=name)


def scaling_pair(
    inner_cardinality: int,
    outer_percent: float = 1.0,
    time_range: Interval = PAPER_TIME_RANGE,
    max_duration_fraction: float = 0.001,
    seed: int = 0,
) -> "tuple[TemporalRelation, TemporalRelation]":
    """The Figure 11 configuration: an inner relation of the given size
    and an outer relation of ``outer_percent`` % of it, same duration
    profile, independent seeds."""
    outer_cardinality = max(1, round(inner_cardinality * outer_percent / 100))
    outer = uniform_relation(
        outer_cardinality,
        time_range=time_range,
        max_duration_fraction=max_duration_fraction,
        seed=seed,
        name="outer",
    )
    inner = uniform_relation(
        inner_cardinality,
        time_range=time_range,
        max_duration_fraction=max_duration_fraction,
        seed=seed + 1,
        name="inner",
    )
    return outer, inner
