"""Workload generators: synthetic interval data (Section 7), synthetic
stand-ins for the paper's real-world datasets (Table 2 / Figure 9), and
dataset statistics."""

from .realworld import (
    DATASET_GENERATORS,
    PAPER_DATASET_PROPERTIES,
    PaperDatasetRow,
    feed_standin,
    incumbent_standin,
    webkit_standin,
)
from .stats import (
    DatasetProperties,
    dataset_properties,
    duration_histogram,
    temporal_distribution,
)
from .synthetic import (
    PAPER_TIME_RANGE,
    clustered_relation,
    long_lived_mixture,
    point_relation,
    scaling_pair,
    uniform_relation,
)

__all__ = [
    "PAPER_TIME_RANGE",
    "uniform_relation",
    "long_lived_mixture",
    "point_relation",
    "clustered_relation",
    "scaling_pair",
    "PAPER_DATASET_PROPERTIES",
    "PaperDatasetRow",
    "incumbent_standin",
    "feed_standin",
    "webkit_standin",
    "DATASET_GENERATORS",
    "DatasetProperties",
    "dataset_properties",
    "duration_histogram",
    "temporal_distribution",
]
