"""Dataset statistics: the Table 2 properties and Figure 9 distributions.

Table 2 characterises each real-world dataset by cardinality, time range,
minimum/maximum/average tuple duration and the number of distinct time
points; Figure 9 plots, for each dataset, the number of overlapping tuple
intervals per time point (temporal distribution) and a log-scale
histogram of tuple durations.  This module computes all of them for any
:class:`~repro.core.relation.TemporalRelation`, so the stand-in
generators can be validated against the published numbers and the
Figure 9 bench can print the same curves.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List

from ..core.relation import TemporalRelation

__all__ = [
    "DatasetProperties",
    "dataset_properties",
    "duration_histogram",
    "temporal_distribution",
]


@dataclass(frozen=True)
class DatasetProperties:
    """One row of Table 2."""

    name: str
    cardinality: int
    time_range: int
    min_duration: int
    max_duration: int
    avg_duration: float
    distinct_points: int

    def as_row(self) -> List[str]:
        """Formatted cells in Table 2's column order."""
        return [
            self.name,
            f"{self.cardinality:,}",
            f"{self.time_range:,}",
            f"{self.min_duration:,}",
            f"{self.max_duration:,}",
            f"{self.avg_duration:,.0f}",
            f"{self.distinct_points:,}",
        ]


def dataset_properties(relation: TemporalRelation) -> DatasetProperties:
    """Compute the Table 2 row for *relation*."""
    if relation.is_empty:
        raise ValueError("cannot compute properties of an empty relation")
    durations = [tup.duration for tup in relation]
    distinct = set()
    for tup in relation:
        distinct.add(tup.start)
        distinct.add(tup.end)
    return DatasetProperties(
        name=relation.name,
        cardinality=relation.cardinality,
        time_range=relation.time_range_duration,
        min_duration=min(durations),
        max_duration=max(durations),
        avg_duration=sum(durations) / len(durations),
        distinct_points=len(distinct),
    )


def duration_histogram(
    relation: TemporalRelation, bins: int = 20
) -> List[float]:
    """Figure 9 (right column): percentage of tuples per duration bin.

    Bin ``i`` covers durations in ``(i, i+1]`` twentieths (by default) of
    the time range; the values sum to 100.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if relation.is_empty:
        return [0.0] * bins
    span = relation.time_range_duration
    counts = [0] * bins
    for tup in relation:
        fraction = tup.duration / span
        index = min(bins - 1, int(fraction * bins))
        counts[index] += 1
    return [100.0 * count / relation.cardinality for count in counts]


def temporal_distribution(
    relation: TemporalRelation, sample_points: int = 50
) -> List[float]:
    """Figure 9 (left column): percentage of tuples whose interval covers
    each of ``sample_points`` evenly spaced time points."""
    if sample_points < 1:
        raise ValueError(
            f"sample points must be >= 1, got {sample_points}"
        )
    if relation.is_empty:
        return [0.0] * sample_points
    time_range = relation.time_range
    step = max(1, time_range.duration // sample_points)
    points = [
        min(time_range.start + index * step, time_range.end)
        for index in range(sample_points)
    ]
    starts = sorted(tup.start for tup in relation)
    ends = sorted(tup.end for tup in relation)
    values = []
    for point in points:
        started = bisect.bisect_right(starts, point)
        ended = bisect.bisect_left(ends, point)
        values.append(100.0 * (started - ended) / relation.cardinality)
    return values
