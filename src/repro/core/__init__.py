"""The paper's primary contribution: OIP partitioning and the OIPJOIN.

Modules
-------
``interval``    Discrete time domain and closed intervals (Section 3).
``relation``    Temporal relations with tuple timestamping (Section 3).
``oip``         OIP configuration and partition math (Section 4.1).
``lazy_list``   Lazy partition list + ``OIPCREATE`` (Section 4.2/4.3).
``granules``    Cost model and optimal ``k`` derivation (Section 6.2).
``join``        The OIPJOIN algorithm (Section 6.1).
``base``        Shared join-algorithm interface and result type.
"""

from .base import JoinResult, OverlapJoinAlgorithm, join_pair_key
from .granules import (
    JoinCostModel,
    KDerivation,
    approximate_k,
    cost_model_for,
    derive_k,
    exact_k,
)
from .incremental import IncrementalOIP
from .interval import Interval, IntervalError
from .join import OIPJoin
from .lazy_list import LazyPartitionList, PartitionNode, oip_create
from .oip import (
    OIPConfiguration,
    possible_partition_count,
    tightening_factor,
    used_partition_bound,
)
from .relation import EmptyRelationError, TemporalRelation, TemporalTuple
from .statistics import (
    DurationHistogram,
    HistogramCostModel,
    histogram_cost_model,
)

__all__ = [
    "Interval",
    "IntervalError",
    "TemporalRelation",
    "TemporalTuple",
    "EmptyRelationError",
    "OIPConfiguration",
    "possible_partition_count",
    "used_partition_bound",
    "tightening_factor",
    "LazyPartitionList",
    "PartitionNode",
    "oip_create",
    "JoinCostModel",
    "KDerivation",
    "derive_k",
    "approximate_k",
    "exact_k",
    "cost_model_for",
    "OIPJoin",
    "IncrementalOIP",
    "DurationHistogram",
    "HistogramCostModel",
    "histogram_cost_model",
    "JoinResult",
    "OverlapJoinAlgorithm",
    "join_pair_key",
]
