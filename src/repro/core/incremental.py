"""Incrementally maintained OIP — the paper's first future-work item.

    "it is interesting to investigate how to update OIP incrementally if
     the relation changes, since the partitioning allows an expansion on
     both space boundaries by increasing k and maintaining an offset on
     the indices" (Section 8).

:class:`IncrementalOIP` keeps an OIP partitioning alive under inserts
and deletes:

* **insert** places the tuple in its Definition-2 partition, creating the
  partition node on first use (lazy, as in Algorithm 1) — O(number of
  non-empty partitions) pointer walk, no re-sort;
* **delete** removes the tuple and drops the node when it empties;
* **expansion**: a tuple outside the partitioned range does not force a
  rebuild.  The range grows by whole granules on either boundary — the
  granule duration ``d`` stays fixed, the origin moves left by
  ``g_left * d``, and ``k`` increases by the number of added granules.
  Existing partitions keep their physical indices; a maintained *index
  shift* maps them to the new logical indices, exactly the "offset on
  the indices" the paper sketches.

Because ``d`` never changes, the Lemma 2 clustering guarantee
(``|p.T| - |r.T| < 2d``) survives every expansion, and Lemma 1 queries
keep working against the shifted indices.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

from .interval import Interval
from .oip import OIPConfiguration
from .relation import TemporalRelation, TemporalTuple

__all__ = ["IncrementalOIP"]


class IncrementalOIP:
    """An updatable Overlap Interval Partitioning.

    Partitions are kept in a dictionary keyed by *physical* index pairs;
    the logical (Definition 2) indices are ``physical + index_shift``.
    ``index_shift`` grows when the range expands to the left, so no
    stored key ever has to be rewritten.
    """

    def __init__(self, config: OIPConfiguration) -> None:
        self._d = config.d
        self._origin = config.o  # start of the partitioned range
        self._k = config.k
        self._index_shift = 0
        # physical (i, j) -> tuples
        self._partitions: Dict[Tuple[int, int], List[TemporalTuple]] = {}
        self._size = 0

    @classmethod
    def from_relation(
        cls, relation: TemporalRelation, k: int
    ) -> "IncrementalOIP":
        """Bulk-build from a relation (Definition 1 configuration)."""
        config = OIPConfiguration.for_relation(relation, k)
        partitioning = cls(config)
        for tup in relation:
            partitioning.insert(tup)
        return partitioning

    # -- derived state ---------------------------------------------------------

    @property
    def config(self) -> OIPConfiguration:
        """The current (possibly expanded) configuration."""
        return OIPConfiguration(k=self._k, d=self._d, o=self._origin)

    @property
    def k(self) -> int:
        return self._k

    @property
    def granule_duration(self) -> int:
        return self._d

    @property
    def time_range(self) -> Interval:
        """The partitioned range ``[o, o + k*d - 1]``."""
        return Interval(self._origin, self._origin + self._k * self._d - 1)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def __len__(self) -> int:
        return self._size

    # -- index mapping -----------------------------------------------------------

    def _logical_indices(self, tup: TemporalTuple) -> Tuple[int, int]:
        return (
            (tup.start - self._origin) // self._d,
            (tup.end - self._origin) // self._d,
        )

    def _physical_key(self, i: int, j: int) -> Tuple[int, int]:
        return (i - self._index_shift, j - self._index_shift)

    def logical_key(self, physical: Tuple[int, int]) -> Tuple[int, int]:
        """Logical (Definition 2) indices of a stored partition."""
        return (
            physical[0] + self._index_shift,
            physical[1] + self._index_shift,
        )

    # -- expansion ----------------------------------------------------------------

    def _expand_to_cover(self, tup: TemporalTuple) -> None:
        """Grow the range by whole granules until *tup* fits."""
        grow_left = 0
        if tup.start < self._origin:
            grow_left = math.ceil((self._origin - tup.start) / self._d)
        range_end = self._origin + self._k * self._d - 1
        grow_right = 0
        if tup.end > range_end:
            grow_right = math.ceil((tup.end - range_end) / self._d)
        if grow_left:
            self._origin -= grow_left * self._d
            self._index_shift += grow_left
            self._k += grow_left
        if grow_right:
            self._k += grow_right

    # -- updates -----------------------------------------------------------------

    def insert(self, tup: TemporalTuple) -> Tuple[int, int]:
        """Insert *tup*, expanding the range if needed; returns the
        logical partition indices it was placed at."""
        self._expand_to_cover(tup)
        i, j = self._logical_indices(tup)
        self._partitions.setdefault(self._physical_key(i, j), []).append(tup)
        self._size += 1
        return (i, j)

    def delete(self, tup: TemporalTuple) -> bool:
        """Remove one occurrence of *tup*; returns whether it was found.

        The partitioned range is not shrunk — like the paper's lazy
        partitions, an empty boundary granule costs nothing.
        """
        i, j = self._logical_indices(tup)
        key = self._physical_key(i, j)
        stored = self._partitions.get(key)
        if not stored:
            return False
        try:
            stored.remove(tup)
        except ValueError:
            return False
        if not stored:
            del self._partitions[key]
        self._size -= 1
        return True

    # -- queries -----------------------------------------------------------------

    def query(self, interval: Interval) -> List[TemporalTuple]:
        """All tuples overlapping *interval* (Lemma 1 + filter)."""
        return [
            tup
            for tup in self.candidates(interval)
            if tup.overlaps_interval(interval)
        ]

    def candidates(self, interval: Interval) -> Iterator[TemporalTuple]:
        """Tuples of all relevant partitions (Lemma 1), unfiltered —
        the difference to :meth:`query` is exactly the false hits."""
        config = self.config
        clipped_start = max(interval.start, self._origin)
        clipped_end = min(
            interval.end, self._origin + self._k * self._d - 1
        )
        if clipped_start > clipped_end:
            return
        s = config.granule_index(clipped_start)
        e = config.granule_index(clipped_end)
        for key, tuples in self._partitions.items():
            i, j = self.logical_key(key)
            if i <= e and j >= s:
                yield from tuples

    def iter_partitions(
        self,
    ) -> Iterator[Tuple[Tuple[int, int], List[TemporalTuple]]]:
        """All non-empty partitions as (logical indices, tuples)."""
        for key, tuples in self._partitions.items():
            yield self.logical_key(key), list(tuples)

    # -- invariants (used by tests) -----------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if an OIP invariant is violated."""
        config = self.config
        total = 0
        for key, tuples in self._partitions.items():
            logical = self.logical_key(key)
            assert 0 <= logical[0] <= logical[1] < self._k, logical
            assert tuples, "empty partition retained"
            for tup in tuples:
                assert config.assign(tup) == logical
                # Lemma 2 survives expansion because d is fixed.
                slack = (
                    config.partition_interval(*logical).duration
                    - tup.duration
                )
                assert 0 <= slack < 2 * self._d
                total += 1
        assert total == self._size
