"""Overlap Interval Partitioning — configuration and partition math.

Implements Section 4.1 of the paper:

* :class:`OIPConfiguration` — Definition 1: the triple ``(k, d, o)`` with
  granule duration ``d = ceil(|U| / k)`` and origin ``o = US``.
* Partition assignment — Definition 2: tuple ``r`` goes to partition
  ``p_{i,j}`` with ``i = floor((r.TS - o) / d)`` and
  ``j = floor((r.TE - o) / d)``.
* Relevant partitions — Lemma 1: a query interval ``Q`` with start index
  ``s`` and end index ``e`` can only find overlapping tuples in partitions
  with ``j >= s`` and ``i <= e``.
* The counting results: Proposition 1 (``k(k+1)/2`` possible partitions),
  Lemma 2 (constant clustering guarantee ``|p.T| - |r.T| < 2d``) and
  Lemma 3 (upper bound on *used* partitions under lazy partitioning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from .interval import Interval
from .relation import TemporalRelation, TemporalTuple

__all__ = [
    "OIPConfiguration",
    "possible_partition_count",
    "used_partition_bound",
    "tightening_factor",
]


@dataclass(frozen=True)
class OIPConfiguration:
    """An OIP configuration ``(k, d, o)`` (Definition 1).

    ``k`` is the number of granules, ``d`` the duration of each granule and
    ``o`` the start point of the partitioned time range.  The configuration
    is all that is needed to map tuples and query intervals to partition
    indices; it never materialises partitions itself.
    """

    k: int
    d: int
    o: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"granule count k must be >= 1, got {self.k}")
        if self.d < 1:
            raise ValueError(f"granule duration d must be >= 1, got {self.d}")

    @classmethod
    def for_time_range(cls, time_range: Interval, k: int) -> "OIPConfiguration":
        """Definition 1: ``d = ceil(|U| / k)``, ``o = US``."""
        if k < 1:
            raise ValueError(f"granule count k must be >= 1, got {k}")
        d = -(-time_range.duration // k)
        return cls(k=k, d=d, o=time_range.start)

    @classmethod
    def for_relation(cls, relation: TemporalRelation, k: int) -> "OIPConfiguration":
        """Configuration over the relation's time range ``U``."""
        return cls.for_time_range(relation.time_range, k)

    # -- partition assignment (Definition 2) --------------------------------

    def granule_index(self, point: int) -> int:
        """``floor((x - o) / d)`` — the granule a time point falls in."""
        return (point - self.o) // self.d

    def assign(self, tup: TemporalTuple) -> Tuple[int, int]:
        """Partition indices ``(i, j)`` of *tup* per Definition 2."""
        return (self.granule_index(tup.start), self.granule_index(tup.end))

    def assign_interval(self, interval: Interval) -> Tuple[int, int]:
        """Partition indices of an interval (used by the analysis code)."""
        return (
            self.granule_index(interval.start),
            self.granule_index(interval.end),
        )

    def partition_interval(self, i: int, j: int) -> Interval:
        """Partition interval ``p_{i,j}.T = [o + i*d, o + (j+1)*d - 1]``."""
        if not 0 <= i <= j:
            raise ValueError(f"invalid partition indices ({i}, {j})")
        return Interval(self.o + i * self.d, self.o + (j + 1) * self.d - 1)

    # -- relevant partitions (Lemma 1) ----------------------------------------

    def query_indices(self, query: Interval) -> Tuple[int, int]:
        """Start index ``s = floor((QS - o)/d)`` and end index
        ``e = floor((QE - o)/d)`` of a query interval."""
        return (
            self.granule_index(query.start),
            self.granule_index(query.end),
        )

    def is_relevant(self, i: int, j: int, s: int, e: int) -> bool:
        """Lemma 1: partition ``p_{i,j}`` is relevant for query indices
        ``(s, e)`` iff ``i <= e`` and ``j >= s``."""
        return i <= e and j >= s

    def clamped_query_indices(self, query: Interval) -> Optional[Tuple[int, int]]:
        """Lemma 1 indices of *query*, clamped to the grid ``[0, k-1]``.

        :meth:`query_indices` trusts the caller to stay inside the
        partitioned range; an arbitrary query window (the batched
        executor's per-query windows) may start before ``o`` or end past
        the last granule.  Granules outside the grid hold no partitions,
        so clamping the indices preserves Lemma 1's guarantee; a window
        entirely outside the range is relevant to no partition at all and
        yields ``None``.
        """
        s = self.granule_index(query.start)
        e = self.granule_index(query.end)
        if e < 0 or s >= self.k:
            return None
        return (max(s, 0), min(e, self.k - 1))

    # -- derived quantities -------------------------------------------------------

    @property
    def time_range(self) -> Interval:
        """The full partitioned range ``[o, o + k*d - 1]``.

        Note this may extend past ``UE`` because ``d`` is rounded up.
        """
        return Interval(self.o, self.o + self.k * self.d - 1)

    def clustering_slack(self, tup: TemporalTuple) -> int:
        """``|p.T| - |r.T|`` for the partition *tup* is assigned to.

        Lemma 2 guarantees this is ``< 2d`` for every tuple inside the
        configured range.
        """
        i, j = self.assign(tup)
        return self.partition_interval(i, j).duration - tup.duration

    def covers(self, tup: TemporalTuple) -> bool:
        """True iff the tuple lies inside the partitioned time range."""
        rng = self.time_range
        return rng.start <= tup.start and tup.end <= rng.end


def possible_partition_count(k: int) -> int:
    """Proposition 1: the number of possible partitions is ``(k^2 + k)/2``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return (k * k + k) // 2


def used_partition_bound(k: int, duration_fraction: float, cardinality: int) -> int:
    """Lemma 3: upper bound on the number of non-empty partitions.

    With tuple durations at most ``lambda`` (as a fraction of the time
    range), tuples span at most ``ceil(lambda * k)`` granules and, by the
    clustering guarantee, the longest used partition spans at most
    ``ceil(lambda * k) + 1`` granules.  The bound is additionally capped by
    the relation cardinality ``n`` since empty partitions are never created.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if cardinality < 0:
        raise ValueError(f"cardinality must be >= 0, got {cardinality}")
    g = math.ceil(duration_fraction * k)
    # The paper's k*g + k - g^2/2 - g/2 equals sum_{x=0}^{g} (k - x)
    # = k*(g + 1) - g*(g + 1)/2; g*(g + 1) is even, so this is exact.
    structural = k * (g + 1) - (g * (g + 1)) // 2
    return min(structural, cardinality)


def tightening_factor(k: int, duration_fraction: float, cardinality: int) -> float:
    """``tau``: used partitions (Lemma 3) over possible partitions
    (Proposition 1); satisfies ``0 < tau <= 1``."""
    possible = possible_partition_count(k)
    if possible == 0:
        return 1.0
    used = used_partition_bound(k, duration_fraction, cardinality)
    if used <= 0:
        # An empty relation uses no partitions; treat tau as its supremum
        # so cost formulas remain well defined.
        return 1.0 / possible
    return min(used / possible, 1.0)
