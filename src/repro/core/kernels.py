"""Pluggable join kernels: columnar partition runs, sweep joins, and the
decoded-run cache.

The OIPJOIN probe phase joins one *outer* partition against every
relevant *inner* partition (Lemma 1).  The paper's cost model counts two
CPU comparisons per **candidate pair** (every tuple of the outer
partition against every tuple of the inner partition) and one false hit
per candidate that fails the overlap test — and the original
reproduction also *paid* those comparisons: a pure-Python nested loop
with one ``_match`` call per candidate dominated wall-clock time on
every workload.  This module separates the two concerns:

* **model cost** — what Algorithm 2 charges — is accounted
  *analytically*: ``2 * |p_outer| * |p_inner|`` CPU comparisons and
  ``candidates - results`` false hits per partition pair, which is
  exactly what the per-candidate loop summed to;
* **physical cost** — what this Python process executes — is the
  kernel's business, and the three kernels make different tradeoffs:

  - :func:`naive_matches` is the extracted, micro-optimised original
    loop: every candidate pair is compared, but against flat ``array``
    columns instead of per-tuple attribute loads;
  - :func:`sweep_matches` is a forward-scan sweep in the spirit of
    cache-efficient sweeping-based interval joins (Piatov et al.) and
    HINT's comparison-free partition scans: both sides are processed in
    start order, and for the current tuple a single ``bisect`` finds
    the contiguous range of not-yet-consumed opposite tuples whose
    start does not exceed the current end — every one of those
    *overlaps by construction* (an interval that starts inside another
    interval overlaps it), so the inner loop only ever touches pairs
    that are in the result.  Non-overlapping candidates are pruned in
    C-speed ``bisect`` calls and never reach Python bytecode;
  - :func:`numpy_matches` is the vectorized tier: small partition pairs
    are joined with one broadcasted start/end comparison matrix, larger
    ones with ``searchsorted`` range pruning over the start-sorted
    columns (the overlap set decomposes exactly into two disjoint
    searchsorted range families — see the function docstring), so per
    candidate work drops from Python bytecode to C loops.  The kernel
    is optional: when numpy is not importable,
    :func:`kernel_function` transparently substitutes the sweep kernel
    (``numpy_matches`` itself raises), and ``"auto"`` selection never
    picks the numpy tier.

All kernels return the identical match set encoded in the identical
order — ``inner_pos * n_outer + outer_pos``, ascending, which is the
emission order of the sequential Algorithm 2 loop — so result pairs,
:class:`~repro.storage.metrics.CostCounters` and run reports are
bit-identical regardless of the kernel (the differential suite in
``tests/core/test_kernels.py`` and ``tests/core/test_numpy_kernel.py``
pins this down).

``"auto"`` selection (:func:`choose_kernel`) is a three-way threshold on
the estimated candidate count: ``naive`` below
:data:`AUTO_SWEEP_CANDIDATES`, ``sweep`` between the thresholds, and
``numpy`` from :data:`AUTO_NUMPY_CANDIDATES` up (when numpy is
importable).  With the decoded-run cache explicitly disabled
(``decode_cache_size=0``), auto selection stays on ``naive``: the
sorted-column kernels amortise their per-partition start sort through
the cache, and without it the sort would be re-paid on every partition
visit — the estimate that justifies them assumes the amortisation.

Decoding a partition run into columnar form (two ``array('q')``
endpoint columns plus, lazily, a start-sorted permutation) costs one
pass over the run's tuples.  An inner partition is visited by *many*
outer partitions (the APA analysis, Lemma 5), so the decode would be
repeated per visit; :class:`DecodedRunCache` bounds that to once per
partition (plus invalidations) with an LRU of configurable capacity and
hit/miss/eviction counters that the join publishes as
``kernel.cache.*`` metrics.  Cache entries are invalidated whenever a
fault-injected corruption (or a buffer-pool invalidation) is detected
while re-reading the run's blocks, so a corrupted block can never be
served as a stale decode.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_right
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "KERNELS",
    "KERNEL_FUNCS",
    "AUTO_SWEEP_CANDIDATES",
    "AUTO_NUMPY_CANDIDATES",
    "NUMPY_BROADCAST_CELLS",
    "DEFAULT_CACHE_CAPACITY",
    "DecodedRun",
    "DecodedRunCache",
    "decode_columns",
    "naive_matches",
    "sweep_matches",
    "numpy_matches",
    "numpy_available",
    "kernel_function",
    "estimate_candidates",
    "choose_kernel",
    "resolve_kernel",
]

#: The selectable kernel names (``"auto"`` resolves to one of these).
KERNELS = ("naive", "sweep", "numpy")

#: Estimated candidate comparisons above which ``"auto"`` picks the
#: sweep kernel.  Below it the join is so small that the sweep's sort
#: and bisect bookkeeping costs more than the comparisons it skips.
AUTO_SWEEP_CANDIDATES = 50_000.0

#: Estimated candidate comparisons above which ``"auto"`` picks the
#: numpy kernel (when numpy is importable).  Between the sweep
#: threshold and this one the partitions are still small enough that
#: the fixed per-call cost of entering numpy (array view setup,
#: ``searchsorted`` dispatch) eats what vectorization saves; measured
#: on the Figure 8 long-lived workload (``benchmarks/
#: bench_numpy_kernel.py``, results in ``BENCH_numpy.json``) the match
#: step itself runs >3x faster than the sweep on coarse-k partition
#: pairs, which translates to a 1.1-1.25x end-to-end win (IO and the
#: analytic charging dominate the rest) from ~1.5e5 estimated
#: candidates up — and no measured regime where numpy loses to the
#: sweep above this threshold.
AUTO_NUMPY_CANDIDATES = 150_000.0

#: Candidate-count bound (``|p_outer| * |p_inner|``) up to which the
#: numpy kernel joins a partition pair with one broadcasted comparison
#: matrix; larger pairs use the searchsorted range decomposition, whose
#: work scales with ``n log n + results`` instead of the full candidate
#: grid.
NUMPY_BROADCAST_CELLS = 4096

#: Default bound of the decoded-run cache, in runs.  Partition counts
#: grow as O(k^2) in the worst case, but the Lemma-1 walk of one outer
#: partition touches a contiguous stripe of the inner grid, so a few
#: hundred live decodes cover the reuse window of realistic ``k``.
DEFAULT_CACHE_CAPACITY = 256


def decode_columns(
    tuples: Sequence[Any],
) -> Tuple[array, array]:
    """Extract the endpoint columns of *tuples* as parallel ``array('q')``
    start/end columns (one pass, attribute loads paid once per tuple
    instead of once per candidate pair)."""
    return (
        array("q", [tup.start for tup in tuples]),
        array("q", [tup.end for tup in tuples]),
    )


class DecodedRun:
    """One partition run in columnar form.

    ``starts`` / ``ends`` are parallel ``array('q')`` columns in the
    run's storage order; ``tuples`` keeps the original tuple objects for
    result-pair construction (``None`` on the worker side of the process
    backend, where only indices cross the process boundary).  The
    start-sorted permutation (``order``) and the starts in that order
    (``sorted_starts``) are computed lazily on first use and memoised —
    the naive kernel never needs them.
    """

    __slots__ = (
        "tuples",
        "starts",
        "ends",
        "length",
        "_order",
        "_sorted_starts",
        "_np_view",
    )

    def __init__(
        self,
        starts: array,
        ends: array,
        tuples: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.tuples = tuples
        self.length = len(starts)
        self._order: Optional[List[int]] = None
        self._sorted_starts: Optional[array] = None
        self._np_view: Optional[Tuple[Any, Any, Any, Any]] = None

    @classmethod
    def from_tuples(cls, tuples: Sequence[Any]) -> "DecodedRun":
        starts, ends = decode_columns(tuples)
        return cls(starts, ends, tuple(tuples))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"DecodedRun(n={self.length}, sorted={self._order is not None})"

    @property
    def order(self) -> List[int]:
        """Positions sorted by start (ties keep storage order — Python's
        sort is stable, so the permutation is deterministic)."""
        if self._order is None:
            starts = self.starts
            self._order = sorted(range(self.length), key=starts.__getitem__)
        return self._order

    @property
    def sorted_starts(self) -> array:
        """The start column permuted into ascending order (the bisect
        haystack of the sweep kernel)."""
        if self._sorted_starts is None:
            starts = self.starts
            self._sorted_starts = array(
                "q", [starts[pos] for pos in self.order]
            )
        return self._sorted_starts

    def numpy_view(self, np: Any) -> Tuple[Any, Any, Any, Any]:
        """``(starts, ends, order, sorted_starts)`` as numpy ``int64``
        arrays, memoised like :attr:`order` / :attr:`sorted_starts`.

        The endpoint views are zero-copy (``np.frombuffer`` over the
        ``array('q')`` buffers); the start-sorted permutation is a
        stable argsort, so ties keep storage order exactly like the
        pure-Python :attr:`order` — not that parity depends on it: the
        kernels' match *set* is permutation-independent and the final
        encoded sort fixes the emission order.
        """
        view = self._np_view
        if view is None:
            starts = np.frombuffer(self.starts, dtype=np.int64)
            ends = np.frombuffer(self.ends, dtype=np.int64)
            order = np.argsort(starts, kind="stable")
            view = (starts, ends, order, starts[order])
            self._np_view = view
        return view


# ----------------------------------------------------------------------
# The kernels.  Contract shared by both: given the decoded outer and
# inner runs of one partition pair, return the positions of all
# overlapping pairs encoded as ``inner_pos * n_outer + outer_pos`` in
# ascending order — the exact emission order of the sequential
# Algorithm 2 loop (inner tuples outermost, outer tuples innermost).
# Kernels perform *no* cost charging; the caller charges the paper's
# model costs analytically (2 CPU per candidate, candidates - results
# false hits), which keeps the counters identical across kernels.
# ----------------------------------------------------------------------


def naive_matches(outer: DecodedRun, inner: DecodedRun) -> List[int]:
    """The extracted original loop: every candidate pair is compared.

    Micro-optimised relative to the historical per-tuple ``_match``
    path — endpoint columns are flat arrays, bound methods are hoisted —
    but still O(candidates) Python work per partition pair.
    """
    outer_starts = outer.starts
    outer_ends = outer.ends
    n_outer = outer.length
    inner_starts = inner.starts
    inner_ends = inner.ends
    outer_range = range(n_outer)
    hits: List[int] = []
    hits_append = hits.append
    base = 0
    for inner_pos in range(inner.length):
        inner_start = inner_starts[inner_pos]
        inner_end = inner_ends[inner_pos]
        for outer_pos in outer_range:
            if (
                outer_starts[outer_pos] <= inner_end
                and inner_start <= outer_ends[outer_pos]
            ):
                hits_append(base + outer_pos)
        base += n_outer
    return hits


def sweep_matches(outer: DecodedRun, inner: DecodedRun) -> List[int]:
    """Forward-scan sweep over both runs in start order.

    Merge both sides by start.  When a tuple ``x`` is the next event, a
    single :func:`bisect.bisect_right` locates the contiguous range of
    not-yet-consumed opposite tuples whose start is ``<= x.end`` — all
    of them overlap ``x``, because they start at or after ``x.start``
    (merge order) and at or before ``x.end`` (bisect bound), and an
    interval starting inside ``x`` necessarily intersects it.  Each
    result pair is therefore touched exactly once and non-overlapping
    candidates are never touched at all; the only super-linear work is
    the final C-speed integer sort that restores the sequential
    emission order.
    """
    n_outer = outer.length
    n_inner = inner.length
    if not n_outer or not n_inner:
        return []
    outer_order = outer.order
    outer_sorted_starts = outer.sorted_starts
    inner_order = inner.order
    inner_sorted_starts = inner.sorted_starts
    outer_ends = outer.ends
    inner_ends = inner.ends
    hits: List[int] = []
    a = b = 0
    while a < n_outer and b < n_inner:
        if outer_sorted_starts[a] <= inner_sorted_starts[b]:
            # The outer tuple starts first: it overlaps every pending
            # inner tuple that starts no later than it ends.
            outer_pos = outer_order[a]
            bound = bisect_right(inner_sorted_starts, outer_ends[outer_pos], b)
            if bound > b:
                hits += [
                    inner_pos * n_outer + outer_pos
                    for inner_pos in inner_order[b:bound]
                ]
            a += 1
        else:
            inner_pos = inner_order[b]
            bound = bisect_right(outer_sorted_starts, inner_ends[inner_pos], a)
            if bound > a:
                base = inner_pos * n_outer
                hits += [base + outer_pos for outer_pos in outer_order[a:bound]]
            b += 1
    hits.sort()
    return hits


# ----------------------------------------------------------------------
# The numpy tier.  numpy is an *optional* dependency: everything below
# degrades to the sweep kernel when it is absent, and the import is
# routed through one monkeypatchable hook so the kernel-absent tests can
# simulate an environment without numpy.
# ----------------------------------------------------------------------


def _import_numpy() -> Any:
    """Import hook of the numpy tier (the single point the kernel-absent
    tests monkeypatch to raise :class:`ImportError`)."""
    import numpy

    return numpy


def numpy_available() -> bool:
    """True when the numpy kernel can actually run in this process."""
    try:
        _import_numpy()
    except ImportError:
        return False
    return True


def numpy_matches(outer: DecodedRun, inner: DecodedRun) -> List[int]:
    """Vectorized overlap join of one partition pair.

    Small pairs (``candidates <= NUMPY_BROADCAST_CELLS``) are joined
    with one broadcasted comparison matrix ``(outer.start <= inner.end)
    & (inner.start <= outer.end)`` of shape ``(n_inner, n_outer)``;
    ``flatnonzero`` of that matrix *is* the ascending
    ``inner_pos * n_outer + outer_pos`` encoding, so no re-sort is
    needed.

    Larger pairs use ``searchsorted`` range pruning.  The overlap pairs
    decompose exactly into two disjoint families, split on where the
    inner tuple starts relative to the outer tuple:

    1. ``outer.start <= inner.start <= outer.end`` — the inner tuple
       starts inside the outer one, so it overlaps by construction.
       Per outer tuple this is the contiguous start-sorted inner range
       ``[searchsorted(left, outer.start), searchsorted(right,
       outer.end))``.
    2. ``inner.start < outer.start <= inner.end`` — the outer tuple
       starts strictly inside the inner one.  Per inner tuple this is
       the contiguous start-sorted outer range ``[searchsorted(right,
       inner.start), searchsorted(right, inner.end))``.

    Every overlapping pair satisfies exactly one of the two (split on
    ``inner.start >= outer.start``), and every pair in either family
    overlaps, so concatenating the two expanded range families and
    sorting the encoded positions reproduces the sequential emission
    order exactly — same ints, same order, as ``naive`` and ``sweep``.

    Raises :class:`RuntimeError` when numpy is not importable; callers
    resolve through :func:`kernel_function`, which substitutes the sweep
    kernel instead of ever reaching this raise.
    """
    try:
        np = _import_numpy()
    except ImportError:
        raise RuntimeError(
            "the numpy kernel requires numpy; resolve kernels through "
            "kernel_function() for the sweep fallback"
        )
    n_outer = outer.length
    n_inner = inner.length
    if not n_outer or not n_inner:
        return []
    outer_starts, outer_ends, outer_order, outer_sorted = outer.numpy_view(np)
    inner_starts, inner_ends, inner_order, inner_sorted = inner.numpy_view(np)
    if n_outer * n_inner <= NUMPY_BROADCAST_CELLS:
        mask = (outer_starts[None, :] <= inner_ends[:, None]) & (
            inner_starts[:, None] <= outer_ends[None, :]
        )
        return np.flatnonzero(mask).tolist()

    # Family 1: inner starts inside [outer.start, outer.end].
    lo1 = np.searchsorted(inner_sorted, outer_starts, side="left")
    hi1 = np.searchsorted(inner_sorted, outer_ends, side="right")
    counts1 = hi1 - lo1
    total1 = int(counts1.sum())
    if total1:
        outer_pos = np.repeat(np.arange(n_outer), counts1)
        offsets = np.arange(total1) - np.repeat(
            np.cumsum(counts1) - counts1, counts1
        )
        inner_pos = inner_order[np.repeat(lo1, counts1) + offsets]
        encoded1 = inner_pos * n_outer + outer_pos
    else:
        encoded1 = None

    # Family 2: outer starts strictly inside (inner.start, inner.end].
    lo2 = np.searchsorted(outer_sorted, inner_starts, side="right")
    hi2 = np.searchsorted(outer_sorted, inner_ends, side="right")
    counts2 = hi2 - lo2
    total2 = int(counts2.sum())
    if total2:
        inner_pos = np.repeat(np.arange(n_inner), counts2)
        offsets = np.arange(total2) - np.repeat(
            np.cumsum(counts2) - counts2, counts2
        )
        outer_pos = outer_order[np.repeat(lo2, counts2) + offsets]
        encoded2 = inner_pos * n_outer + outer_pos
    else:
        encoded2 = None

    if encoded1 is None and encoded2 is None:
        return []
    if encoded1 is None:
        encoded = encoded2
    elif encoded2 is None:
        encoded = encoded1
    else:
        encoded = np.concatenate((encoded1, encoded2))
    encoded.sort()
    return encoded.tolist()


#: Kernel implementations by name.  ``"numpy"`` is registered whether or
#: not numpy is importable — resolve through :func:`kernel_function`
#: (not a raw dict lookup) to get the sweep fallback in numpy-less
#: environments.
KERNEL_FUNCS: Dict[str, Callable[[DecodedRun, DecodedRun], List[int]]] = {
    "naive": naive_matches,
    "sweep": sweep_matches,
    "numpy": numpy_matches,
}


def kernel_function(
    kernel: str,
) -> Callable[[DecodedRun, DecodedRun], List[int]]:
    """The callable implementing *kernel* **in this process**.

    This is the execution-time companion of :func:`resolve_kernel`:
    selection picks a name, this maps the name to code, substituting
    :func:`sweep_matches` for ``"numpy"`` when numpy is not importable
    here.  Both the sequential probe loop and the parallel workers
    resolve through it — process-backend workers call it in the worker
    process, so a driver that shipped ``"numpy"`` to a pool whose
    workers cannot import numpy still completes (bit-identically, since
    every kernel computes the same matches).
    """
    try:
        fn = KERNEL_FUNCS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown join kernel {kernel!r}; choose from {KERNELS}"
        )
    if fn is numpy_matches and not numpy_available():
        return sweep_matches
    return fn


# ----------------------------------------------------------------------
# Kernel selection.
# ----------------------------------------------------------------------


def estimate_candidates(outer: Any, inner: Any) -> float:
    """Estimated probe-phase candidate comparisons of ``outer JOIN
    inner`` (duck typed to :class:`~repro.core.relation.TemporalRelation`).

    Two random intervals with duration fractions ``lambda_r`` and
    ``lambda_s`` overlap with probability roughly ``lambda_r +
    lambda_s``; applying that coverage to the nested-loop upper bound
    ``n_r * n_s`` gives a pessimistic candidate estimate.  This is the
    same estimate the :class:`~repro.engine.planner.JoinPlanner` uses
    for its parallelism decision.
    """
    if outer.is_empty or inner.is_empty:
        return 0.0
    coverage = min(1.0, outer.duration_fraction + inner.duration_fraction)
    return outer.cardinality * inner.cardinality * coverage


def choose_kernel(
    outer: Any,
    inner: Any,
    cache_enabled: bool = True,
    estimated: Optional[float] = None,
) -> str:
    """Statistics-driven three-way kernel choice.

    ``estimated`` overrides the candidate estimate (the planner passes
    the figure it derived from persisted index statistics so the kernel
    tier and the parallelism decision never disagree on the estimate);
    ``None`` computes it from the relations.

    The estimated candidate count decides the tier: the ``naive`` loop
    below :data:`AUTO_SWEEP_CANDIDATES` (sort/bisect bookkeeping is not
    amortised), the forward-scan ``sweep`` between the thresholds, and
    the vectorized ``numpy`` kernel from :data:`AUTO_NUMPY_CANDIDATES`
    up — but only when numpy is importable; otherwise the sweep tier
    extends upward (graceful fallback).

    ``cache_enabled=False`` (the caller pinned ``decode_cache_size=0``)
    forces ``naive``: the sorted-column kernels amortise their
    per-partition start sort through the decoded-run cache, and with
    the cache off that sort would be re-paid on every one of the many
    visits an inner partition receives (Lemma 5), invalidating the
    estimate that justifies them.  Explicitly *pinned* kernels are
    honoured regardless — this guard only constrains what ``"auto"``
    recommends, so the planner never recommends a cache-dependent plan
    it can't execute.
    """
    if not cache_enabled:
        return "naive"
    if estimated is None:
        estimated = estimate_candidates(outer, inner)
    if estimated >= AUTO_NUMPY_CANDIDATES and numpy_available():
        return "numpy"
    if estimated >= AUTO_SWEEP_CANDIDATES:
        return "sweep"
    return "naive"


def resolve_kernel(
    kernel: Optional[str],
    outer: Any,
    inner: Any,
    cache_enabled: bool = True,
) -> str:
    """Resolve a kernel keyword (``None``/``"auto"``/explicit name) for
    one join of *outer* and *inner*.

    An explicit ``"numpy"`` in a numpy-less environment resolves to
    ``"sweep"`` — the documented graceful fallback (callers surface the
    substitution in their result details).  ``cache_enabled`` threads
    the decoded-run-cache state into the ``"auto"`` choice; see
    :func:`choose_kernel`.
    """
    if kernel is None or kernel == "auto":
        return choose_kernel(outer, inner, cache_enabled=cache_enabled)
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown join kernel {kernel!r}; choose from "
            f"{KERNELS + ('auto',)}"
        )
    if kernel == "numpy" and not numpy_available():
        return "sweep"
    return kernel


# ----------------------------------------------------------------------
# The decoded-run cache.
# ----------------------------------------------------------------------


class DecodedRunCache:
    """Bounded LRU cache of :class:`DecodedRun` decodes, keyed by run
    identity.

    One cache serves one join execution; entries live as long as the
    partition lists do, so identity keys (``id(run)`` on the sequential
    path, the inner-table index on the worker path) are stable for the
    cache's lifetime.  Thread-safe — the thread backend's workers share
    one cache — with the lock held only around the bookkeeping, never
    around a decode (a racing duplicate decode is deterministic and
    harmless, a blocked worker is not).

    ``hits`` / ``misses`` / ``evictions`` / ``invalidations`` are plain
    integers published as ``kernel.cache.*`` counters after a run and
    surfaced in run reports via the join's details.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "_lock",
        "hits",
        "misses",
        "evictions",
        "invalidations",
    )

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(
                f"decode cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[Any, DecodedRun]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get(self, key: Any) -> Optional[DecodedRun]:
        """The cached decode for *key* (refreshing its recency), or
        ``None`` — counted as a hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Any, decoded: DecodedRun) -> DecodedRun:
        """Insert *decoded*, evicting least-recently-used entries past
        the capacity bound."""
        with self._lock:
            self._entries[key] = decoded
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return decoded

    def fetch(
        self, key: Any, build: Callable[[], DecodedRun]
    ) -> DecodedRun:
        """Get-or-build: the cached decode for *key*, or ``build()``
        inserted under it."""
        entry = self.get(key)
        if entry is not None:
            return entry
        return self.put(key, build())

    def invalidate(self, key: Any) -> bool:
        """Drop *key*'s entry (a corruption was detected on the backing
        blocks, so the decode may be stale).  True when an entry was
        actually dropped."""
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self.invalidations += 1
            return True

    def invalidate_all(self) -> int:
        """Drop every entry, counting each under ``invalidations``.

        Used when an index is (re)loaded from disk: decodes keyed on a
        prior snapshot generation's block ids must never be served
        against the new one.  Returns the number of entries purged
        (unlike :meth:`clear`, which is bookkeeping-free reset)."""
        with self._lock:
            purged = len(self._entries)
            self._entries.clear()
            self.invalidations += purged
            return purged

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- observability --------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view for details, reports and test assertions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }

    def publish_metrics(self, registry: Any) -> None:
        """Publish the cache counters as ``kernel.cache.*``."""
        registry.counter("kernel.cache.hits").inc(self.hits)
        registry.counter("kernel.cache.misses").inc(self.misses)
        registry.counter("kernel.cache.evictions").inc(self.evictions)
        registry.counter("kernel.cache.invalidations").inc(
            self.invalidations
        )
        registry.gauge("kernel.cache.entries").set(len(self._entries))

    def __repr__(self) -> str:
        return (
            f"DecodedRunCache(entries={len(self._entries)}/"
            f"{self.capacity}, hits={self.hits}, misses={self.misses})"
        )
