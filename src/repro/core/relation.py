"""Temporal relations with tuple timestamping (paper Section 3).

A temporal relation schema is ``R = (A1, ..., Am, T)`` where ``T`` is an
interval attribute.  We model a tuple as a :class:`TemporalTuple` — an
interval plus an opaque payload holding the explicit attributes — and a
relation as an ordered collection of such tuples together with the derived
statistics the paper uses:

* the *time range* ``U = [US, UE]`` spanned by the relation,
* ``l``, the duration of the longest tuple, and
* ``lambda = l / |U|``, the longest duration as a fraction of the range.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .interval import Interval, IntervalError

__all__ = ["TemporalTuple", "TemporalRelation", "EmptyRelationError"]


class EmptyRelationError(ValueError):
    """Raised when a statistic that needs at least one tuple is requested
    from an empty relation."""


class TemporalTuple:
    """One valid-time tuple: an interval and the non-temporal attributes.

    ``payload`` carries the explicit attributes ``A1..Am``; the library
    never inspects it, so it may be a dict, a tuple, a dataclass or simply
    an integer row id.
    """

    __slots__ = ("start", "end", "payload")

    def __init__(self, start: int, end: int, payload: Any = None) -> None:
        if end < start:
            raise IntervalError(
                f"tuple interval end {end!r} precedes start {start!r}"
            )
        self.start = int(start)
        self.end = int(end)
        self.payload = payload

    @property
    def interval(self) -> Interval:
        """The tuple's valid-time interval ``T``."""
        return Interval(self.start, self.end)

    @property
    def duration(self) -> int:
        """``|T| = TE - TS + 1``."""
        return self.end - self.start + 1

    def overlaps(self, other: "TemporalTuple") -> bool:
        """True iff the valid times of the two tuples intersect."""
        return self.start <= other.end and other.start <= self.end

    def overlaps_interval(self, interval: Interval) -> bool:
        """True iff the tuple's valid time intersects *interval*."""
        return self.start <= interval.end and interval.start <= self.end

    def __repr__(self) -> str:
        return f"TemporalTuple([{self.start}, {self.end}], {self.payload!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalTuple):
            return NotImplemented
        return (
            self.start == other.start
            and self.end == other.end
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.start, self.end, self.payload))


class TemporalRelation:
    """A finite collection of :class:`TemporalTuple` with cached statistics.

    The relation is the unit every join algorithm and partitioning scheme in
    the library consumes.  Construction is O(n); the time range and duration
    statistics are computed once and reused by the cost model.
    """

    __slots__ = ("name", "_tuples", "_time_range", "_max_duration", "_digests")

    def __init__(
        self,
        tuples: Iterable[TemporalTuple],
        name: str = "r",
    ) -> None:
        self.name = name
        self._tuples: List[TemporalTuple] = list(tuples)
        #: Lazily-populated content-fingerprint cache (see
        #: :mod:`repro.storage.snapshot`).  Sound because the relation is
        #: immutable after construction: every derived operation returns
        #: a new relation.
        self._digests: Optional[dict] = None
        self._time_range: Optional[Interval] = None
        self._max_duration: Optional[int] = None
        if self._tuples:
            min_start = min(t.start for t in self._tuples)
            max_end = max(t.end for t in self._tuples)
            self._time_range = Interval(min_start, max_end)
            self._max_duration = max(t.duration for t in self._tuples)

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, int]],
        name: str = "r",
    ) -> "TemporalRelation":
        """Build a relation from ``(start, end)`` pairs; the payload of each
        tuple is its position in the input sequence."""
        return cls(
            (TemporalTuple(s, e, i) for i, (s, e) in enumerate(pairs)),
            name=name,
        )

    @classmethod
    def from_records(
        cls,
        records: Iterable[Tuple[int, int, Any]],
        name: str = "r",
    ) -> "TemporalRelation":
        """Build a relation from ``(start, end, payload)`` triples."""
        return cls((TemporalTuple(s, e, p) for s, e, p in records), name=name)

    # -- collection protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[TemporalTuple]:
        return iter(self._tuples)

    def __getitem__(self, index: int) -> TemporalTuple:
        return self._tuples[index]

    def __repr__(self) -> str:
        if not self._tuples:
            return f"TemporalRelation({self.name!r}, empty)"
        return (
            f"TemporalRelation({self.name!r}, n={len(self._tuples)}, "
            f"U={self.time_range.as_tuple()})"
        )

    @property
    def tuples(self) -> Sequence[TemporalTuple]:
        """The tuples in insertion order (read-only view)."""
        return self._tuples

    # -- paper statistics ----------------------------------------------------

    @property
    def cardinality(self) -> int:
        """``n``, the number of tuples."""
        return len(self._tuples)

    @property
    def is_empty(self) -> bool:
        return not self._tuples

    @property
    def time_range(self) -> Interval:
        """``U = [US, UE]``: smallest start to largest end over all tuples."""
        if self._time_range is None:
            raise EmptyRelationError(
                f"relation {self.name!r} is empty and has no time range"
            )
        return self._time_range

    @property
    def time_range_duration(self) -> int:
        """``|U|``, the number of time points in the time range."""
        return self.time_range.duration

    @property
    def max_duration(self) -> int:
        """``l``, the duration of the longest tuple."""
        if self._max_duration is None:
            raise EmptyRelationError(
                f"relation {self.name!r} is empty and has no max duration"
            )
        return self._max_duration

    @property
    def duration_fraction(self) -> float:
        """``lambda = l / |U|``, longest duration relative to the range."""
        return self.max_duration / self.time_range_duration

    # -- derived relations ---------------------------------------------------

    def filter(
        self,
        predicate: Callable[[TemporalTuple], bool],
        name: Optional[str] = None,
    ) -> "TemporalRelation":
        """New relation with the tuples satisfying *predicate*."""
        return TemporalRelation(
            (t for t in self._tuples if predicate(t)),
            name=name or self.name,
        )

    def head(self, count: int, name: Optional[str] = None) -> "TemporalRelation":
        """New relation with the first *count* tuples (used by the
        real-world-dataset experiments that join a subset against the full
        dataset)."""
        return TemporalRelation(self._tuples[:count], name=name or self.name)

    def sorted_by(
        self,
        key: Callable[[TemporalTuple], Any],
        name: Optional[str] = None,
    ) -> "TemporalRelation":
        """New relation with tuples ordered by *key*."""
        return TemporalRelation(
            sorted(self._tuples, key=key), name=name or self.name
        )

    def sample_every(
        self, step: int, name: Optional[str] = None
    ) -> "TemporalRelation":
        """Systematic sample taking every *step*-th tuple — keeps the
        temporal distribution intact, unlike a prefix."""
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        return TemporalRelation(self._tuples[::step], name=name or self.name)
