"""The Overlap Interval Partition Join — OIPJOIN (paper Section 6.1,
Algorithm 2).

The join partitions both inputs on the fly with :func:`~repro.core
.lazy_list.oip_create`, using one shared granule count ``k`` (the cost
analysis shows both ``O(k_r^2 k_s^2)`` partition accesses and the false-hit
term are minimised at ``k_r = k_s``).  ``k`` is derived by the Section 6.2
fixed-point iteration unless the caller pins it (Figure 7 sweeps a fixed
``k``; the self-adjustment ablation compares both modes).

For every outer partition node the algorithm issues an overlap query with
the *partition interval* as query interval (Lemma 1), walks the inner lazy
partition list down while ``j >= s`` and right while ``i <= e``, fetches
each relevant inner partition (one partition access + its block IOs) and
compares its tuples pairwise with the outer partition's tuples (two
endpoint comparisons per pair; failing pairs are false hits).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..storage.buffer import BufferPool
from ..storage.device import DeviceProfile
from ..storage.faults import FaultPolicy
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters, CostWeights
from .base import JoinResult, OverlapJoinAlgorithm
from .granules import KDerivation, cost_model_for, derive_k
from .kernels import (
    DEFAULT_CACHE_CAPACITY,
    KERNELS,
    DecodedRun,
    DecodedRunCache,
    kernel_function,
    resolve_kernel,
)
from .lazy_list import oip_create
from .oip import OIPConfiguration
from .relation import TemporalRelation

__all__ = ["OIPJoin"]

#: Outer partitions between periodic checkpoints when ``checkpoint_path``
#: is set but ``checkpoint_every`` is not.
DEFAULT_CHECKPOINT_EVERY = 8


class OIPJoin(OverlapJoinAlgorithm):
    """Self-adjusting overlap join based on Overlap Interval Partitioning.

    Parameters
    ----------
    device, buffer_pool:
        Storage environment; see :class:`OverlapJoinAlgorithm`.
    k:
        Pin the granule count instead of deriving it (ablations, Figure 7).
    k_outer, k_inner:
        Pin *different* granule counts per side.  Section 6.2 proves both
        cost terms are minimised at ``k_r = k_s``; these parameters exist
        for the ablation that verifies that claim and are mutually
        exclusive with ``k``.
    weights:
        Override the device's cost weights for the ``k`` derivation only
        (the Figure 6 ``c_cpu / c_io`` sweep).
    use_exact_root:
        Derive ``k`` from the exact cubic root (default) or the paper's
        compact approximation.
    use_histogram_statistics:
        Derive the partition estimates from duration histograms
        (:mod:`repro.core.statistics`) instead of Lemma 3's
        maximum-duration bound — the paper's future-work refinement for
        skewed data.
    kernel:
        Partition-pair join kernel (:mod:`repro.core.kernels`):
        ``"naive"`` compares every candidate pair (the extracted
        original loop), ``"sweep"`` joins both runs with a forward-scan
        sweep over start-sorted columns so only result pairs are touched
        in Python, ``"numpy"`` vectorizes the match step (broadcasted
        comparisons for small pairs, ``searchsorted`` range pruning for
        large ones; silently substituted by ``"sweep"`` — recorded in
        the result details — when numpy is not importable), and
        ``"auto"`` (default) picks per join from the planner's candidate
        estimate.  All kernels emit identical pairs in the identical
        order and charge the identical paper-model costs (two CPU
        comparisons per candidate, one false hit per failing candidate —
        accounted analytically per partition pair), so results, counters
        and checkpoints are kernel-independent.
    decode_cache_size:
        Capacity (in partition runs) of the per-run decoded-run cache
        that memoises the columnar decode of inner partitions across the
        many outer partitions that visit them (APA, Lemma 5).  Defaults
        to :data:`~repro.core.kernels.DEFAULT_CACHE_CAPACITY`; ``0``
        disables the cache entirely, which also steers ``"auto"`` kernel
        selection back to ``"naive"`` (the sorted-column kernels
        amortise their start sort through the cache).  Block IO is
        still charged on every access — the cache never skips a read,
        and a detected corruption on a run's blocks invalidates its
        cached decode.
    parallelism:
        Number of workers for the probe phase.  ``None`` (default) runs
        the classic sequential Algorithm 2 loop; any value ``>= 1``
        routes the probe through the partition-pair scheduler of
        :mod:`repro.engine.parallel`, which produces a result set and
        cost counters bit-identical to the sequential loop (see that
        module's determinism notes).  Ignored — with a fallback recorded
        in the result details — when a buffer pool is attached, because
        pool hits depend on the global read interleaving.
    parallel_backend:
        ``"thread"`` (default) or ``"process"``; see
        :mod:`repro.engine.parallel` for the tradeoffs.
    parallel_chunk_size:
        Probe tasks per scheduled chunk; defaults to a few chunks per
        worker.
    fault_policy, max_read_retries, verify_checksums:
        Resilience configuration; see :class:`OverlapJoinAlgorithm`.  The
        fault schedule is deterministic per ``(block, attempt)``, so the
        sequential loop and both parallel backends observe the identical
        faults and produce the identical match set and retry counters.
    parallel_chunk_timeout:
        Seconds to wait for one scheduled chunk before re-submitting it
        (``None``: wait forever).
    parallel_chunk_retries:
        Pooled re-submissions of a failed chunk before it is completed on
        the in-process sequential path.
    parallel_fault_plan:
        Executor-level chaos hook
        (:class:`~repro.engine.parallel.WorkerFaultPlan`) used by the
        resilience tests; leave ``None`` in production.
    budget:
        A :class:`~repro.engine.governor.QueryBudget` enforced
        cooperatively at outer-partition boundaries of the sequential
        loop and at chunk boundaries of both parallel backends; a
        violated budget raises :class:`~repro.engine.governor
        .BudgetExceededError` with the partial counters, and an
        already-exhausted budget (zero limit / non-positive deadline)
        fails fast before any partition work.
    cancellation:
        A :class:`~repro.engine.governor.CancellationToken`; a cancel
        observed at a boundary returns a partial :class:`JoinResult`
        with ``completed=False`` (see :class:`OverlapJoinAlgorithm`).
    checkpoint_path, checkpoint_every:
        Write a JSON checkpoint of ``(outer partitions completed,
        counters, resilience, matched pair positions)`` to
        *checkpoint_path* every *checkpoint_every* outer partitions
        (default 8), and unconditionally at a
        cancellation or budget stop.  Checkpoint state is
        sequential-equivalent regardless of backend.
    resume_from:
        Path of a checkpoint written by a previous (interrupted) run of
        the *same* join; the completed outer partitions are skipped and
        the final pairs/counters are bit-identical to an uninterrupted
        run.  A checkpoint from a different query is rejected with
        :class:`~repro.engine.governor.CheckpointMismatchError`.
    circuit_breaker:
        A shared :class:`~repro.engine.governor.CircuitBreaker`
        consulted before using the worker pool and fed the execution
        outcome afterwards; while open, the probe runs on the
        sequential path (``parallel_fallback: "circuit_open"``).
    index_path:
        Path of a persisted OIP index written by
        :func:`repro.storage.snapshot.save_index` (CLI:
        ``save-index``).  When the snapshot is valid *and* matches this
        join's relations and configuration, both partition lists are
        restored from it — bit-identical to an in-memory build, pairs
        and counters included — and the ``derive_k``/``oipcreate``
        phases are skipped.  A missing, corrupt, version-mismatched or
        foreign snapshot **degrades gracefully**: an
        ``index.recovery.degraded`` metric and tracing event record the
        structured reason, and the join falls back to the normal
        OIPCREATE rebuild.  Either way the result is the same; only the
        build cost differs.  ``details["index"]`` reports what
        happened.
    tracer, metrics, collect_report:
        Observability configuration; see :class:`OverlapJoinAlgorithm`.
        Spans cover ``derive_k``, both ``oipcreate`` sides, Lemma-1
        ``enumerate``, the ``probe`` phase and each outer partition;
        chunk lifecycle events are recorded driver-side so parallel
        determinism is unaffected.
    """

    name = "oip"

    # The OIPJOIN polls its cancellation token at partition/chunk
    # boundaries (where partial state is well-defined and resumable),
    # not on every block read.
    cancellation_via_storage = False

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        buffer_pool: Optional[BufferPool] = None,
        k: Optional[int] = None,
        weights: Optional[CostWeights] = None,
        use_exact_root: bool = True,
        use_histogram_statistics: bool = False,
        k_outer: Optional[int] = None,
        k_inner: Optional[int] = None,
        kernel: str = "auto",
        decode_cache_size: Optional[int] = None,
        parallelism: Optional[int] = None,
        parallel_backend: str = "thread",
        parallel_chunk_size: Optional[int] = None,
        fault_policy: Optional[FaultPolicy] = None,
        max_read_retries: int = 3,
        verify_checksums: bool = True,
        parallel_chunk_timeout: Optional[float] = None,
        parallel_chunk_retries: Optional[int] = None,
        parallel_fault_plan=None,
        budget: Optional[Any] = None,
        cancellation: Optional[Any] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        resume_from: Optional[str] = None,
        circuit_breaker: Optional[Any] = None,
        index_path: Optional[str] = None,
        index_provider: Optional[Any] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        collect_report: bool = False,
    ) -> None:
        super().__init__(
            device=device,
            buffer_pool=buffer_pool,
            fault_policy=fault_policy,
            max_read_retries=max_read_retries,
            verify_checksums=verify_checksums,
            cancellation=cancellation,
            tracer=tracer,
            metrics=metrics,
            collect_report=collect_report,
        )
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1 when pinned, got {k}")
        if (k_outer is None) != (k_inner is None):
            raise ValueError("k_outer and k_inner must be given together")
        if k_outer is not None:
            if k is not None:
                raise ValueError("pass either k or (k_outer, k_inner)")
            if k_outer < 1 or k_inner < 1:
                raise ValueError(
                    f"per-side granule counts must be >= 1, got "
                    f"({k_outer}, {k_inner})"
                )
        if kernel not in ("auto",) + KERNELS:
            raise ValueError(
                f"unknown join kernel {kernel!r}; choose from "
                f"{('auto',) + KERNELS}"
            )
        if decode_cache_size is not None and decode_cache_size < 0:
            raise ValueError(
                f"decode_cache_size must be >= 0 (0 disables the "
                f"cache), got {decode_cache_size}"
            )
        self._validate_parallel_keywords(
            parallelism=parallelism,
            parallel_backend=parallel_backend,
            parallel_chunk_size=parallel_chunk_size,
            parallel_chunk_timeout=parallel_chunk_timeout,
            parallel_chunk_retries=parallel_chunk_retries,
            parallel_fault_plan=parallel_fault_plan,
        )
        self._validate_lifecycle_keywords(
            buffer_pool=buffer_pool,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
        )
        self.fixed_k = k
        self.fixed_k_outer = k_outer
        self.fixed_k_inner = k_inner
        self.weights = weights
        self.use_exact_root = use_exact_root
        self.use_histogram_statistics = use_histogram_statistics
        self.kernel = kernel
        self.decode_cache_size = (
            DEFAULT_CACHE_CAPACITY
            if decode_cache_size is None
            else decode_cache_size
        )
        #: The decoded-run cache of the most recent run (rebuilt per
        #: join; the base class publishes its ``kernel.cache.*`` metrics).
        self._kernel_cache: Optional[DecodedRunCache] = None
        self.parallelism = parallelism
        self.parallel_backend = parallel_backend
        self.parallel_chunk_size = parallel_chunk_size
        self.parallel_chunk_timeout = parallel_chunk_timeout
        self.parallel_chunk_retries = (
            2 if parallel_chunk_retries is None else parallel_chunk_retries
        )
        self.parallel_fault_plan = parallel_fault_plan
        self.budget = budget
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = (
            DEFAULT_CHECKPOINT_EVERY
            if checkpoint_every is None
            else checkpoint_every
        )
        self.resume_from = resume_from
        if index_path is not None and index_provider is not None:
            raise ValueError(
                "pass either index_path (restore from a file) or "
                "index_provider (restore from pinned sections), not both"
            )
        if index_provider is not None and not callable(index_provider):
            raise ValueError(
                "index_provider must be callable as "
                "provider(outer, inner, storage=..., expected=...)"
            )
        self.circuit_breaker = circuit_breaker
        self.index_path = index_path
        #: A callable ``(outer, inner, *, storage, expected) ->
        #: LoadedIndex`` restoring from already-parsed snapshot sections
        #: (see :class:`repro.storage.snapshot.ParsedSnapshot`); the
        #: serving layer uses it to pin a generation in memory while the
        #: file on disk moves on.  Failures degrade to a rebuild exactly
        #: like a failed ``index_path`` load.
        self.index_provider = index_provider

    @staticmethod
    def _validate_parallel_keywords(
        parallelism: Optional[int],
        parallel_backend: str,
        parallel_chunk_size: Optional[int],
        parallel_chunk_timeout: Optional[float],
        parallel_chunk_retries: Optional[int],
        parallel_fault_plan,
    ) -> None:
        """All parallel-keyword interaction rules, in one place.

        Beyond per-value range checks, keywords that only the *pooled*
        execution path can honour are rejected when no pool will exist:
        ``parallelism=None`` runs the classic sequential loop (no chunks
        at all) and ``parallelism=1`` the inline chunk path (no pool, so
        nothing can time out, be retried, or have worker faults
        injected).  Silently ignoring them would let a caller believe a
        timeout was armed when it was not.
        """
        if parallelism is not None and parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1 when given, got {parallelism}"
            )
        if parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"unknown parallel backend {parallel_backend!r}; "
                "choose 'thread' or 'process'"
            )
        if parallel_chunk_size is not None and parallel_chunk_size < 1:
            raise ValueError(
                f"parallel chunk size must be >= 1, got {parallel_chunk_size}"
            )
        if parallel_chunk_timeout is not None and parallel_chunk_timeout <= 0:
            raise ValueError(
                "parallel chunk timeout must be positive, got "
                f"{parallel_chunk_timeout}"
            )
        if parallel_chunk_retries is not None and parallel_chunk_retries < 0:
            raise ValueError(
                "parallel chunk retries must be >= 0, got "
                f"{parallel_chunk_retries}"
            )
        pooled_only = [
            name
            for name, value in (
                ("parallel_chunk_timeout", parallel_chunk_timeout),
                ("parallel_chunk_retries", parallel_chunk_retries),
                ("parallel_fault_plan", parallel_fault_plan),
            )
            if value is not None
        ]
        if parallelism is None:
            if parallel_chunk_size is not None:
                pooled_only.insert(0, "parallel_chunk_size")
            if pooled_only:
                raise ValueError(
                    f"{', '.join(pooled_only)} require(s) parallel "
                    "execution; pass parallelism>=2 (the sequential "
                    "loop has no chunks)"
                )
        elif parallelism == 1 and pooled_only:
            raise ValueError(
                f"{', '.join(pooled_only)} require(s) a worker pool; "
                "parallelism=1 runs chunks inline where no timeout, "
                "retry or worker fault can apply — pass parallelism>=2"
            )

    @staticmethod
    def _validate_lifecycle_keywords(
        buffer_pool: Optional[BufferPool],
        checkpoint_path: Optional[str],
        checkpoint_every: Optional[int],
        resume_from: Optional[str],
    ) -> None:
        """Checkpoint/resume keyword interaction rules, in one place."""
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ValueError(
                    "checkpoint_every has no effect without "
                    "checkpoint_path"
                )
        if buffer_pool is not None and (
            checkpoint_path is not None or resume_from is not None
        ):
            # Buffer-hit accounting depends on the pool's (transient)
            # content, which a checkpoint cannot capture — a resumed run
            # could not reproduce the uninterrupted counters.
            raise ValueError(
                "checkpoint/resume is not supported with a buffer pool "
                "(pool-hit counters are not reproducible across runs)"
            )

    # ------------------------------------------------------------------

    def _derive_k(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
    ) -> Optional[KDerivation]:
        if self.fixed_k is not None or self.fixed_k_outer is not None:
            return None
        if self.use_histogram_statistics:
            from .statistics import histogram_cost_model

            weights = (
                self.weights
                if self.weights is not None
                else self.device.weights
            )
            model = histogram_cost_model(
                outer,
                inner,
                tuples_per_block=self.device.tuples_per_block,
                weights=weights,
            )
        else:
            model = cost_model_for(
                outer, inner, device=self.device, weights=self.weights
            )
        return derive_k(model, use_exact_root=self.use_exact_root)

    def _index_expectation(self) -> dict:
        """What a snapshot must have been built with to be structurally
        interchangeable with the index this join would build itself."""
        if self.fixed_k is not None:
            mode = "fixed"
        elif self.fixed_k_outer is not None:
            mode = "per_side"
        else:
            mode = "derived"
        weights = (
            self.weights if self.weights is not None else self.device.weights
        )
        return {
            "tuples_per_block": self.device.tuples_per_block,
            "k_mode": mode,
            "k": self.fixed_k,
            "k_outer": self.fixed_k_outer,
            "k_inner": self.fixed_k_inner,
            "use_exact_root": self.use_exact_root,
            "use_histogram_statistics": self.use_histogram_statistics,
            "weights": (weights.cpu, weights.io),
        }

    @property
    def _uses_index(self) -> bool:
        return self.index_path is not None or self.index_provider is not None

    def _load_index(self, outer, inner, storage, tracer):
        """Try to restore both partition lists from ``index_path`` (or
        the pinned-section ``index_provider``).

        Returns ``(LoadedIndex | None, details)``.  Every failure mode —
        missing file, corrupt container, version or configuration
        mismatch, foreign relations — degrades to ``None`` with an
        ``index.recovery.degraded`` metric and a structured reason; the
        caller rebuilds in memory and the run is bit-identical either
        way.  Validation happens before any block is materialised, so a
        degrade leaves *storage* (and the counters) untouched.
        """
        from ..storage.snapshot import SnapshotError, load_index

        provider = self.index_provider
        path = (
            self.index_path
            if provider is None
            else getattr(provider, "path", "<provider>")
        )
        with tracer.span("index.load", path=path) as span:
            try:
                if provider is not None:
                    loaded = provider(
                        outer,
                        inner,
                        storage=storage,
                        expected=self._index_expectation(),
                    )
                else:
                    loaded = load_index(
                        path,
                        outer,
                        inner,
                        storage=storage,
                        expected=self._index_expectation(),
                    )
            except SnapshotError as error:
                reason = error.reason
            except OSError as error:  # pragma: no cover - racing unlink
                reason = "unreadable"
            else:
                span.set("loaded", True)
                span.set("generation", loaded.generation)
                if self.metrics is not None:
                    self.metrics.counter("index.recovery.loaded").inc(1)
                return loaded, {
                    "path": path,
                    "loaded": True,
                    "generation": loaded.generation,
                }
            span.set("loaded", False)
            span.set("reason", reason)
        tracer.event("index.degraded", path=path, reason=reason)
        if self.metrics is not None:
            self.metrics.counter("index.recovery.degraded").inc(1)
            self.metrics.counter(
                f"index.recovery.degraded.{reason}"
            ).inc(1)
        return None, {"path": path, "loaded": False, "reason": reason}

    def _governed_run(self):
        """The per-run governor (None when no lifecycle feature is on)."""
        if (
            self.budget is None
            and self.cancellation is None
            and self.checkpoint_path is None
        ):
            return None
        from ..engine.governor import GovernedRun

        weights = (
            self.weights if self.weights is not None else self.device.weights
        )
        return GovernedRun(
            budget=self.budget,
            cancellation=self.cancellation,
            weights=weights,
            tracer=self._run_tracer,
        )

    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        # Imported lazily so repro.core keeps no import-time dependency
        # on repro.engine (the planner imports this module).
        from ..engine.governor import (
            CheckpointWriter,
            QueryCheckpoint,
            make_fingerprint,
        )

        tracer = self._run_tracer
        governor = self._governed_run()
        if governor is not None:
            # Fail fast on an already-exhausted budget: no k derivation,
            # no partitioning, no partition work.
            governor.preflight()
        checkpoint = (
            QueryCheckpoint.load(self.resume_from)
            if self.resume_from is not None
            else None
        )

        # Storage precedes the (optional) snapshot load: construction
        # makes no charges, so a degraded load hands the rebuild an
        # untouched manager and the counters stay bit-identical.
        storage = self._storage(counters)
        loaded = None
        index_details = None
        prior_cache = self._kernel_cache
        if self._uses_index:
            loaded, index_details = self._load_index(
                outer, inner, storage, tracer
            )

        if loaded is not None:
            # The snapshot recorded the same derivation this join would
            # run (the load validated that), caps included.
            k_outer, k_inner = loaded.k_outer, loaded.k_inner
            derivation = None
            self_adjusting = loaded.meta.get("k_mode") == "derived"
            k_steps = loaded.meta.get("k_steps")
            k_oscillated = loaded.meta.get("k_oscillated")
        else:
            with tracer.span("derive_k") as k_span:
                derivation = self._derive_k(outer, inner)
                if derivation is not None:
                    k_outer = k_inner = derivation.k
                elif self.fixed_k is not None:
                    k_outer = k_inner = self.fixed_k
                else:
                    k_outer, k_inner = (
                        self.fixed_k_outer, self.fixed_k_inner
                    )
                # More granules than time points cannot reduce false hits
                # further (d is already 1); cap to keep index arithmetic small.
                k_outer = max(1, min(k_outer, outer.time_range_duration))
                k_inner = max(1, min(k_inner, inner.time_range_duration))
                k_span.set("k_outer", k_outer)
                k_span.set("k_inner", k_inner)
                k_span.set("self_adjusting", derivation is not None)
            self_adjusting = derivation is not None
            k_steps = derivation.steps if derivation is not None else None
            k_oscillated = (
                derivation.oscillated if derivation is not None else None
            )

        # Kernel choice is statistics-driven ("auto") or pinned by the
        # caller/planner; every kernel is bit-identical in pairs and
        # counters, so this only decides physical execution speed.  A
        # pinned decode_cache_size=0 disables the cache and steers
        # "auto" away from the cache-amortised sorted-column kernels.
        cache_enabled = self.decode_cache_size > 0
        kernel = resolve_kernel(
            self.kernel, outer, inner, cache_enabled=cache_enabled
        )
        decode_cache = (
            DecodedRunCache(self.decode_cache_size) if cache_enabled else None
        )
        if self._uses_index and prior_cache is not None:
            # An index (re)load starts a new snapshot generation with
            # fresh block ids: any decode a previous run of this
            # instance cached could be served stale.  Purge the old
            # cache and surface the purge under this run's
            # kernel.cache.invalidations metric.  (Degraded loads count
            # too — the rebuild also re-numbers the blocks.)
            purged = prior_cache.invalidate_all()
            if purged and decode_cache is not None:
                decode_cache.invalidations += purged
        self._kernel_cache = decode_cache
        candidate_histogram = (
            self.metrics.histogram("join.kernel.candidates")
            if self.metrics is not None
            else None
        )

        if loaded is not None:
            outer_list = loaded.outer_list
            inner_list = loaded.inner_list
            config_r = outer_list.config
            config_s = inner_list.config
        else:
            config_r = OIPConfiguration.for_relation(outer, k_outer)
            config_s = OIPConfiguration.for_relation(inner, k_inner)
            with tracer.span("oipcreate", side="outer") as create_span:
                outer_list = oip_create(outer, config_r, storage)
                create_span.set("partitions", outer_list.partition_count)
            with tracer.span("oipcreate", side="inner") as create_span:
                inner_list = oip_create(inner, config_s, storage)
                create_span.set("partitions", inner_list.partition_count)
        if self.metrics is not None:
            # Deterministic distribution of partition sizes (in blocks):
            # same input and k ⇒ identical exported histogram.
            histogram = self.metrics.histogram("oip.partition_blocks")
            for partition_list in (outer_list, inner_list):
                for node in partition_list.iter_nodes():
                    histogram.observe(len(node.run.block_ids))

        pairs: List = self._begin_pairs()
        start_at = 0
        fingerprint = None
        if checkpoint is not None or self.checkpoint_path is not None:
            fingerprint = make_fingerprint(
                self.name, k_outer, k_inner, outer, inner
            )
        if checkpoint is not None:
            checkpoint.validate(fingerprint, outer_list.partition_count)
            # The build phase above re-ran deterministically and re-made
            # the exact charges the original run made; the checkpoint
            # snapshot already contains them plus the completed probe
            # work, so overwriting keeps the final totals bit-identical
            # to an uninterrupted run.
            checkpoint.restore_into(counters, self._resilience)
            pairs.extend(checkpoint.rebuild_pairs(outer, inner))
            start_at = checkpoint.partitions_completed
        if governor is not None and self.checkpoint_path is not None:
            governor.attach_writer(
                CheckpointWriter(
                    self.checkpoint_path,
                    self.checkpoint_every,
                    fingerprint,
                    outer_list.partition_count,
                    outer,
                    inner,
                )
            )

        cancelled = False
        partitions_done = outer_list.partition_count
        parallel_details: dict = {}
        breaker = self.circuit_breaker
        use_parallel = (
            self.parallelism is not None and self.buffer_pool is None
        )
        if use_parallel and breaker is not None and not breaker.allow_parallel():
            # The breaker is open: repeated degraded executions made the
            # pool untrustworthy, so this join runs sequentially.
            use_parallel = False
            parallel_details = {
                "parallel_fallback": "circuit_open",
                "breaker_state": breaker.state,
            }
        execution_report = None
        if use_parallel:
            # Partition-pair scheduling over a worker pool; bit-identical
            # to the sequential loop below (see repro.engine.parallel).
            from ..engine.parallel import build_probe_schedule, execute_schedule

            with tracer.span("enumerate") as enum_span:
                schedule = build_probe_schedule(
                    outer_list, inner_list, k_inner, counters,
                    charge_from=start_at,
                )
                enum_span.set("tasks", schedule.task_count)
                enum_span.set("partition_pairs", schedule.pair_count)
            with tracer.span(
                "probe", mode="parallel", backend=self.parallel_backend
            ):
                report = execute_schedule(
                    schedule,
                    counters,
                    pairs,
                    workers=self.parallelism,
                    backend=self.parallel_backend,
                    chunk_size=self.parallel_chunk_size,
                    resilience=self._resilience,
                    fault_policy=self.fault_policy,
                    max_read_retries=self.max_read_retries,
                    timeout=self.parallel_chunk_timeout,
                    max_chunk_retries=self.parallel_chunk_retries,
                    worker_faults=self.parallel_fault_plan,
                    governor=governor,
                    start_at=start_at,
                    tracer=tracer,
                    kernel=kernel,
                    decode_cache=decode_cache,
                    candidate_histogram=candidate_histogram,
                )
            execution_report = report
            if breaker is not None:
                if report.downgraded_chunks or report.worker_crashes:
                    breaker.record_failure()
                else:
                    breaker.record_success()
                report.breaker_state = breaker.state
            cancelled = report.cancelled
            partitions_done = start_at + report.tasks_completed
            parallel_details = {
                "parallelism": self.parallelism,
                "parallel_backend": report.backend,
                "probe_tasks": schedule.task_count,
                "partition_pairs": schedule.pair_count,
                "probe_chunks": report.chunks,
            }
            if report.degraded:
                parallel_details["degraded_chunks"] = report.downgraded_chunks
            if report.chunk_retries:
                parallel_details["chunk_retries"] = report.chunk_retries
            if breaker is not None:
                parallel_details["breaker_state"] = breaker.state
        else:
            if self.parallelism is not None and self.buffer_pool is not None:
                # Buffer-pool hit accounting depends on the global read
                # order, which parallel execution would break.
                parallel_details = {"parallel_fallback": "buffer_pool"}
            with tracer.span("probe", mode="sequential"):
                cancelled, partitions_done = self._probe_sequential(
                    outer_list,
                    inner_list,
                    k_inner,
                    storage,
                    counters,
                    pairs,
                    governor=governor,
                    start_at=start_at,
                    kernel=kernel,
                    decode_cache=decode_cache,
                    candidate_histogram=candidate_histogram,
                )

        details = {
            "k": k_inner if k_inner == k_outer else (k_outer, k_inner),
            "granule_duration_outer": config_r.d,
            "granule_duration_inner": config_s.d,
            "outer_partitions": outer_list.partition_count,
            "inner_partitions": inner_list.partition_count,
            "self_adjusting": self_adjusting,
            "kernel": kernel,
        }
        if index_details is not None:
            details["index"] = index_details
        if self.kernel not in ("auto", kernel):
            # An explicitly pinned kernel that could not run here (the
            # numpy tier without numpy) — record the substitution.
            details["kernel_requested"] = self.kernel
        if not use_parallel and decode_cache is not None:
            # Deterministic on the sequential path (one probe thread);
            # worker-side caches are covered by the kernel.cache.*
            # metrics instead, whose exact split can depend on thread
            # scheduling.
            details["kernel_cache"] = decode_cache.snapshot()
        details.update(parallel_details)
        if k_steps is not None:
            details["k_derivation_steps"] = k_steps
            details["k_oscillated"] = k_oscillated
        if governor is not None:
            details["partitions_completed"] = partitions_done
            if start_at:
                details["resumed_from_partition"] = start_at
            if cancelled:
                details["cancelled"] = True
            if governor.last_checkpoint is not None:
                details["checkpoint"] = governor.last_checkpoint
        elif start_at:
            details["resumed_from_partition"] = start_at
        return JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details=details,
            completed=not cancelled,
            execution=execution_report,
        )

    def _probe_sequential(
        self,
        outer_list,
        inner_list,
        k_inner: int,
        storage: StorageManager,
        counters: CostCounters,
        pairs: List,
        governor=None,
        start_at: int = 0,
        kernel: str = "naive",
        decode_cache: Optional[DecodedRunCache] = None,
        candidate_histogram=None,
    ) -> Tuple[bool, int]:
        """The classic sequential Algorithm 2 probe loop: for every outer
        partition, issue an overlap query with the partition interval and
        walk the inner lazy list per Lemma 1, handing each relevant
        partition pair to the configured join *kernel*
        (:mod:`repro.core.kernels`).

        The paper's model costs are charged analytically per partition
        pair — ``2 * candidates`` CPU comparisons and ``candidates -
        results`` false hits, exactly what the historical per-candidate
        ``_match`` loop summed to — so the counters are identical for
        every kernel, and identical to the pre-kernel code, while the
        kernels are free to skip physical comparisons.  Block IO is
        charged per access as before; *decode_cache* only memoises the
        columnar decode of inner runs, and is invalidated for a run
        whenever a corruption (or buffer-pool invalidation) is detected
        while reading its blocks, so a stale decode is never served.

        Every outer partition is a cooperative boundary: the governor is
        consulted *before* the partition's work, so a cancel or budget
        stop leaves the counters exactly at the last completed
        partition.  Partitions below *start_at* (completed by the run a
        checkpoint was restored from) are skipped without charges.
        Returns ``(cancelled, partitions_completed)``.
        """
        config_r, config_s = outer_list.config, inner_list.config
        d_r, o_r = config_r.d, config_r.o
        d_s, o_s = config_s.d, config_s.o
        inner_range_start = o_s
        inner_range_stop = o_s + k_inner * d_s  # exclusive
        # Per-partition spans only when tracing is live — the disabled
        # path must not even construct span objects in this hot loop.
        # A depth-capped tracer (the serving path) counts as disabled
        # here once the cap is reached: its per-partition spans would
        # all be no-ops, so skip the calls wholesale.
        trace = (
            self._run_tracer
            if self._run_tracer.enabled
            and not getattr(self._run_tracer, "saturated", False)
            else None
        )
        # Hot-loop locals: these lookups used to be paid per candidate
        # pair (or per navigation test); hoisted, the loop pays them
        # once per probe instead.  kernel_function (not a raw
        # KERNEL_FUNCS lookup) supplies the sweep fallback when the
        # numpy tier cannot run in this process.
        kernel_fn = kernel_function(kernel)
        read_run = storage.read_run
        charge_cpu = counters.charge_cpu
        charge_false_hit = counters.charge_false_hit
        charge_partition_access = counters.charge_partition_access
        resilience = self._resilience
        cache = decode_cache
        observe = (
            candidate_histogram.observe
            if candidate_histogram is not None
            else None
        )

        for index, outer_node in enumerate(outer_list.iter_nodes()):
            if index < start_at:
                continue
            if governor is not None and governor.boundary(
                index, counters, resilience, pairs
            ):
                return True, index
            span = None
            if trace is not None:
                span = trace.span("probe.partition", partition=index)
            try:
                # Algorithm 2 fetches the outer partition before probing
                # it, so its reads are charged even when the range guard
                # below fails (the parallel schedule charges the same
                # way); only the columnar decode is deferred until a
                # relevant inner partition actually needs it.
                outer_tuples = list(
                    read_run(
                        outer_node.run,
                        context=(
                            "outer partition",
                            (outer_node.i, outer_node.j),
                        ),
                    )
                )
                query_start = o_r + outer_node.i * d_r
                query_end = o_r + (outer_node.j + 1) * d_r - 1
                charge_cpu(2)  # range-overlap guard of Algorithm 2
                if (
                    query_end < inner_range_start
                    or query_start >= inner_range_stop
                ):
                    continue
                s = (query_start - o_s) // d_s
                e = (query_end - o_s) // d_s
                n_outer = len(outer_tuples)
                outer_decoded = None

                node = inner_list.head
                while node is not None:
                    charge_cpu()  # j >= s test
                    if node.j < s:
                        break
                    branch = node
                    while branch is not None:
                        charge_cpu()  # i <= e test
                        if branch.i > e:
                            break
                        charge_partition_access()
                        run = branch.run
                        inner_context = (
                            "inner partition",
                            (branch.i, branch.j),
                        )
                        # IO is charged on every access; the cache only
                        # memoises the decode, never the block reads.
                        detected_before = (
                            resilience.corruptions_detected
                            + resilience.pool_invalidations
                        )
                        inner_tuples = list(
                            read_run(run, context=inner_context)
                        )
                        inner_decoded = None
                        if cache is not None:
                            key = id(run)
                            if (
                                resilience.corruptions_detected
                                + resilience.pool_invalidations
                            ) != detected_before:
                                # A corrupted block was detected (and
                                # recovered) while re-reading this run:
                                # any cached decode may be stale.
                                cache.invalidate(key)
                            inner_decoded = cache.get(key)
                        if inner_decoded is None:
                            if trace is not None:
                                with trace.span(
                                    "kernel.decode",
                                    tuples=len(inner_tuples),
                                ):
                                    inner_decoded = DecodedRun.from_tuples(
                                        inner_tuples
                                    )
                            else:
                                inner_decoded = DecodedRun.from_tuples(
                                    inner_tuples
                                )
                            if cache is not None:
                                cache.put(key, inner_decoded)
                        if outer_decoded is None:
                            outer_decoded = DecodedRun.from_tuples(
                                outer_tuples
                            )
                        # The paper's model costs, charged analytically:
                        # two endpoint comparisons per candidate pair
                        # and one false hit per candidate that is not a
                        # result — the exact totals of the per-candidate
                        # loop, whatever the kernel executes physically.
                        candidates = inner_decoded.length * n_outer
                        charge_cpu(2 * candidates)
                        if trace is not None:
                            with trace.span(
                                "kernel." + kernel, candidates=candidates
                            ):
                                matches = kernel_fn(
                                    outer_decoded, inner_decoded
                                )
                        else:
                            matches = kernel_fn(outer_decoded, inner_decoded)
                        charge_false_hit(candidates - len(matches))
                        if observe is not None:
                            observe(candidates)
                        # Ascending encoded order is the sequential
                        # inner-major emission order of Algorithm 2.
                        pairs += [
                            (
                                outer_tuples[encoded % n_outer],
                                inner_tuples[encoded // n_outer],
                            )
                            for encoded in matches
                        ]
                        branch = branch.right
                    node = node.down
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
        return False, outer_list.partition_count
