"""The lazy partition list (paper Section 4.2/4.3, Algorithm 1).

The set of possible OIP partitions forms a triangular grid graph with one
node per index pair ``(i, j)``, ``0 <= i <= j < k``.  The *lazy partition
list* is the compressed grid that materialises only non-empty partitions:

* the **main list** links nodes via ``down`` pointers in strictly
  *decreasing* ``j`` order, starting at the node with the largest ``j`` and
  smallest ``i``;
* each main-list node starts a **branch list** linking, via ``right``
  pointers, the nodes that share its ``j`` in strictly *increasing* ``i``
  order.

``OIPCREATE`` (:func:`oip_create`) builds the list in one pass after
sorting the relation by ``(j ASC, i DESC)``.  The sort guarantees every
tuple lands either in the current head node or in a brand-new node
prepended at the head, so insertion is O(1) and the total build cost is
O(n log n) — independent of ``k`` — while tuples of one partition are laid
out in contiguous storage blocks.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..storage.block import BlockRun
from ..storage.manager import StorageManager
from .oip import OIPConfiguration
from .relation import TemporalRelation, TemporalTuple

__all__ = ["PartitionNode", "LazyPartitionList", "oip_create"]


class PartitionNode:
    """One non-empty partition ``p_{i,j}`` with its storage run."""

    __slots__ = ("i", "j", "run", "down", "right")

    def __init__(self, i: int, j: int, run: BlockRun) -> None:
        self.i = i
        self.j = j
        self.run = run
        self.down: Optional["PartitionNode"] = None
        self.right: Optional["PartitionNode"] = None

    def __repr__(self) -> str:
        return f"PartitionNode(i={self.i}, j={self.j}, n={self.run.tuple_count})"

    @property
    def tuple_count(self) -> int:
        return self.run.tuple_count


class LazyPartitionList:
    """The compressed triangular grid graph of non-empty partitions."""

    __slots__ = ("config", "head", "storage")

    def __init__(
        self,
        config: OIPConfiguration,
        storage: StorageManager,
    ) -> None:
        self.config = config
        self.head: Optional[PartitionNode] = None
        self.storage = storage

    # -- navigation ------------------------------------------------------------

    def iter_main(self) -> Iterator[PartitionNode]:
        """Main-list nodes in decreasing ``j`` order."""
        node = self.head
        while node is not None:
            yield node
            node = node.down

    def iter_nodes(self) -> Iterator[PartitionNode]:
        """Every node, branch lists expanded (grid order)."""
        for main in self.iter_main():
            node: Optional[PartitionNode] = main
            while node is not None:
                yield node
                node = node.right

    def iter_relevant(self, s: int, e: int) -> Iterator[PartitionNode]:
        """Lemma 1 navigation: nodes with ``j >= s`` and ``i <= e``.

        Walks the main list while ``j >= s`` and each branch list while
        ``i <= e``; both lists are sorted, so the walk touches only the
        relevant nodes plus the two terminating comparisons.
        """
        main = self.head
        while main is not None and main.j >= s:
            node: Optional[PartitionNode] = main
            while node is not None and node.i <= e:
                yield node
                node = node.right
            main = main.down

    # -- statistics -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    @property
    def partition_count(self) -> int:
        """Number of materialised (non-empty) partitions."""
        return len(self)

    @property
    def tuple_count(self) -> int:
        return sum(node.tuple_count for node in self.iter_nodes())

    def index_pairs(self) -> List[Tuple[int, int]]:
        """All ``(i, j)`` pairs in grid order (tests and diagnostics)."""
        return [(node.i, node.j) for node in self.iter_nodes()]


def oip_create(
    relation: TemporalRelation,
    config: OIPConfiguration,
    storage: Optional[StorageManager] = None,
) -> LazyPartitionList:
    """Algorithm 1, ``OIPCREATE(r, (k, d, o))``.

    Sorts the relation by partition index ``(j ASC, i DESC)`` and builds
    the lazy partition list with O(1) head insertions.  Tuples of the same
    partition are appended consecutively, so each partition occupies a
    contiguous block run on the storage manager.
    """
    if storage is None:
        storage = StorageManager()
    partition_list = LazyPartitionList(config, storage)

    d, o = config.d, config.o

    def sort_key(tup: TemporalTuple) -> Tuple[int, int]:
        return ((tup.end - o) // d, -((tup.start - o) // d))

    for tup in sorted(relation, key=sort_key):
        i = (tup.start - o) // d
        j = (tup.end - o) // d
        head = partition_list.head
        if head is None or head.j < j:
            node = PartitionNode(i, j, storage.new_run())
            node.down = head
            partition_list.head = node
        elif head.i > i:
            node = PartitionNode(i, j, storage.new_run())
            node.down = head.down
            node.right = head
            partition_list.head = node
        storage.append(partition_list.head.run, tup)

    return partition_list
