"""Common interface for every overlap-join algorithm in the library.

All joins — the OIPJOIN and all baselines — answer the same question
(Section 1): given valid-time relations ``r`` and ``s``, find all pairs
``(r, s)`` with ``r.T`` intersecting ``s.T``.  They share

* the output: a :class:`JoinResult` carrying the matched pairs and the
  :class:`~repro.storage.metrics.CostCounters` accumulated while producing
  them, and
* the environment: a :class:`~repro.storage.device.DeviceProfile` plus an
  optional buffer pool, injected at construction.

The base class also fixes the charging conventions so counters are
comparable across algorithms: one ``partition access`` per fetched
partition/index node, one ``false hit`` per fetched candidate that fails
the overlap test, CPU comparisons for every endpoint/index comparison the
algorithm performs.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.trace import NULL_TRACER
from ..storage.buffer import BufferPool
from ..storage.device import DeviceProfile
from ..storage.faults import FaultInjector, FaultPolicy
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters, CostWeights, ResilienceCounters
from .relation import TemporalRelation, TemporalTuple

__all__ = ["JoinResult", "OverlapJoinAlgorithm", "join_pair_key"]

#: A result pair: (outer tuple, inner tuple).
JoinPair = Tuple[TemporalTuple, TemporalTuple]


def join_pair_key(pair: JoinPair) -> Tuple[int, int, Any, int, int, Any]:
    """Canonical sort/set key for a result pair (tests compare join outputs
    of different algorithms through this key)."""
    outer, inner = pair
    return (
        outer.start,
        outer.end,
        outer.payload,
        inner.start,
        inner.end,
        inner.payload,
    )


@dataclass
class JoinResult:
    """Output of one join execution.

    ``pairs`` is the overlap-join result ``{r o s | r.T cap s.T}``;
    ``counters`` the cost events charged while computing it; ``details``
    algorithm-specific facts (derived ``k``, partition counts, tree heights,
    ...) the benchmarks report.
    """

    algorithm: str
    pairs: List[JoinPair]
    counters: CostCounters
    details: Dict[str, Any] = field(default_factory=dict)
    #: Fault-handling events of the run (all zero on a healthy device).
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    #: False when the run stopped early at a cooperative cancellation
    #: point — ``pairs``/``counters`` then hold the well-formed partial
    #: state at the last boundary reached, not the full join.
    completed: bool = True
    #: Wall-clock duration of :meth:`OverlapJoinAlgorithm.join`, measured
    #: by the base class so library callers and run reports get timing
    #: without re-measuring around the call.
    elapsed_ms: float = 0.0
    #: The parallel :class:`~repro.engine.parallel.ExecutionReport` when
    #: the probe ran on the worker-pool path (typed loosely: core does
    #: not import engine).
    execution: Optional[Any] = None
    #: The run-report document (see :mod:`repro.obs.report`), built when
    #: the algorithm was constructed with ``collect_report=True``.
    report: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def cardinality(self) -> int:
        """``n_z``, the number of result tuples."""
        return len(self.pairs)

    @property
    def false_hit_ratio(self) -> float:
        """False hits over fetched candidates for this run."""
        return self.counters.false_hit_ratio()

    def pair_keys(self) -> List[Tuple]:
        """Sorted canonical keys of all result pairs."""
        return sorted(join_pair_key(pair) for pair in self.pairs)

    def modelled_cost(self, weights: CostWeights) -> float:
        """Paper-style modelled cost of the run."""
        return self.counters.modelled_cost(weights)


class OverlapJoinAlgorithm(ABC):
    """Base class of all overlap joins.

    Subclasses implement :meth:`_execute`; the public :meth:`join` wraps it
    with fresh counters, empty-input short-circuiting, and result-count
    book-keeping, so every algorithm is measured identically.
    """

    #: Short name used in benchmark tables ("oip", "lqt", "rit", ...).
    name: str = "join"

    #: When True (the default), a cancellation token is enforced by the
    #: storage manager on every block read — the right granularity for
    #: algorithms without an outer-partition loop of their own.  The
    #: OIPJOIN overrides this to False and polls the token at partition/
    #: chunk boundaries through its governor instead.
    cancellation_via_storage: bool = True

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        buffer_pool: Optional[BufferPool] = None,
        fault_policy: Optional[FaultPolicy] = None,
        max_read_retries: int = 3,
        verify_checksums: bool = True,
        cancellation: Optional[Any] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        collect_report: bool = False,
    ) -> None:
        if max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be >= 0, got {max_read_retries}"
            )
        self.device = device if device is not None else DeviceProfile.main_memory()
        self.buffer_pool = buffer_pool
        self.fault_policy = fault_policy
        self.max_read_retries = max_read_retries
        self.verify_checksums = verify_checksums
        #: Optional :class:`~repro.engine.governor.CancellationToken`
        #: (duck typed: anything with ``poll``/``raise_if_cancelled``).
        self.cancellation = cancellation
        #: Phase tracer (:class:`~repro.obs.trace.Tracer`); defaults to
        #: the shared zero-allocation :data:`~repro.obs.trace.NULL_TRACER`.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional :class:`~repro.obs.registry.MetricsRegistry` the run's
        #: counters and subsystems publish into after every join.
        self.metrics = metrics
        #: When True, :meth:`join` builds the run-report document on
        #: ``JoinResult.report`` (attaching a private in-memory tracer if
        #: none is enabled, so the report always has phase timings).
        self.collect_report = collect_report
        self._resilience = ResilienceCounters()
        self._partial_pairs: List[JoinPair] = []
        self._run_tracer: Any = self.tracer

    def join(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
    ) -> JoinResult:
        """Compute the overlap join of *outer* and *inner*.

        With a cancellation token attached, a cancel observed at a
        cooperative point unwinds into a *partial* result: the pairs
        collected so far, the counters at the stop point, and
        ``completed=False``."""
        started = time.perf_counter()
        counters = CostCounters()
        resilience = ResilienceCounters()
        self._resilience = resilience
        self._partial_pairs = []
        tracer = self.tracer
        if self.collect_report and not tracer.enabled:
            # The report needs phase timings even when the caller did not
            # attach a tracer: collect into a private in-memory one.
            from ..obs.trace import Tracer

            tracer = Tracer()
        self._run_tracer = tracer
        spans_before = tracer.span_count
        events_before = tracer.event_count
        roots_before = len(tracer.roots)
        if outer.is_empty or inner.is_empty:
            result = JoinResult(
                algorithm=self.name,
                pairs=[],
                counters=counters,
                resilience=resilience,
            )
        else:
            # Imported lazily: repro.engine.governor must stay importable
            # without repro.core (and vice versa).
            from ..engine.governor import QueryCancelledError

            try:
                with tracer.span("join", algorithm=self.name):
                    result = self._execute(outer, inner, counters)
            except QueryCancelledError:
                result = JoinResult(
                    algorithm=self.name,
                    pairs=list(self._partial_pairs),
                    counters=counters,
                    details={"cancelled": True},
                    completed=False,
                )
        result.counters.result_tuples = len(result.pairs)
        result.resilience = resilience
        result.elapsed_ms = (time.perf_counter() - started) * 1000.0
        if self.metrics is not None or self.collect_report:
            self._finish_observability(
                result, tracer, spans_before, events_before, roots_before
            )
        return result

    def _finish_observability(
        self,
        result: JoinResult,
        tracer: Any,
        spans_before: int,
        events_before: int,
        roots_before: int,
    ) -> None:
        """Publish the run into the metrics registry and/or build the
        run-report document.  Runs strictly after the join so the hot
        path carries no observability cost."""
        if self.metrics is not None:
            for key, value in result.counters.snapshot().items():
                self.metrics.counter(f"join.counters.{key}").inc(value)
            for key, value in result.resilience.snapshot().items():
                self.metrics.counter(f"join.resilience.{key}").inc(value)
            for subsystem in (
                self.buffer_pool,
                self.fault_policy,
                getattr(self, "circuit_breaker", None),
                getattr(self, "_kernel_cache", None),
            ):
                publish = getattr(subsystem, "publish_metrics", None)
                if publish is not None:
                    publish(self.metrics)
        if self.collect_report:
            from ..obs.report import build_report

            root = (
                tracer.roots[-1] if len(tracer.roots) > roots_before else None
            )
            weights = getattr(self, "weights", None)
            if weights is None:
                weights = self.device.weights
            result.report = build_report(
                result,
                self.device,
                weights,
                root=root,
                span_count=tracer.span_count - spans_before,
                event_count=tracer.event_count - events_before,
                governor=self._governor_summary(result),
                metrics=(
                    self.metrics.snapshot()
                    if self.metrics is not None
                    else None
                ),
            )

    @staticmethod
    def _governor_summary(result: JoinResult) -> Optional[Dict[str, Any]]:
        """The governor-outcome section of the run report, distilled from
        the result details the governed run recorded (None when the run
        was not governed)."""
        keys = (
            "partitions_completed",
            "resumed_from_partition",
            "cancelled",
            "checkpoint",
        )
        summary = {
            key: result.details[key] for key in keys if key in result.details
        }
        return summary or None

    def _begin_pairs(self) -> List[JoinPair]:
        """The pair sink of one execution.  Registering the list here
        lets :meth:`join` hand back a well-formed partial result when a
        cancellation unwinds through :class:`QueryCancelledError`."""
        self._partial_pairs = []
        return self._partial_pairs

    def _storage(self, counters: CostCounters) -> StorageManager:
        """The storage manager of one run, wired with this algorithm's
        device, buffer pool and resilience configuration.  All algorithms
        build their storage through this helper so fault injection and
        checksum verification apply uniformly."""
        injector = (
            FaultInjector(self.fault_policy)
            if self.fault_policy is not None
            else None
        )
        return StorageManager(
            device=self.device,
            counters=counters,
            buffer_pool=self.buffer_pool,
            fault_injector=injector,
            resilience=self._resilience,
            max_retries=self.max_read_retries,
            verify_checksums=self.verify_checksums,
            cancellation=(
                self.cancellation if self.cancellation_via_storage else None
            ),
            tracer=self._run_tracer,
        )

    @abstractmethod
    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        """Algorithm-specific join over non-empty inputs."""

    # -- shared charging helpers --------------------------------------------

    @staticmethod
    def _match(
        outer: TemporalTuple,
        inner: TemporalTuple,
        counters: CostCounters,
        pairs: List[JoinPair],
    ) -> None:
        """Compare one candidate pair: two endpoint comparisons (``TS`` and
        ``TE``), then either emit the pair or record a false hit."""
        counters.charge_cpu(2)
        if outer.start <= inner.end and inner.start <= outer.end:
            pairs.append((outer, inner))
        else:
            counters.charge_false_hit()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(device={self.device.name!r})"
