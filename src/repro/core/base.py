"""Common interface for every overlap-join algorithm in the library.

All joins — the OIPJOIN and all baselines — answer the same question
(Section 1): given valid-time relations ``r`` and ``s``, find all pairs
``(r, s)`` with ``r.T`` intersecting ``s.T``.  They share

* the output: a :class:`JoinResult` carrying the matched pairs and the
  :class:`~repro.storage.metrics.CostCounters` accumulated while producing
  them, and
* the environment: a :class:`~repro.storage.device.DeviceProfile` plus an
  optional buffer pool, injected at construction.

The base class also fixes the charging conventions so counters are
comparable across algorithms: one ``partition access`` per fetched
partition/index node, one ``false hit`` per fetched candidate that fails
the overlap test, CPU comparisons for every endpoint/index comparison the
algorithm performs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..storage.buffer import BufferPool
from ..storage.device import DeviceProfile
from ..storage.faults import FaultInjector, FaultPolicy
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters, CostWeights, ResilienceCounters
from .relation import TemporalRelation, TemporalTuple

__all__ = ["JoinResult", "OverlapJoinAlgorithm", "join_pair_key"]

#: A result pair: (outer tuple, inner tuple).
JoinPair = Tuple[TemporalTuple, TemporalTuple]


def join_pair_key(pair: JoinPair) -> Tuple[int, int, Any, int, int, Any]:
    """Canonical sort/set key for a result pair (tests compare join outputs
    of different algorithms through this key)."""
    outer, inner = pair
    return (
        outer.start,
        outer.end,
        outer.payload,
        inner.start,
        inner.end,
        inner.payload,
    )


@dataclass
class JoinResult:
    """Output of one join execution.

    ``pairs`` is the overlap-join result ``{r o s | r.T cap s.T}``;
    ``counters`` the cost events charged while computing it; ``details``
    algorithm-specific facts (derived ``k``, partition counts, tree heights,
    ...) the benchmarks report.
    """

    algorithm: str
    pairs: List[JoinPair]
    counters: CostCounters
    details: Dict[str, Any] = field(default_factory=dict)
    #: Fault-handling events of the run (all zero on a healthy device).
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    #: False when the run stopped early at a cooperative cancellation
    #: point — ``pairs``/``counters`` then hold the well-formed partial
    #: state at the last boundary reached, not the full join.
    completed: bool = True

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def cardinality(self) -> int:
        """``n_z``, the number of result tuples."""
        return len(self.pairs)

    @property
    def false_hit_ratio(self) -> float:
        """False hits over fetched candidates for this run."""
        return self.counters.false_hit_ratio()

    def pair_keys(self) -> List[Tuple]:
        """Sorted canonical keys of all result pairs."""
        return sorted(join_pair_key(pair) for pair in self.pairs)

    def modelled_cost(self, weights: CostWeights) -> float:
        """Paper-style modelled cost of the run."""
        return self.counters.modelled_cost(weights)


class OverlapJoinAlgorithm(ABC):
    """Base class of all overlap joins.

    Subclasses implement :meth:`_execute`; the public :meth:`join` wraps it
    with fresh counters, empty-input short-circuiting, and result-count
    book-keeping, so every algorithm is measured identically.
    """

    #: Short name used in benchmark tables ("oip", "lqt", "rit", ...).
    name: str = "join"

    #: When True (the default), a cancellation token is enforced by the
    #: storage manager on every block read — the right granularity for
    #: algorithms without an outer-partition loop of their own.  The
    #: OIPJOIN overrides this to False and polls the token at partition/
    #: chunk boundaries through its governor instead.
    cancellation_via_storage: bool = True

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        buffer_pool: Optional[BufferPool] = None,
        fault_policy: Optional[FaultPolicy] = None,
        max_read_retries: int = 3,
        verify_checksums: bool = True,
        cancellation: Optional[Any] = None,
    ) -> None:
        if max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be >= 0, got {max_read_retries}"
            )
        self.device = device if device is not None else DeviceProfile.main_memory()
        self.buffer_pool = buffer_pool
        self.fault_policy = fault_policy
        self.max_read_retries = max_read_retries
        self.verify_checksums = verify_checksums
        #: Optional :class:`~repro.engine.governor.CancellationToken`
        #: (duck typed: anything with ``poll``/``raise_if_cancelled``).
        self.cancellation = cancellation
        self._resilience = ResilienceCounters()
        self._partial_pairs: List[JoinPair] = []

    def join(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
    ) -> JoinResult:
        """Compute the overlap join of *outer* and *inner*.

        With a cancellation token attached, a cancel observed at a
        cooperative point unwinds into a *partial* result: the pairs
        collected so far, the counters at the stop point, and
        ``completed=False``."""
        counters = CostCounters()
        resilience = ResilienceCounters()
        self._resilience = resilience
        self._partial_pairs = []
        if outer.is_empty or inner.is_empty:
            return JoinResult(
                algorithm=self.name,
                pairs=[],
                counters=counters,
                resilience=resilience,
            )
        # Imported lazily: repro.engine.governor must stay importable
        # without repro.core (and vice versa).
        from ..engine.governor import QueryCancelledError

        try:
            result = self._execute(outer, inner, counters)
        except QueryCancelledError:
            result = JoinResult(
                algorithm=self.name,
                pairs=list(self._partial_pairs),
                counters=counters,
                details={"cancelled": True},
                completed=False,
            )
        result.counters.result_tuples = len(result.pairs)
        result.resilience = resilience
        return result

    def _begin_pairs(self) -> List[JoinPair]:
        """The pair sink of one execution.  Registering the list here
        lets :meth:`join` hand back a well-formed partial result when a
        cancellation unwinds through :class:`QueryCancelledError`."""
        self._partial_pairs = []
        return self._partial_pairs

    def _storage(self, counters: CostCounters) -> StorageManager:
        """The storage manager of one run, wired with this algorithm's
        device, buffer pool and resilience configuration.  All algorithms
        build their storage through this helper so fault injection and
        checksum verification apply uniformly."""
        injector = (
            FaultInjector(self.fault_policy)
            if self.fault_policy is not None
            else None
        )
        return StorageManager(
            device=self.device,
            counters=counters,
            buffer_pool=self.buffer_pool,
            fault_injector=injector,
            resilience=self._resilience,
            max_retries=self.max_read_retries,
            verify_checksums=self.verify_checksums,
            cancellation=(
                self.cancellation if self.cancellation_via_storage else None
            ),
        )

    @abstractmethod
    def _execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        counters: CostCounters,
    ) -> JoinResult:
        """Algorithm-specific join over non-empty inputs."""

    # -- shared charging helpers --------------------------------------------

    @staticmethod
    def _match(
        outer: TemporalTuple,
        inner: TemporalTuple,
        counters: CostCounters,
        pairs: List[JoinPair],
    ) -> None:
        """Compare one candidate pair: two endpoint comparisons (``TS`` and
        ``TE``), then either emit the pair or record a false hit."""
        counters.charge_cpu(2)
        if outer.start <= inner.end and inner.start <= outer.end:
            pairs.append((outer, inner))
        else:
            counters.charge_false_hit()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(device={self.device.name!r})"
