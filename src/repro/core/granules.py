"""Cost model and derivation of the optimal granule count ``k``
(paper Section 6.2).

The OIPJOIN is *self-adjusting*: before partitioning, it derives the
number of granules ``k`` that minimises the overhead cost

    cost(k) = x * APA + y * AFR                      (Equation 1)

where

    x = |p_r| * (c_io + 2 * c_cpu)
    y = |p_r| * n_s * (c_io / b  +  2 * (n_r / |p_r|) * 2 * c_cpu)

``x`` prices partition accesses (one extra block IO per accessed inner
partition plus two index comparisons) and ``y`` prices false hits (extra
block transfers at ``b`` tuples per block plus two endpoint comparisons per
false hit on either side).  Substituting the analytical
``APA <= tau * (k^2 + k + 1) / 3`` (Theorem 2) and ``AFR < 1/k``
(Theorem 1) and setting the derivative to zero yields a cubic in ``k``
whose positive real root the paper states in closed form, with the compact
approximation ``k ~ cbrt(3y / (2 x tau))``.

Because ``|p_r|`` and ``tau`` themselves depend on ``k`` (Lemma 3), the
paper determines ``k`` by the fixed-point iteration of Equation (2),
starting from ``k_0 = 1`` and recomputing ``|p_r|_n`` and ``tau_n`` from
``k_n`` until convergence; if the integer rounding makes the sequence
oscillate between two values, the final ``k`` is their average.  Example 8
and Figure 5 show the iteration; :func:`derive_k` reproduces it and records
the trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..storage.device import DeviceProfile
from ..storage.metrics import CostWeights
from .oip import tightening_factor, used_partition_bound
from .relation import TemporalRelation

__all__ = [
    "JoinCostModel",
    "KDerivation",
    "derive_k",
    "cost_model_for",
    "approximate_k",
    "exact_k",
]


@dataclass(frozen=True)
class JoinCostModel:
    """All inputs of the Section 6.2 cost model for one join.

    ``outer_*``/``inner_*`` describe the relations (``n_r``/``n_s`` and the
    duration fractions ``lambda_r``/``lambda_s``); ``tuples_per_block`` is
    ``b``; ``weights`` carries ``c_cpu``/``c_io``.
    """

    outer_cardinality: int
    inner_cardinality: int
    outer_duration_fraction: float
    inner_duration_fraction: float
    tuples_per_block: int = 14
    weights: CostWeights = CostWeights.main_memory()

    def __post_init__(self) -> None:
        if self.outer_cardinality < 0 or self.inner_cardinality < 0:
            raise ValueError("cardinalities must be non-negative")
        if self.tuples_per_block < 1:
            raise ValueError(
                f"tuples per block must be >= 1, got {self.tuples_per_block}"
            )
        for frac in (self.outer_duration_fraction, self.inner_duration_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(
                    f"duration fractions must be within [0, 1], got {frac}"
                )

    # -- Lemma 3 quantities for a candidate k -------------------------------

    def outer_partitions(self, k: int) -> int:
        """``|p_r|_n``: bound on non-empty outer partitions (Lemma 3)."""
        return max(
            used_partition_bound(
                k, self.outer_duration_fraction, self.outer_cardinality
            ),
            1,
        )

    def tightening(self, k: int) -> float:
        """``tau_n``: inner used/possible partition ratio."""
        return tightening_factor(
            k, self.inner_duration_fraction, self.inner_cardinality
        )

    # -- Equation (1) ---------------------------------------------------------

    def x_term(self, outer_partitions: int) -> float:
        """``x = |p_r| * (c_io + 2 c_cpu)``."""
        return outer_partitions * (self.weights.io + 2 * self.weights.cpu)

    def y_term(self, outer_partitions: int) -> float:
        """``y = |p_r| * n_s * (c_io/b + 4 * n_r * c_cpu / |p_r|)``."""
        per_false_hit = (
            self.weights.io / self.tuples_per_block
            + 2 * (self.outer_cardinality / outer_partitions)
            * 2
            * self.weights.cpu
        )
        return outer_partitions * self.inner_cardinality * per_false_hit

    def overhead_cost(self, k: int) -> float:
        """``cost(k) = x * APA + y * AFR`` with the analytical APA/AFR.

        This is the curve of Figure 7(a); its minimiser is the derived k.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        outer_parts = self.outer_partitions(k)
        tau = self.tightening(k)
        apa = min(
            tau * (k * k + k + 1) / 3.0,
            float(self.inner_cardinality),
        )
        afr = 1.0 / k
        return self.x_term(outer_parts) * apa + self.y_term(outer_parts) * afr


def approximate_k(x: float, y: float, tau: float) -> float:
    """The paper's compact approximation ``k ~ cbrt(3y / (2 x tau))``."""
    if x <= 0 or tau <= 0:
        raise ValueError("x and tau must be positive")
    if y <= 0:
        return 1.0
    return (3.0 * y / (2.0 * x * tau)) ** (1.0 / 3.0)


def exact_k(x: float, y: float, tau: float) -> float:
    """Positive real root of ``d/dk [x tau (k^2+k+1)/3 + y/k] = 0``.

    The stationarity condition is ``x tau (2k/3 + 1/3) = y / k^2``, i.e.
    the depressed-cubic problem ``2 x tau k^3 + x tau k^2 - 3 y = 0`` whose
    closed form the paper prints.  We evaluate the same root via the stated
    radical expression, falling back to the approximation when the inner
    square root would go negative (tiny ``y``).
    """
    if x <= 0 or tau <= 0:
        raise ValueError("x and tau must be positive")
    if y <= 0:
        return 1.0
    xt = x * tau
    discriminant = y * (81.0 * y - xt)
    if discriminant < 0:
        return approximate_k(x, y, tau)
    radical = (162.0 * y - xt + 18.0 * math.sqrt(discriminant)) * xt * xt
    if radical <= 0:
        return approximate_k(x, y, tau)
    cube_root = radical ** (1.0 / 3.0)
    return cube_root / (6.0 * xt) + xt / (3.0 * cube_root) - 1.0 / 6.0


@dataclass
class KDerivation:
    """Result of the Equation (2) fixed-point iteration.

    ``trace`` holds one row per step — ``(k_n, |p_r|_n, tau_n)`` exactly as
    the table in Example 8 lists them — so Figure 5 can be regenerated from
    the derivation object directly.
    """

    k: int
    converged: bool
    oscillated: bool
    trace: List["KStep"] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.trace)


@dataclass(frozen=True)
class KStep:
    """One iteration row: the candidate ``k_n`` and the derived
    ``|p_r|_n`` and ``tau_n`` it implies."""

    k: int
    outer_partitions: int
    tau: float


def derive_k(
    model: JoinCostModel,
    max_steps: int = 64,
    use_exact_root: bool = True,
) -> KDerivation:
    """Equation (2): iterate ``k_{n+1} = f(|p_r|_n, tau_n)`` from ``k_0 = 1``.

    Convergence: stop when ``k_{n+1} == k_n``.  Oscillation: when the
    sequence alternates between two values (the paper notes this can happen
    because of the ceiling functions and integer calculus), the final ``k``
    is the average of the two.
    """
    if model.inner_cardinality == 0 or model.outer_cardinality == 0:
        return KDerivation(k=1, converged=True, oscillated=False, trace=[])

    solver = exact_k if use_exact_root else approximate_k
    k = 1
    trace: List[KStep] = []
    seen: List[int] = [k]

    for _ in range(max_steps):
        outer_parts = model.outer_partitions(k)
        tau = model.tightening(k)
        trace.append(KStep(k=k, outer_partitions=outer_parts, tau=tau))
        x = model.x_term(outer_parts)
        y = model.y_term(outer_parts)
        next_k = max(1, round(solver(x, y, tau)))
        if next_k == k:
            return KDerivation(
                k=k, converged=True, oscillated=False, trace=trace
            )
        if len(seen) >= 2 and next_k == seen[-2]:
            # Two-cycle: the paper takes the average of the two values.
            final = max(1, round((next_k + k) / 2))
            trace.append(
                KStep(
                    k=final,
                    outer_partitions=model.outer_partitions(final),
                    tau=model.tightening(final),
                )
            )
            return KDerivation(
                k=final, converged=True, oscillated=True, trace=trace
            )
        seen.append(next_k)
        k = next_k

    return KDerivation(k=k, converged=False, oscillated=False, trace=trace)


def cost_model_for(
    outer: TemporalRelation,
    inner: TemporalRelation,
    device: Optional[DeviceProfile] = None,
    weights: Optional[CostWeights] = None,
) -> JoinCostModel:
    """Build the cost model from two relations and a device profile.

    ``weights`` overrides the device's cost weights when the experiment
    sweeps the ``c_cpu / c_io`` ratio independently of the block size
    (Figure 6).
    """
    if device is None:
        device = DeviceProfile.main_memory()
    return JoinCostModel(
        outer_cardinality=outer.cardinality,
        inner_cardinality=inner.cardinality,
        outer_duration_fraction=(
            outer.duration_fraction if not outer.is_empty else 0.0
        ),
        inner_duration_fraction=(
            inner.duration_fraction if not inner.is_empty else 0.0
        ),
        tuples_per_block=device.tuples_per_block,
        weights=weights if weights is not None else device.weights,
    )
