"""Distribution-aware tightening statistics — the paper's third
future-work item.

    "we have planned to develop statistics to tighten k not only based
     on the maximum duration of tuples, but also on the data
     distribution" (Section 8).

Lemma 3 bounds the number of used partitions from the *maximum* tuple
duration alone: every partition length up to ``ceil(lambda k) + 1``
granules is assumed usable.  When durations are skewed (a few long
outliers over a mass of short tuples — exactly the real datasets of
Table 2), that bound is far too pessimistic: it forces a large
``|p_r|`` estimate and a small tightening factor denominator, and the
optimiser under- or over-shoots k.

:class:`DurationHistogram` keeps per-granule-span tuple counts and
estimates the number of non-empty partitions *per span*: tuples that
span ``g`` or ``g+1`` granules (the two spans a duration can map to,
by Lemma 2) fall into one of the ``k - g`` partitions of that span, and
with ``m`` tuples thrown uniformly into ``c`` cells the expected number
of occupied cells is ``c * (1 - (1 - 1/c)^m)``.  Summing over spans
gives an expected used-partition count that honours the whole duration
distribution, not just its maximum.

:class:`HistogramCostModel` plugs the estimate into the Section 6.2
optimiser; the ablation bench compares the derived k and the realised
partition statistics against the Lemma 3 baseline on skewed data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..storage.metrics import CostWeights
from .granules import JoinCostModel
from .oip import possible_partition_count
from .relation import TemporalRelation

__all__ = ["DurationHistogram", "HistogramCostModel", "histogram_cost_model"]


@dataclass(frozen=True)
class DurationHistogram:
    """Tuple counts bucketed by duration, plus the time-range size.

    Buckets are exact durations for small values and exponentially
    growing ranges beyond, which keeps the histogram tiny even for the
    Webkit-scale domains while preserving the short-duration resolution
    that matters for partition-span estimates.
    """

    time_range_duration: int
    #: bucket upper bounds (inclusive), strictly increasing
    bounds: "tuple[int, ...]"
    #: tuple count per bucket
    counts: "tuple[int, ...]"

    @classmethod
    def from_relation(
        cls, relation: TemporalRelation, exact_up_to: int = 16
    ) -> "DurationHistogram":
        """Build the histogram: exact buckets for durations up to
        *exact_up_to*, then doubling ranges."""
        if relation.is_empty:
            return cls(time_range_duration=1, bounds=(1,), counts=(0,))
        span = relation.time_range_duration
        bounds: List[int] = list(range(1, min(exact_up_to, span) + 1))
        bound = bounds[-1]
        while bound < span:
            bound = min(bound * 2, span)
            bounds.append(bound)
        counts = [0] * len(bounds)
        for tup in relation:
            index = _bucket_index(bounds, tup.duration)
            counts[index] += 1
        return cls(
            time_range_duration=span,
            bounds=tuple(bounds),
            counts=tuple(counts),
        )

    @property
    def cardinality(self) -> int:
        return sum(self.counts)

    def span_counts(self, k: int, granule_duration: int) -> Dict[int, int]:
        """Tuple counts per partition span (in granules) for a
        configuration ``(k, d)``.

        A tuple of duration ``l`` spans between ``ceil(l / d)`` and
        ``ceil(l / d) + 1`` granules depending on alignment; we charge
        the longer span (conservative, like Lemma 3 but per bucket).
        """
        spans: Dict[int, int] = {}
        for bound, count in zip(self.bounds, self.counts):
            if count == 0:
                continue
            span = min(math.ceil(bound / granule_duration) + 1, k)
            spans[span] = spans.get(span, 0) + count
        return spans

    def expected_used_partitions(self, k: int, granule_duration: int) -> int:
        """Expected non-empty partitions for ``(k, d)`` under a
        uniform-position assumption per span class."""
        expected = 0.0
        for span, count in self.span_counts(k, granule_duration).items():
            cells = max(k - span + 1, 1)
            expected += cells * (1.0 - (1.0 - 1.0 / cells) ** count)
        return max(1, min(round(expected), self.cardinality))


def _bucket_index(bounds: "tuple[int, ...] | List[int]", value: int) -> int:
    import bisect

    return min(bisect.bisect_left(bounds, value), len(bounds) - 1)


class HistogramCostModel(JoinCostModel):
    """Section 6.2 cost model with histogram-based partition estimates.

    ``outer_partitions`` and ``tightening`` use
    :meth:`DurationHistogram.expected_used_partitions` instead of the
    Lemma 3 maximum-duration bound.  On skewed data the estimates are
    much tighter (smaller ``|p_r|``, smaller ``tau``), which lets the
    optimiser pick a larger k and cut false hits further.
    """

    def __init__(
        self,
        outer_histogram: DurationHistogram,
        inner_histogram: DurationHistogram,
        tuples_per_block: int = 14,
        weights: CostWeights = CostWeights.main_memory(),
    ) -> None:
        super().__init__(
            outer_cardinality=outer_histogram.cardinality,
            inner_cardinality=inner_histogram.cardinality,
            outer_duration_fraction=1.0,  # unused by the overrides
            inner_duration_fraction=1.0,
            tuples_per_block=tuples_per_block,
            weights=weights,
        )
        object.__setattr__(self, "outer_histogram", outer_histogram)
        object.__setattr__(self, "inner_histogram", inner_histogram)

    def _granule_duration(self, histogram: DurationHistogram, k: int) -> int:
        return max(1, math.ceil(histogram.time_range_duration / k))

    def outer_partitions(self, k: int) -> int:
        histogram: DurationHistogram = self.outer_histogram
        return histogram.expected_used_partitions(
            k, self._granule_duration(histogram, k)
        )

    def tightening(self, k: int) -> float:
        histogram: DurationHistogram = self.inner_histogram
        used = histogram.expected_used_partitions(
            k, self._granule_duration(histogram, k)
        )
        possible = possible_partition_count(k)
        if possible == 0:
            return 1.0
        return min(max(used, 1) / possible, 1.0)


def histogram_cost_model(
    outer: TemporalRelation,
    inner: TemporalRelation,
    tuples_per_block: int = 14,
    weights: Optional[CostWeights] = None,
) -> HistogramCostModel:
    """Convenience constructor from two relations."""
    return HistogramCostModel(
        outer_histogram=DurationHistogram.from_relation(outer),
        inner_histogram=DurationHistogram.from_relation(inner),
        tuples_per_block=tuples_per_block,
        weights=weights if weights is not None else CostWeights.main_memory(),
    )
