"""Discrete time domain and closed intervals (paper Section 3).

The paper assumes a discrete, linearly ordered time domain ``Omega_T``.  An
interval ``T`` is a contiguous set of time points represented as a pair
``[TS, TE]`` where ``TS`` is the *inclusive* start point and ``TE`` the
*inclusive* end point.  All interval arithmetic in the library goes through
this module so that the conventions of Section 3 (closed endpoints, duration
``|T| = TE - TS + 1``) hold everywhere.

Time points are plain integers.  Applications that work with dates map them
to day (or millisecond) ordinals before constructing intervals; the examples
show how.
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = ["Interval", "IntervalError"]


class IntervalError(ValueError):
    """Raised when an operation would construct an invalid interval."""


class Interval:
    """A closed interval ``[start, end]`` over the discrete time domain.

    Both endpoints are inclusive, matching the paper's ``[TS, TE]``
    representation, and ``start <= end`` always holds (an interval contains
    at least one time point).

    Instances are immutable, hashable and totally ordered by
    ``(start, end)``, which makes them usable as dictionary keys and
    directly sortable.
    """

    __slots__ = ("start", "end")

    start: int
    end: int

    def __init__(self, start: int, end: int) -> None:
        if end < start:
            raise IntervalError(
                f"interval end {end!r} precedes start {start!r}"
            )
        object.__setattr__(self, "start", int(start))
        object.__setattr__(self, "end", int(end))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interval is immutable")

    # -- basic protocol ----------------------------------------------------

    def __repr__(self) -> str:
        return f"Interval({self.start}, {self.end})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __lt__(self, other: "Interval") -> bool:
        return (self.start, self.end) < (other.start, other.end)

    def __le__(self, other: "Interval") -> bool:
        return (self.start, self.end) <= (other.start, other.end)

    def __gt__(self, other: "Interval") -> bool:
        return (self.start, self.end) > (other.start, other.end)

    def __ge__(self, other: "Interval") -> bool:
        return (self.start, self.end) >= (other.start, other.end)

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __len__(self) -> int:
        return self.duration

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    def __contains__(self, point: int) -> bool:
        return self.start <= point <= self.end

    # -- paper Section 3 operations ---------------------------------------

    @property
    def duration(self) -> int:
        """Number of time points ``|T| = (TE - TS) + 1``."""
        return self.end - self.start + 1

    def contains_point(self, point: int) -> bool:
        """``x in T``: true iff ``TS <= x <= TE``."""
        return self.start <= point <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """``T cap U``: true iff the intervals share at least one point."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, other: "Interval") -> bool:
        """``U subseteq T``: true iff every point of *other* is in *self*."""
        return self.start <= other.start and other.end <= self.end

    def intersection(self, other: "Interval") -> "Interval":
        """The overlapping interval ``T cap U``.

        Raises :class:`IntervalError` when the intervals do not overlap;
        test with :meth:`overlaps` first when intersection may be empty.
        """
        if not self.overlaps(other):
            raise IntervalError(f"{self!r} and {other!r} do not overlap")
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def union_span(self, other: "Interval") -> "Interval":
        """Smallest interval covering both *self* and *other*."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def shift(self, offset: int) -> "Interval":
        """Interval translated by *offset* time points."""
        return Interval(self.start + offset, self.end + offset)

    def expand(self, before: int, after: int) -> "Interval":
        """Interval grown by *before* points on the left and *after* on the
        right (either may be negative as long as the result is non-empty)."""
        return Interval(self.start - before, self.end + after)

    def clamp(self, bounds: "Interval") -> "Interval":
        """Intersection with *bounds*; alias used when clipping to a range."""
        return self.intersection(bounds)

    def precedes(self, other: "Interval") -> bool:
        """True iff *self* ends strictly before *other* starts."""
        return self.end < other.start

    def meets(self, other: "Interval") -> bool:
        """Allen *meets*: adjacent with no gap and no overlap."""
        return self.end + 1 == other.start

    def as_tuple(self) -> Tuple[int, int]:
        """The ``(start, end)`` pair."""
        return (self.start, self.end)

    @classmethod
    def point(cls, instant: int) -> "Interval":
        """Degenerate interval ``[x, x]`` of duration 1."""
        return cls(instant, instant)

    @classmethod
    def from_duration(cls, start: int, duration: int) -> "Interval":
        """Interval of *duration* points beginning at *start*."""
        if duration < 1:
            raise IntervalError(f"duration must be >= 1, got {duration}")
        return cls(start, start + duration - 1)
