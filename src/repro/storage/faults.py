"""Deterministic fault injection for the storage substrate.

The paper's cost model (Section 6, Equation 2) assumes a perfectly
reliable device; production deployments of partition joins do not get
one.  This module provides the chaos half of the resilience layer: a
seeded, fully deterministic :class:`FaultPolicy` describing *which* reads
misbehave and :class:`FaultInjector` deciding it per ``(block id,
attempt)``, plus :func:`perform_read` — the one retry/charging loop both
the :class:`~repro.storage.manager.StorageManager` and the parallel
probe workers run their device reads through, so sequential and parallel
executions observe the *identical* fault schedule and charge the
identical IO.

Determinism is the load-bearing property.  Fault decisions are pure
functions of ``(seed, block_id, attempt)`` — an avalanche hash mapped to
the unit interval, no shared RNG stream — so

* the same seed reproduces the same faults run after run,
* a re-read of the same block at the same attempt makes the same
  decision no matter which worker issues it or in which order, and
* differential tests can assert that a chaos run returns the exact match
  set of a fault-free run while the retries stay visible in the
  :class:`~repro.storage.metrics.ResilienceCounters`.

Fault taxonomy
--------------

* **transient read error** — the device errors out mid-read; a bounded
  exponential-backoff retry loop re-issues the read.  Every attempt is
  charged as an IO (the device did the work); re-reads are charged as
  *random* IO because error handling loses the head position.
* **corrupted payload** — the read completes but the delivered block
  fails its content checksum; the block is evicted from the buffer pool
  (never served stale) and re-read.
* **permanent fault** — a block id listed in ``permanent_blocks`` fails
  every attempt; once the retry budget is exhausted a structured error
  naming the block and the partition context is raised instead of
  returning partial results.
* **latency spike** — the read succeeds but is recorded as slow; no
  retry, visible in the resilience counters.

Write-path faults
-----------------

The persistent index (:mod:`repro.storage.snapshot`) commits files
atomically (temp file + fsync + rename).  :class:`WriteFaultPolicy`
injects the crash modes that protocol must survive, seeded through the
same avalanche-hash draw as the read faults (the "block id" is a CRC of
the target file name, so every commit of one path draws the same fate
for one seed):

* **torn write** — the process dies mid-write: the temp file is
  truncated at a byte offset and :class:`SimulatedCrashError` is raised
  with the temp file left behind (rename never happened).
* **dropped fsync** — the rename completes but the data never reached
  the platters before the crash: the *final* file is truncated at an
  offset after the rename (the classic rename-without-fsync bug).
* **failed rename** — the temp file is complete and durable but the
  rename itself never executed; the target (old snapshot, or nothing)
  is untouched.
* **post-write bit-flip** — the commit succeeds, but one bit of the
  written file flips afterwards (silent bit-rot); no crash is raised,
  detection is the section checksums' job.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional

from .metrics import CostCounters, ResilienceCounters

__all__ = [
    "FaultKind",
    "FaultPolicy",
    "FaultInjector",
    "StorageFaultError",
    "TransientReadError",
    "CorruptBlockError",
    "ReadRetriesExceededError",
    "FAULT_PROFILES",
    "fault_profile",
    "perform_read",
    "WriteFaultKind",
    "WriteFault",
    "WriteFaultPolicy",
    "SimulatedCrashError",
]


class FaultKind(enum.Enum):
    """Outcome of one injected read attempt."""

    OK = "ok"
    TRANSIENT = "transient"
    CORRUPT = "corrupt"
    LATENCY = "latency"


# ----------------------------------------------------------------------
# Structured errors.
# ----------------------------------------------------------------------


class StorageFaultError(RuntimeError):
    """Base class of all structured storage-fault errors.

    Carries the failing block id, the number of attempts made, and the
    *context* (typically the partition being fetched) so callers and
    operators can tell exactly what was lost.
    """

    def __init__(
        self,
        message: str,
        block_id: int,
        attempts: int = 1,
        context: Any = None,
    ) -> None:
        if context not in (None, ""):
            message = f"{message} while reading {context}"
        super().__init__(message)
        self.block_id = block_id
        self.attempts = attempts
        self.context = context


class TransientReadError(StorageFaultError):
    """A single failed read attempt (recoverable by retrying)."""

    def __init__(self, block_id: int, attempt: int, context: Any = None) -> None:
        super().__init__(
            f"transient read error on block {block_id} (attempt {attempt})",
            block_id,
            attempts=attempt + 1,
            context=context,
        )


class CorruptBlockError(StorageFaultError):
    """Block content failed checksum verification on every attempt."""

    def __init__(self, block_id: int, attempts: int, context: Any = None) -> None:
        super().__init__(
            f"block {block_id} failed checksum verification "
            f"after {attempts} attempt(s)",
            block_id,
            attempts=attempts,
            context=context,
        )


class ReadRetriesExceededError(StorageFaultError):
    """Transient faults persisted past the bounded retry budget."""

    def __init__(self, block_id: int, attempts: int, context: Any = None) -> None:
        super().__init__(
            f"read of block {block_id} still failing "
            f"after {attempts} attempt(s)",
            block_id,
            attempts=attempts,
            context=context,
        )


# ----------------------------------------------------------------------
# Policy and injector.
# ----------------------------------------------------------------------


_MASK64 = (1 << 64) - 1


def _unit_draw(seed: int, salt: str, block_id: int, attempt: int) -> float:
    """A deterministic pseudo-random draw in ``[0, 1)`` for one decision.

    A splitmix64-style finalizer over the combined key: full avalanche,
    so draws for neighbouring block ids are independent (a plain CRC of
    the key string leaves adjacent ids correlated and the fault schedule
    visibly clustered)."""
    x = (
        seed * 0x9E3779B97F4A7C15
        + zlib.crc32(salt.encode("ascii")) * 0xD1B54A32D192ED03
        + block_id * 0xBF58476D1CE4E5B9
        + attempt * 0x94D049BB133111EB
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 18446744073709551616.0  # 2**64


@dataclass(frozen=True)
class FaultPolicy:
    """Seeded, deterministic description of how the device misbehaves.

    Probabilistic faults (``*_probability``) draw one deterministic value
    per ``(block id, attempt)``, so a given seed yields the same schedule
    on every run and on every execution path.  Explicit schedules pin
    behaviour for specific block ids: ``transient_schedule[b] = n`` makes
    the first ``n`` attempts on block ``b`` fail transiently,
    ``corrupt_schedule[b] = n`` delivers ``n`` corrupted payloads first,
    and ``permanent_blocks`` never deliver a good read at all.
    """

    seed: int = 0
    transient_probability: float = 0.0
    corrupt_probability: float = 0.0
    latency_probability: float = 0.0
    #: Simulated extra latency of one spike, in milliseconds (reported,
    #: never slept).
    latency_penalty_ms: float = 5.0
    #: First backoff step in milliseconds; step ``n`` waits ``2**n`` of
    #: these units (simulated, recorded in ``backoff_units``).
    backoff_base_ms: float = 1.0
    transient_schedule: Mapping[int, int] = field(default_factory=dict)
    corrupt_schedule: Mapping[int, int] = field(default_factory=dict)
    permanent_blocks: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        for name in (
            "transient_probability",
            "corrupt_probability",
            "latency_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be within [0, 1], got {value}"
                )
        if self.latency_penalty_ms < 0 or self.backoff_base_ms < 0:
            raise ValueError("latency/backoff durations must be >= 0")
        for name in ("transient_schedule", "corrupt_schedule"):
            for block_id, count in getattr(self, name).items():
                if count < 0:
                    raise ValueError(
                        f"{name}[{block_id}] must be >= 0, got {count}"
                    )
        object.__setattr__(
            self, "permanent_blocks", frozenset(self.permanent_blocks)
        )

    def publish_metrics(self, registry: Any) -> None:
        """Expose the configured fault rates as gauges (the injected-fault
        *counts* flow through the run's resilience counters instead)."""
        registry.gauge("faults.seed").set(self.seed)
        registry.gauge("faults.transient_probability").set(
            self.transient_probability
        )
        registry.gauge("faults.corrupt_probability").set(
            self.corrupt_probability
        )
        registry.gauge("faults.latency_probability").set(
            self.latency_probability
        )

    @property
    def injects_faults(self) -> bool:
        """False when the policy can never produce a fault (checksum
        verification may still run, but no read will be disturbed)."""
        return bool(
            self.transient_probability
            or self.corrupt_probability
            or self.latency_probability
            or self.transient_schedule
            or self.corrupt_schedule
            or self.permanent_blocks
        )

    def decide(self, block_id: int, attempt: int) -> FaultKind:
        """The fate of reading *block_id* on try number *attempt*."""
        if block_id in self.permanent_blocks:
            return FaultKind.TRANSIENT
        if attempt < self.transient_schedule.get(block_id, 0):
            return FaultKind.TRANSIENT
        if attempt < self.corrupt_schedule.get(block_id, 0):
            return FaultKind.CORRUPT
        if self.transient_probability and (
            _unit_draw(self.seed, "transient", block_id, attempt)
            < self.transient_probability
        ):
            return FaultKind.TRANSIENT
        if self.corrupt_probability and (
            _unit_draw(self.seed, "corrupt", block_id, attempt)
            < self.corrupt_probability
        ):
            return FaultKind.CORRUPT
        if self.latency_probability and (
            _unit_draw(self.seed, "latency", block_id, attempt)
            < self.latency_probability
        ):
            return FaultKind.LATENCY
        return FaultKind.OK


class FaultInjector:
    """Applies a :class:`FaultPolicy` to a stream of read attempts.

    The injector itself is stateless (decisions are pure functions of the
    policy), which is what makes it safe to re-create one per worker
    process from the pickled policy: every copy injects the same faults.
    """

    __slots__ = ("policy",)

    def __init__(self, policy: FaultPolicy) -> None:
        self.policy = policy

    def decide(self, block_id: int, attempt: int) -> FaultKind:
        return self.policy.decide(block_id, attempt)

    def __repr__(self) -> str:
        return f"FaultInjector(seed={self.policy.seed})"


# ----------------------------------------------------------------------
# Named chaos profiles (CLI --fault-profile).
# ----------------------------------------------------------------------

#: Named fault profiles for chaos runs; keys are CLI-visible.
FAULT_PROFILES: Dict[str, Callable[[int], FaultPolicy]] = {
    "transient": lambda seed: FaultPolicy(
        seed=seed, transient_probability=0.02
    ),
    "transient-heavy": lambda seed: FaultPolicy(
        seed=seed, transient_probability=0.15
    ),
    "corrupt": lambda seed: FaultPolicy(seed=seed, corrupt_probability=0.02),
    "latency": lambda seed: FaultPolicy(seed=seed, latency_probability=0.10),
    "chaos": lambda seed: FaultPolicy(
        seed=seed,
        transient_probability=0.05,
        corrupt_probability=0.02,
        latency_probability=0.05,
    ),
}


def fault_profile(name: str, seed: int = 0) -> Optional[FaultPolicy]:
    """The named chaos profile seeded with *seed*; ``"none"`` is ``None``."""
    if name in ("none", "off"):
        return None
    try:
        return FAULT_PROFILES[name](seed)
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; choose from "
            f"{', '.join(sorted(FAULT_PROFILES))} or 'none'"
        ) from None


# ----------------------------------------------------------------------
# The shared charged-read retry loop.
# ----------------------------------------------------------------------


def perform_read(
    block_id: int,
    counters: CostCounters,
    last_read: Optional[int],
    injector: Optional[FaultInjector] = None,
    resilience: Optional[ResilienceCounters] = None,
    max_retries: int = 3,
    verify: Optional[Callable[[], bool]] = None,
    context: Any = None,
    tracer: Optional[Any] = None,
) -> int:
    """Charge one logical block read, retrying under the fault schedule.

    This is the *single* implementation of the read/retry/verify loop;
    the storage manager and the parallel probe workers both call it, so
    their charging is identical field by field:

    * attempt 0 is charged sequential iff ``block_id == last_read + 1``
      (the storage manager's classic chain rule),
    * every retry attempt is charged as a **random** read — the cost
      model stays honest about error handling losing the head position,
    * a read that exhausts ``max_retries`` raises a structured
      :class:`ReadRetriesExceededError` / :class:`CorruptBlockError`
      naming the block and *context*; ``last_read`` is then left to the
      caller unchanged, so a failed read never poisons the sequential/
      random classification of the next successful one.

    *verify* (when given) is called after each successful delivery and
    must return True for the read to count; the storage manager passes
    the block's checksum verification here.  Returns *block_id*, the new
    last-read position, on success.

    *tracer* (when given) receives one ``storage.retry`` event per retry
    decision.  Only the driver passes one — parallel workers leave it
    ``None`` — and the healthy path never touches it, so fault-free reads
    carry zero tracing cost.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    attempt = 0
    while True:
        kind = (
            injector.decide(block_id, attempt)
            if injector is not None
            else FaultKind.OK
        )
        sequential = (
            attempt == 0
            and last_read is not None
            and block_id == last_read + 1
        )
        counters.charge_read(sequential=sequential)
        corrupt = False
        if kind is FaultKind.TRANSIENT:
            if resilience is not None:
                resilience.transient_faults += 1
        elif kind is FaultKind.CORRUPT:
            corrupt = True
            if resilience is not None:
                resilience.corruptions_detected += 1
        else:
            if kind is FaultKind.LATENCY and resilience is not None:
                resilience.latency_spikes += 1
            if verify is not None:
                if resilience is not None:
                    resilience.checksum_verifications += 1
                if verify():
                    return block_id
                corrupt = True
                if resilience is not None:
                    resilience.corruptions_detected += 1
            else:
                return block_id
        if attempt >= max_retries:
            if corrupt:
                raise CorruptBlockError(
                    block_id, attempts=attempt + 1, context=context
                )
            raise ReadRetriesExceededError(
                block_id, attempts=attempt + 1, context=context
            )
        if resilience is not None:
            resilience.retries += 1
            resilience.backoff_units += 2 ** attempt
        if tracer is not None:
            tracer.event(
                "storage.retry",
                block_id=block_id,
                attempt=attempt,
                corrupt=corrupt,
            )
        attempt += 1


# ----------------------------------------------------------------------
# Write-path faults (crash injection for atomic file commits).
# ----------------------------------------------------------------------


class WriteFaultKind(enum.Enum):
    """Fate of one atomic file commit."""

    OK = "ok"
    TORN_WRITE = "torn_write"
    DROPPED_FSYNC = "dropped_fsync"
    FAILED_RENAME = "failed_rename"
    BIT_FLIP = "bit_flip"


class SimulatedCrashError(RuntimeError):
    """The injected crash: the process "died" at *stage* of a commit.

    The on-disk state at raise time is exactly what a real crash at that
    point would leave (torn temp file, renamed-but-unsynced target,
    orphaned complete temp file); callers must not clean it up — the
    recovery machinery is what is under test.
    """

    def __init__(self, path: str, stage: str, offset: Optional[int] = None) -> None:
        detail = f" at byte {offset}" if offset is not None else ""
        super().__init__(
            f"simulated crash during {stage} of {path!r}{detail}"
        )
        self.path = path
        self.stage = stage
        self.offset = offset


@dataclass(frozen=True)
class WriteFault:
    """One commit decision: what happens, and at which byte offset."""

    kind: WriteFaultKind
    offset: Optional[int] = None


def _path_key(name: str) -> int:
    """Stable integer identity of a commit target (plays the role the
    block id plays for read faults)."""
    return zlib.crc32(name.encode("utf-8", "replace"))


@dataclass(frozen=True)
class WriteFaultPolicy:
    """Seeded, deterministic crash schedule for atomic file commits.

    Explicit pins (``torn_write_at``, ``drop_fsync``, ``fail_rename``,
    ``bitflip_at``) force the fault on the commit whose zero-based
    sequence number equals ``at_commit`` (every commit when
    ``at_commit`` is ``None``); the ``*_probability`` fields draw one
    deterministic :func:`_unit_draw` per ``(seed, path, commit)``
    instead.  Precedence when several faults fire on one commit: torn
    write, then failed rename, then dropped fsync, then bit-flip —
    mirroring the order the stages happen in time (the earliest crash
    wins).

    Offsets are clamped to the written payload, so sweeping
    ``torn_write_at`` over ``range(size)`` exercises every byte
    boundary without knowing the exact file size up front.
    """

    seed: int = 0
    torn_write_at: Optional[int] = None
    torn_write_probability: float = 0.0
    drop_fsync: bool = False
    drop_fsync_probability: float = 0.0
    fail_rename: bool = False
    fail_rename_probability: float = 0.0
    bitflip_at: Optional[int] = None
    bitflip_probability: float = 0.0
    #: Zero-based commit sequence number the pinned faults apply to
    #: (``None``: every commit).  Probabilistic faults always draw per
    #: commit.
    at_commit: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "torn_write_probability",
            "drop_fsync_probability",
            "fail_rename_probability",
            "bitflip_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be within [0, 1], got {value}"
                )
        for name in ("torn_write_at", "bitflip_at"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def injects_faults(self) -> bool:
        return bool(
            self.torn_write_at is not None
            or self.torn_write_probability
            or self.drop_fsync
            or self.drop_fsync_probability
            or self.fail_rename
            or self.fail_rename_probability
            or self.bitflip_at is not None
            or self.bitflip_probability
        )

    def _pinned(self, commit: int) -> bool:
        return self.at_commit is None or commit == self.at_commit

    def _draw(self, salt: str, name: str, commit: int) -> float:
        return _unit_draw(self.seed, salt, _path_key(name), commit)

    def _offset(self, salt: str, name: str, commit: int, size: int) -> int:
        if size <= 0:
            return 0
        return int(self._draw(salt + ".at", name, commit) * size)

    def decide_commit(self, name: str, size: int, commit: int = 0) -> WriteFault:
        """The fate of commit number *commit* of *size* bytes to *name*."""
        pinned = self._pinned(commit)
        if pinned and self.torn_write_at is not None:
            return WriteFault(
                WriteFaultKind.TORN_WRITE,
                min(self.torn_write_at, max(size - 1, 0)),
            )
        if self.torn_write_probability and (
            self._draw("write.torn", name, commit)
            < self.torn_write_probability
        ):
            return WriteFault(
                WriteFaultKind.TORN_WRITE,
                self._offset("write.torn", name, commit, size),
            )
        if (pinned and self.fail_rename) or (
            self.fail_rename_probability
            and self._draw("write.rename", name, commit)
            < self.fail_rename_probability
        ):
            return WriteFault(WriteFaultKind.FAILED_RENAME)
        if (pinned and self.drop_fsync) or (
            self.drop_fsync_probability
            and self._draw("write.fsync", name, commit)
            < self.drop_fsync_probability
        ):
            return WriteFault(
                WriteFaultKind.DROPPED_FSYNC,
                self._offset("write.fsync", name, commit, size),
            )
        if pinned and self.bitflip_at is not None:
            return WriteFault(
                WriteFaultKind.BIT_FLIP,
                min(self.bitflip_at, max(size - 1, 0)),
            )
        if self.bitflip_probability and (
            self._draw("write.bitflip", name, commit)
            < self.bitflip_probability
        ):
            return WriteFault(
                WriteFaultKind.BIT_FLIP,
                self._offset("write.bitflip", name, commit, size),
            )
        return WriteFault(WriteFaultKind.OK)
