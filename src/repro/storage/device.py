"""Storage device profiles (paper Section 7 "Setup").

The paper runs every algorithm against two storage configurations:

* **main memory** — 512-byte blocks ("gives the best performance on our
  machine"), block fetch ~20x the cost of a CPU comparison, and
* **disk** — 4-KB physical blocks, IO ~200x the cost of a comparison,
  where *sequential* access matters: the Figure 11(d) discussion attributes
  the loose quadtree's collapse on the small-memory server to seek time.

A :class:`DeviceProfile` bundles block size, tuple size (the paper uses 35
bytes throughout), the cost weights, and a seek penalty expressed as "a
random block read costs as much as this many sequential reads".
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import CostWeights

__all__ = ["DeviceProfile", "TUPLE_SIZE_BYTES"]

#: The fixed tuple size used in all of the paper's experiments.
TUPLE_SIZE_BYTES = 35


@dataclass(frozen=True)
class DeviceProfile:
    """Physical parameters of the storage the relations live on."""

    name: str
    block_size_bytes: int
    tuple_size_bytes: int = TUPLE_SIZE_BYTES
    weights: CostWeights = CostWeights.main_memory()
    #: A random read costs ``seek_factor`` sequential reads.  1.0 means
    #: seeks are free (main memory); disk profiles use a larger factor.
    seek_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.block_size_bytes < self.tuple_size_bytes:
            raise ValueError(
                f"block size {self.block_size_bytes} cannot hold a single "
                f"{self.tuple_size_bytes}-byte tuple"
            )
        if self.seek_factor < 1.0:
            raise ValueError(
                f"seek factor must be >= 1.0, got {self.seek_factor}"
            )

    @property
    def tuples_per_block(self) -> int:
        """``b``, the number of tuples that fit in one block (paper: 14 for
        512-byte memory blocks and 35-byte tuples)."""
        return self.block_size_bytes // self.tuple_size_bytes

    def blocks_for_tuples(self, tuple_count: int) -> int:
        """Blocks needed to store *tuple_count* tuples contiguously."""
        if tuple_count <= 0:
            return 0
        b = self.tuples_per_block
        return (tuple_count + b - 1) // b

    def io_time(self, sequential_reads: int, random_reads: int) -> float:
        """Modelled IO time with the seek penalty applied to random reads."""
        return self.weights.io * (
            sequential_reads + self.seek_factor * random_reads
        )

    # -- canonical profiles -------------------------------------------------

    @classmethod
    def main_memory(cls) -> "DeviceProfile":
        """512-byte blocks, b = 14, c_io/c_cpu = 20, no seek penalty."""
        return cls(
            name="main-memory",
            block_size_bytes=512,
            weights=CostWeights.main_memory(),
            seek_factor=1.0,
        )

    @classmethod
    def disk(cls, seek_factor: float = 8.0) -> "DeviceProfile":
        """4-KB blocks, c_io/c_cpu = 200, random reads pay a seek penalty."""
        return cls(
            name="disk",
            block_size_bytes=4096,
            weights=CostWeights(cpu=0.5, io=100.0),
            seek_factor=seek_factor,
        )
