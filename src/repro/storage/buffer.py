"""Buffer pool with pluggable replacement policies.

Figure 11 of the paper contrasts a 64-GB server, where "a large number of
disk blocks is cached by the operating system", with a 4-GB server where
they are not.  We model that OS page cache with a bounded buffer pool in
front of the device: a read request for a cached block id is a buffer hit
(no IO charged); a miss charges one block read — sequential when the id
directly follows the previously *device-read* id, random otherwise.

LRU is the default policy; FIFO and CLOCK are provided for the
buffer-replacement ablation the paper's future-work section mentions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from .metrics import CostCounters

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "BufferPool",
    "UnboundedBufferPool",
]


class ReplacementPolicy:
    """Interface of a buffer replacement policy over block ids."""

    def record_access(self, block_id: int) -> None:
        """Note that *block_id* was requested (hit or newly admitted)."""
        raise NotImplementedError

    def admit(self, block_id: int) -> None:
        """Note that *block_id* entered the pool."""
        raise NotImplementedError

    def evict(self) -> int:
        """Choose and forget the block id to evict."""
        raise NotImplementedError

    def discard(self, block_id: int) -> None:
        """Forget *block_id* without counting it as an eviction decision."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used eviction."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_access(self, block_id: int) -> None:
        if block_id in self._order:
            self._order.move_to_end(block_id)

    def admit(self, block_id: int) -> None:
        self._order[block_id] = None

    def evict(self) -> int:
        block_id, _ = self._order.popitem(last=False)
        return block_id

    def discard(self, block_id: int) -> None:
        self._order.pop(block_id, None)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out eviction; accesses do not refresh residency."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_access(self, block_id: int) -> None:
        pass

    def admit(self, block_id: int) -> None:
        self._order[block_id] = None

    def evict(self) -> int:
        block_id, _ = self._order.popitem(last=False)
        return block_id

    def discard(self, block_id: int) -> None:
        self._order.pop(block_id, None)


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK) eviction."""

    def __init__(self) -> None:
        self._ring: List[int] = []
        self._referenced: Dict[int, bool] = {}
        self._hand = 0

    def record_access(self, block_id: int) -> None:
        if block_id in self._referenced:
            self._referenced[block_id] = True

    def admit(self, block_id: int) -> None:
        self._ring.append(block_id)
        self._referenced[block_id] = False

    def evict(self) -> int:
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            block_id = self._ring[self._hand]
            if self._referenced.get(block_id, False):
                self._referenced[block_id] = False
                self._hand += 1
            else:
                self._ring.pop(self._hand)
                del self._referenced[block_id]
                return block_id

    def discard(self, block_id: int) -> None:
        if block_id in self._referenced:
            self._ring.remove(block_id)
            del self._referenced[block_id]
            self._hand = 0


class BufferPool:
    """Bounded cache of block ids in front of the storage device.

    The pool does not hold block *contents* — the simulation keeps tuples in
    Python objects regardless — it decides which read requests are charged
    as device IOs.
    """

    def __init__(
        self,
        capacity_blocks: int,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        if capacity_blocks < 1:
            raise ValueError(
                f"buffer capacity must be >= 1 block, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self._policy = policy if policy is not None else LRUPolicy()
        self._resident: set = set()
        self._last_device_read: Optional[int] = None

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def read(self, block_id: int, counters: CostCounters) -> None:
        """Request *block_id*, charging a hit or a device read."""
        if block_id in self._resident:
            counters.charge_buffer_hit()
            self._policy.record_access(block_id)
            return
        sequential = (
            self._last_device_read is not None
            and block_id == self._last_device_read + 1
        )
        counters.charge_read(sequential=sequential)
        self._last_device_read = block_id
        self._admit(block_id)

    # -- resilience hooks ---------------------------------------------------
    #
    # The storage manager's fault-aware read path drives the pool through
    # these finer-grained steps instead of :meth:`read`, so it can verify
    # cached copies, retry device reads and evict corrupted blocks while
    # keeping hit/miss charging and the sequential/random chain identical.

    @property
    def last_device_read(self) -> Optional[int]:
        """The block id of the most recent read that reached the device."""
        return self._last_device_read

    def note_hit(self, block_id: int, counters: CostCounters) -> None:
        """Charge a buffer hit for the resident *block_id*."""
        counters.charge_buffer_hit()
        self._policy.record_access(block_id)

    def note_device_read(self, block_id: int) -> None:
        """Advance the sequential/random chain past a successful device
        read and admit the block."""
        self._last_device_read = block_id
        self._admit(block_id)

    def invalidate(self, block_id: int) -> bool:
        """Evict *block_id* (a corrupted copy) so the next request is
        forced back to the device.  Returns True when it was resident."""
        if block_id not in self._resident:
            return False
        self._resident.discard(block_id)
        self._policy.discard(block_id)
        return True

    def read_run(self, block_ids: Iterable[int], counters: CostCounters) -> None:
        """Request a run of block ids in order."""
        for block_id in block_ids:
            self.read(block_id, counters)

    def _admit(self, block_id: int) -> None:
        if len(self._resident) >= self.capacity_blocks:
            victim = self._policy.evict()
            self._resident.discard(victim)
        self._resident.add(block_id)
        self._policy.admit(block_id)

    def clear(self) -> None:
        """Drop all residency state (a cold cache)."""
        for block_id in list(self._resident):
            self._policy.discard(block_id)
        self._resident.clear()
        self._last_device_read = None

    def publish_metrics(self, registry) -> None:
        """Publish the pool's residency state as gauges (hit/miss counts
        are charged into the run's cost counters instead)."""
        registry.gauge("buffer.capacity_blocks").set(self.capacity_blocks)
        registry.gauge("buffer.resident_blocks").set(self.resident_count)


class UnboundedBufferPool(BufferPool):
    """A pool that never evicts — models the 64-GB server where the whole
    working set stays cached after the first read."""

    def __init__(self) -> None:
        super().__init__(capacity_blocks=1)

    def _admit(self, block_id: int) -> None:
        self._resident.add(block_id)

    def clear(self) -> None:
        self._resident.clear()
        self._last_device_read = None
