"""Storage manager: block allocation, charged reads, and fault recovery.

One :class:`StorageManager` represents the storage of one algorithm run.
It allocates block ids monotonically, so a structure that appends its
tuples in one pass (as ``OIPCREATE`` does after sorting) receives
physically contiguous runs, and later full-run reads are sequential IO —
exactly the effect the paper attributes to Algorithm 1's sort.

Reads are routed through an optional :class:`~repro.storage.buffer.BufferPool`
(the OS page cache of Figure 11); without a pool every read reaches the
device.

Resilience (see :mod:`repro.storage.faults`): when a block object is
available the manager verifies its content checksum on every read —
including buffer hits, so a corrupted cached copy is evicted and
re-fetched rather than served stale — and an optional
:class:`~repro.storage.faults.FaultInjector` subjects device reads to a
deterministic fault schedule.  Recovery runs a bounded exponential-backoff
retry loop whose re-reads are charged as *random* IO (the cost model stays
honest), with every event recorded in a
:class:`~repro.storage.metrics.ResilienceCounters`.  A read that cannot be
recovered raises a structured error naming the block and the partition
context instead of returning partial data.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from ..core.relation import TemporalTuple
from .block import Block, BlockRun
from .buffer import BufferPool
from .device import DeviceProfile
from .faults import FaultInjector, perform_read
from .metrics import CostCounters, ResilienceCounters

__all__ = ["StorageManager"]


class StorageManager:
    """Allocates blocks on a device and charges IO for reads and writes."""

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        counters: Optional[CostCounters] = None,
        buffer_pool: Optional[BufferPool] = None,
        charge_writes: bool = True,
        fault_injector: Optional[FaultInjector] = None,
        resilience: Optional[ResilienceCounters] = None,
        max_retries: int = 3,
        verify_checksums: bool = True,
        cancellation: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.device = device if device is not None else DeviceProfile.main_memory()
        self.counters = counters if counters is not None else CostCounters()
        self.buffer_pool = buffer_pool
        self.charge_writes = charge_writes
        self.fault_injector = fault_injector
        self.resilience = (
            resilience if resilience is not None else ResilienceCounters()
        )
        self.max_retries = max_retries
        self.verify_checksums = verify_checksums
        #: Cooperative stop signal checked before every block fetch (duck
        #: typed to :class:`repro.engine.governor.CancellationToken` —
        #: the storage layer deliberately does not import the governor).
        self.cancellation = cancellation
        #: Phase tracer (duck typed to :class:`repro.obs.trace.Tracer`).
        #: Reduced once to None when disabled so the read path branches on
        #: a plain identity test instead of an attribute lookup per read.
        self.tracer = tracer
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self._next_block_id = 0
        self._last_read_id: Optional[int] = None

    # -- allocation / writing -------------------------------------------------

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks allocated so far."""
        return self._next_block_id

    def new_run(self) -> BlockRun:
        """An empty run; blocks are allocated lazily on first append."""
        return BlockRun()

    def append(self, run: BlockRun, tup: TemporalTuple) -> None:
        """Append *tup* to *run*, allocating a fresh block when needed."""
        if not run.has_open_block:
            block = Block(self._next_block_id, self.device.tuples_per_block)
            self._next_block_id += 1
            run.add_block(block)
            if self.charge_writes:
                self.counters.charge_write()
        run.last_block.append(tup)

    def store_tuples(self, tuples: Iterable[TemporalTuple]) -> BlockRun:
        """Store *tuples* contiguously in a new run."""
        run = self.new_run()
        for tup in tuples:
            self.append(run, tup)
        return run

    def restore_block(
        self,
        run: BlockRun,
        tuples: List[TemporalTuple],
        stored_checksum: Optional[int] = None,
    ) -> Block:
        """Materialise one persisted block of *run* in bulk.

        Cost parity with :meth:`append`: the block id comes from the
        same monotonic allocator and exactly one write is charged per
        block, so an index restored from a snapshot carries the same
        :class:`~repro.storage.metrics.CostCounters` and the same
        fault/buffer schedule as a freshly built one.  When
        *stored_checksum* is given it is adopted instead of re-folded
        (the snapshot layer guarantees consistency via its relation
        content fingerprint); either way the block verifies lazily on
        first read, like any appended block.
        """
        block = Block.from_stored(
            self._next_block_id,
            self.device.tuples_per_block,
            tuples,
            stored_checksum,
        )
        self._next_block_id += 1
        run.add_block(block)
        if self.charge_writes:
            self.counters.charge_write()
        return block

    def restore_run(
        self,
        run: BlockRun,
        tuples: List[TemporalTuple],
        checksums: Optional[Sequence[int]] = None,
    ) -> int:
        """Materialise a whole persisted run in bulk.

        Equivalent to calling :meth:`restore_block` once per
        ``tuples_per_block`` chunk of *tuples* — same monotonic block
        ids, same one-write-per-block charge — but with the chunk loop
        and the write charge batched here, where the per-block Python
        overhead amortises across the run.  *checksums*, when given,
        holds one adopted checksum per chunk.  Returns the number of
        blocks restored.
        """
        capacity = self.device.tuples_per_block
        block_id = self._next_block_id
        if checksums is not None:
            chunk = Block.restore_chunks(
                run, tuples, capacity, block_id, checksums
            )
        else:
            # No recorded checksums (unstable payloads): fold each
            # block's checksum from content, as append would.
            add_block = run.add_block
            from_stored = Block.from_stored
            chunk = 0
            for start in range(0, len(tuples), capacity):
                add_block(
                    from_stored(
                        block_id + chunk,
                        capacity,
                        tuples[start : start + capacity],
                        None,
                    )
                )
                chunk += 1
        self._next_block_id = block_id + chunk
        if self.charge_writes and chunk:
            self.counters.charge_write(chunk)
        return chunk

    # -- reading ----------------------------------------------------------------

    def read_run(
        self, run: BlockRun, context: Any = None
    ) -> Iterator[TemporalTuple]:
        """Fetch every block of *run*, charging IO, and yield its tuples.

        *context* (typically the partition identity) is carried into any
        structured fault error raised while fetching.
        """
        for block in run:
            self.read_block(block.block_id, block=block, context=context)
            yield from block

    def read_runs(self, runs: Iterable[BlockRun]) -> Iterator[TemporalTuple]:
        """Fetch several runs back to back."""
        for run in runs:
            yield from self.read_run(run)

    def read_block(
        self,
        block_id: int,
        block: Optional[Block] = None,
        context: Any = None,
    ) -> None:
        """Fetch a single block by id, charging IO and recovering faults.

        When *block* is given its content checksum is verified (including
        on buffer hits); without the block object only injected faults can
        be detected.  Raises :class:`~repro.storage.faults
        .CorruptBlockError` / :class:`~repro.storage.faults
        .ReadRetriesExceededError` when recovery fails.

        Every fetch is also a cooperative cancellation point: with a
        cancellation token attached, a requested cancel raises
        :class:`repro.engine.governor.QueryCancelledError` *before* the
        read is charged, so partial counters never include abandoned IO.
        """
        if self.cancellation is not None:
            self.cancellation.raise_if_cancelled()
        verify = (
            self._make_verifier(block)
            if block is not None and self.verify_checksums
            else None
        )
        pool = self.buffer_pool
        if pool is not None:
            if block_id in pool:
                if block is not None and self.verify_checksums:
                    self.resilience.checksum_verifications += 1
                if (
                    block is None
                    or not self.verify_checksums
                    or block.verify()
                ):
                    pool.note_hit(block_id, self.counters)
                    return
                # Corrupted cached copy: never serve it stale — evict and
                # fall through to a device re-read.
                self.resilience.corruptions_detected += 1
                self.resilience.pool_invalidations += 1
                pool.invalidate(block_id)
                if self._trace is not None:
                    self._trace.event(
                        "buffer.invalidated", block_id=block_id
                    )
            perform_read(
                block_id,
                self.counters,
                pool.last_device_read,
                injector=self.fault_injector,
                resilience=self.resilience,
                max_retries=self.max_retries,
                verify=verify,
                context=context,
                tracer=self._trace,
            )
            pool.note_device_read(block_id)
            return
        # A failed read leaves ``_last_read_id`` untouched, so the next
        # successful read is classified against the last *successful* one.
        self._last_read_id = perform_read(
            block_id,
            self.counters,
            self._last_read_id,
            injector=self.fault_injector,
            resilience=self.resilience,
            max_retries=self.max_retries,
            verify=verify,
            context=context,
            tracer=self._trace,
        )

    @staticmethod
    def _make_verifier(block: Block):
        """Per-attempt verification: each device read delivers a fresh
        copy (clearing transient delivery corruption) and must pass the
        content checksum."""

        def verify() -> bool:
            block.refresh_from_device()
            return block.verify()

        return verify

    # -- observability --------------------------------------------------------

    def publish_metrics(self, registry: Any) -> None:
        """Publish the manager's storage state as gauges (the charged
        reads/writes live in the run's cost counters, which the algorithm
        base class publishes)."""
        registry.gauge("storage.allocated_blocks").set(self.allocated_blocks)
        registry.gauge("storage.max_retries").set(self.max_retries)

    # -- convenience ----------------------------------------------------------

    def blocks_for(self, tuple_count: int) -> int:
        """Blocks needed for *tuple_count* tuples on this device."""
        return self.device.blocks_for_tuples(tuple_count)

    def run_block_ids(self, runs: Iterable[BlockRun]) -> List[int]:
        """All block ids of *runs* in order (diagnostics and tests)."""
        ids: List[int] = []
        for run in runs:
            ids.extend(run.block_ids)
        return ids
