"""Storage manager: block allocation and charged reads.

One :class:`StorageManager` represents the storage of one algorithm run.
It allocates block ids monotonically, so a structure that appends its
tuples in one pass (as ``OIPCREATE`` does after sorting) receives
physically contiguous runs, and later full-run reads are sequential IO —
exactly the effect the paper attributes to Algorithm 1's sort.

Reads are routed through an optional :class:`~repro.storage.buffer.BufferPool`
(the OS page cache of Figure 11); without a pool every read reaches the
device.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..core.relation import TemporalTuple
from .block import Block, BlockRun
from .buffer import BufferPool
from .device import DeviceProfile
from .metrics import CostCounters

__all__ = ["StorageManager"]


class StorageManager:
    """Allocates blocks on a device and charges IO for reads and writes."""

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        counters: Optional[CostCounters] = None,
        buffer_pool: Optional[BufferPool] = None,
        charge_writes: bool = True,
    ) -> None:
        self.device = device if device is not None else DeviceProfile.main_memory()
        self.counters = counters if counters is not None else CostCounters()
        self.buffer_pool = buffer_pool
        self.charge_writes = charge_writes
        self._next_block_id = 0
        self._last_read_id: Optional[int] = None

    # -- allocation / writing -------------------------------------------------

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks allocated so far."""
        return self._next_block_id

    def new_run(self) -> BlockRun:
        """An empty run; blocks are allocated lazily on first append."""
        return BlockRun()

    def append(self, run: BlockRun, tup: TemporalTuple) -> None:
        """Append *tup* to *run*, allocating a fresh block when needed."""
        if not run.has_open_block:
            block = Block(self._next_block_id, self.device.tuples_per_block)
            self._next_block_id += 1
            run.add_block(block)
            if self.charge_writes:
                self.counters.charge_write()
        run.last_block.append(tup)

    def store_tuples(self, tuples: Iterable[TemporalTuple]) -> BlockRun:
        """Store *tuples* contiguously in a new run."""
        run = self.new_run()
        for tup in tuples:
            self.append(run, tup)
        return run

    # -- reading ----------------------------------------------------------------

    def read_run(self, run: BlockRun) -> Iterator[TemporalTuple]:
        """Fetch every block of *run*, charging IO, and yield its tuples."""
        for block in run:
            self.read_block(block.block_id)
            yield from block

    def read_runs(self, runs: Iterable[BlockRun]) -> Iterator[TemporalTuple]:
        """Fetch several runs back to back."""
        for run in runs:
            yield from self.read_run(run)

    def read_block(self, block_id: int) -> None:
        """Fetch a single block by id, charging IO."""
        if self.buffer_pool is not None:
            self.buffer_pool.read(block_id, self.counters)
            return
        sequential = (
            self._last_read_id is not None
            and block_id == self._last_read_id + 1
        )
        self.counters.charge_read(sequential=sequential)
        self._last_read_id = block_id

    # -- convenience ----------------------------------------------------------

    def blocks_for(self, tuple_count: int) -> int:
        """Blocks needed for *tuple_count* tuples on this device."""
        return self.device.blocks_for_tuples(tuple_count)

    def run_block_ids(self, runs: Iterable[BlockRun]) -> List[int]:
        """All block ids of *runs* in order (diagnostics and tests)."""
        ids: List[int] = []
        for run in runs:
            ids.extend(run.block_ids)
        return ids
