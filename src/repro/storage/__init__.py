"""Block-storage substrate: devices, blocks, buffer pool and cost counters.

This package is the measured "hardware" of the reproduction.  Every join
algorithm stores its partitions/nodes in :class:`~repro.storage.block.Block`
runs via a :class:`~repro.storage.manager.StorageManager` and pays for reads
through an optional :class:`~repro.storage.buffer.BufferPool`, so the block
IOs, buffer hits and sequential/random split the paper plots fall out of the
same code path the join executes.
"""

from .block import Block, BlockRun
from .buffer import (
    BufferPool,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    ReplacementPolicy,
    UnboundedBufferPool,
)
from .device import TUPLE_SIZE_BYTES, DeviceProfile
from .manager import StorageManager
from .metrics import CostCounters, CostWeights

__all__ = [
    "Block",
    "BlockRun",
    "BufferPool",
    "ClockPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "ReplacementPolicy",
    "UnboundedBufferPool",
    "DeviceProfile",
    "TUPLE_SIZE_BYTES",
    "StorageManager",
    "CostCounters",
    "CostWeights",
]
