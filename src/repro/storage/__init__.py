"""Block-storage substrate: devices, blocks, buffer pool and cost counters.

This package is the measured "hardware" of the reproduction.  Every join
algorithm stores its partitions/nodes in :class:`~repro.storage.block.Block`
runs via a :class:`~repro.storage.manager.StorageManager` and pays for reads
through an optional :class:`~repro.storage.buffer.BufferPool`, so the block
IOs, buffer hits and sequential/random split the paper plots fall out of the
same code path the join executes.
"""

from .block import Block, BlockRun, tuple_checksum
from .buffer import (
    BufferPool,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    ReplacementPolicy,
    UnboundedBufferPool,
)
from .device import TUPLE_SIZE_BYTES, DeviceProfile
from .faults import (
    FAULT_PROFILES,
    CorruptBlockError,
    FaultInjector,
    FaultKind,
    FaultPolicy,
    ReadRetriesExceededError,
    SimulatedCrashError,
    StorageFaultError,
    TransientReadError,
    WriteFault,
    WriteFaultKind,
    WriteFaultPolicy,
    fault_profile,
    perform_read,
)
from .manager import StorageManager
from .metrics import CostCounters, CostWeights, ResilienceCounters
from .snapshot import (
    JournalReplayError,
    MaintainedIndex,
    MaintenanceJournal,
    ParsedSnapshot,
    SnapshotError,
    SnapshotFormatError,
    SnapshotMismatchError,
    SnapshotVersionError,
    fsck_index,
    load_index,
    read_statistics,
    save_index,
)

__all__ = [
    "Block",
    "BlockRun",
    "tuple_checksum",
    "BufferPool",
    "ClockPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "ReplacementPolicy",
    "UnboundedBufferPool",
    "DeviceProfile",
    "TUPLE_SIZE_BYTES",
    "FAULT_PROFILES",
    "CorruptBlockError",
    "FaultInjector",
    "FaultKind",
    "FaultPolicy",
    "ReadRetriesExceededError",
    "StorageFaultError",
    "TransientReadError",
    "fault_profile",
    "perform_read",
    "SimulatedCrashError",
    "WriteFault",
    "WriteFaultKind",
    "WriteFaultPolicy",
    "StorageManager",
    "CostCounters",
    "CostWeights",
    "ResilienceCounters",
    "JournalReplayError",
    "MaintainedIndex",
    "MaintenanceJournal",
    "ParsedSnapshot",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMismatchError",
    "SnapshotVersionError",
    "fsck_index",
    "load_index",
    "read_statistics",
    "save_index",
]
