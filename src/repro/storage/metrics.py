"""Cost counters shared by every algorithm in the library.

The paper's evaluation reports CPU comparisons, block IOs, false hits,
partition accesses and result sizes.  :class:`CostCounters` is the single
mutable sink those events are charged to; the storage layer charges IO
events, the join algorithms charge CPU comparisons, false hits and
partition/node accesses.

The counters also price themselves through a :class:`CostWeights`
(``c_cpu``/``c_io``), reproducing the paper's modelled cost
``#cpu * c_cpu + #io * c_io`` so experiments can report a hardware-
independent cost next to wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CostWeights", "CostCounters", "ResilienceCounters"]


@dataclass(frozen=True)
class CostWeights:
    """Unit costs of the two primitive operations of the paper's cost model.

    The paper's main-memory configuration uses ``c_cpu = 0.5`` ns per
    comparison and ``c_io = 10`` ns per 512-byte memory block; the
    disk-resident experiments use a ``c_io / c_cpu`` ratio of 200.  Both
    weights must be non-negative (Section 6.2 requires ``c_io >= 0`` and
    ``c_cpu >= 0``).
    """

    cpu: float = 0.5
    io: float = 10.0

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.io < 0:
            raise ValueError(
                f"cost weights must be non-negative, got cpu={self.cpu} "
                f"io={self.io}"
            )

    @property
    def ratio(self) -> float:
        """``c_cpu / c_io``, the x-axis of Figure 6."""
        if self.io == 0:
            return float("inf")
        return self.cpu / self.io

    @classmethod
    def main_memory(cls) -> "CostWeights":
        """The paper's main-memory setting (0.5 ns CPU, 10 ns block fetch)."""
        return cls(cpu=0.5, io=10.0)

    @classmethod
    def disk(cls) -> "CostWeights":
        """The paper's disk setting: IO 200x the cost of a comparison."""
        return cls(cpu=0.5, io=100.0)

    @classmethod
    def from_ratio(cls, cpu_over_io: float, io: float = 10.0) -> "CostWeights":
        """Weights with a given ``c_cpu / c_io`` ratio (Figure 6 sweep)."""
        if cpu_over_io < 0:
            raise ValueError(f"ratio must be non-negative, got {cpu_over_io}")
        return cls(cpu=cpu_over_io * io, io=io)


@dataclass
class CostCounters:
    """Mutable event counters for one algorithm run.

    Attributes mirror the paper's reported quantities:

    * ``cpu_comparisons`` — interval/endpoint/index comparisons,
    * ``block_reads`` / ``block_writes`` — block IOs issued to the device
      (after the buffer pool; ``buffer_hits`` are requests served from
      cache and are *not* IOs),
    * ``sequential_reads`` / ``random_reads`` — split of ``block_reads``
      used by the disk experiments where seeks dominate,
    * ``false_hits`` — candidate tuples fetched but not in the result,
    * ``partition_accesses`` — partitions/nodes fetched,
    * ``result_tuples`` — output cardinality (excluded from cost, as the
      paper excludes result-writing time).
    """

    cpu_comparisons: int = 0
    block_reads: int = 0
    block_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    buffer_hits: int = 0
    false_hits: int = 0
    partition_accesses: int = 0
    result_tuples: int = 0
    extras: Dict[str, int] = field(default_factory=dict)

    # -- charging -----------------------------------------------------------

    def charge_cpu(self, count: int = 1) -> None:
        """Record *count* CPU comparison operations."""
        self.cpu_comparisons += count

    def charge_read(self, count: int = 1, sequential: bool = True) -> None:
        """Record *count* block reads that reached the device."""
        self.block_reads += count
        if sequential:
            self.sequential_reads += count
        else:
            self.random_reads += count

    def charge_write(self, count: int = 1) -> None:
        """Record *count* block writes."""
        self.block_writes += count

    def charge_buffer_hit(self, count: int = 1) -> None:
        """Record requests satisfied by the buffer pool (no device IO)."""
        self.buffer_hits += count

    def charge_false_hit(self, count: int = 1) -> None:
        """Record fetched candidates that failed the join predicate."""
        self.false_hits += count

    def charge_partition_access(self, count: int = 1) -> None:
        """Record fetched partitions / index nodes."""
        self.partition_accesses += count

    def charge_result(self, count: int = 1) -> None:
        """Record produced result tuples."""
        self.result_tuples += count

    def charge_extra(self, key: str, count: int = 1) -> None:
        """Record an algorithm-specific event (e.g. ``"migrations"`` for the
        grace join, ``"duplicates"`` for the segment tree)."""
        self.extras[key] = self.extras.get(key, 0) + count

    # -- reporting ------------------------------------------------------------

    @property
    def total_ios(self) -> int:
        """All block IOs that reached the device."""
        return self.block_reads + self.block_writes

    @property
    def fetched_tuples(self) -> int:
        """Candidates fetched = result tuples + false hits."""
        return self.result_tuples + self.false_hits

    def false_hit_ratio(self) -> float:
        """False hits as a fraction of all fetched tuples (the paper's AFR
        axis in Figures 8, 10, 11)."""
        fetched = self.fetched_tuples
        if fetched == 0:
            return 0.0
        return self.false_hits / fetched

    def modelled_cost(self, weights: CostWeights) -> float:
        """Paper-style cost ``#cpu * c_cpu + #io * c_io``."""
        return (
            self.cpu_comparisons * weights.cpu + self.total_ios * weights.io
        )

    def merged_with(self, other: "CostCounters") -> "CostCounters":
        """Sum of two counter sets (used when aggregating sweep points)."""
        merged = CostCounters(
            cpu_comparisons=self.cpu_comparisons + other.cpu_comparisons,
            block_reads=self.block_reads + other.block_reads,
            block_writes=self.block_writes + other.block_writes,
            sequential_reads=self.sequential_reads + other.sequential_reads,
            random_reads=self.random_reads + other.random_reads,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            false_hits=self.false_hits + other.false_hits,
            partition_accesses=self.partition_accesses
            + other.partition_accesses,
            result_tuples=self.result_tuples + other.result_tuples,
        )
        for extras in (self.extras, other.extras):
            for key, value in extras.items():
                merged.extras[key] = merged.extras.get(key, 0) + value
        return merged

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view for printing and test assertions.

        Algorithm-specific ``extras`` are namespaced as ``extra.<key>``
        so an extra named e.g. ``block_reads`` can never shadow the
        built-in counter of the same name."""
        data = {
            "cpu_comparisons": self.cpu_comparisons,
            "block_reads": self.block_reads,
            "block_writes": self.block_writes,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "buffer_hits": self.buffer_hits,
            "false_hits": self.false_hits,
            "partition_accesses": self.partition_accesses,
            "result_tuples": self.result_tuples,
        }
        for key, value in self.extras.items():
            data[f"extra.{key}"] = value
        return data

    def reset(self) -> None:
        """Zero every counter in place."""
        self.cpu_comparisons = 0
        self.block_reads = 0
        self.block_writes = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.buffer_hits = 0
        self.false_hits = 0
        self.partition_accesses = 0
        self.result_tuples = 0
        self.extras.clear()


@dataclass
class ResilienceCounters:
    """Fault-handling events of one algorithm run, reported alongside
    :class:`CostCounters`.

    The IO cost of fault handling (retry re-reads charged as random IO)
    lands in the :class:`CostCounters` so the paper's cost model stays
    honest; these counters record *why* those extra IOs happened and what
    the recovery machinery did.  All fields are integers so that merging
    per-worker counters is exact in any order.

    Storage-level events (charged by :func:`repro.storage.faults
    .perform_read` and the storage manager):

    * ``transient_faults`` — device read attempts that errored out,
    * ``corruptions_detected`` — reads whose payload failed checksum
      verification (injected or real),
    * ``retries`` — re-issued device reads after a failed attempt,
    * ``backoff_units`` — accumulated exponential-backoff units
      (``2**attempt`` per retry; multiply by the policy's
      ``backoff_base_ms`` for simulated milliseconds),
    * ``latency_spikes`` — slow-but-successful reads,
    * ``checksum_verifications`` — block verifications performed,
    * ``pool_invalidations`` — corrupted blocks evicted from the buffer
      pool and re-fetched from the device.

    Executor-level events (charged by :func:`repro.engine.parallel
    .execute_schedule`):

    * ``chunk_retries`` — probe chunks re-submitted after a worker
      failure or timeout,
    * ``chunk_timeouts`` — chunk waits that exceeded the per-chunk
      timeout,
    * ``worker_crashes`` — worker-pool breakdowns observed,
    * ``sequential_downgrades`` — chunks re-run on the in-process
      sequential path after the pool degraded.
    """

    transient_faults: int = 0
    corruptions_detected: int = 0
    retries: int = 0
    backoff_units: int = 0
    latency_spikes: int = 0
    checksum_verifications: int = 0
    pool_invalidations: int = 0
    chunk_retries: int = 0
    chunk_timeouts: int = 0
    worker_crashes: int = 0
    sequential_downgrades: int = 0

    #: Snapshot keys describing device-level fault handling (identical
    #: between sequential and parallel runs of the same fault schedule).
    STORAGE_FIELDS = (
        "transient_faults",
        "corruptions_detected",
        "retries",
        "backoff_units",
        "latency_spikes",
    )

    @property
    def faults_observed(self) -> int:
        """Total faults of any kind seen by this run."""
        return (
            self.transient_faults
            + self.corruptions_detected
            + self.latency_spikes
            + self.chunk_timeouts
            + self.worker_crashes
        )

    @property
    def recovered(self) -> bool:
        """True when faults were observed (and, since the run produced a
        result, survived)."""
        return self.faults_observed > 0

    def merge(self, other: "ResilienceCounters") -> None:
        """Add every field of *other* onto this counter set in place."""
        self.transient_faults += other.transient_faults
        self.corruptions_detected += other.corruptions_detected
        self.retries += other.retries
        self.backoff_units += other.backoff_units
        self.latency_spikes += other.latency_spikes
        self.checksum_verifications += other.checksum_verifications
        self.pool_invalidations += other.pool_invalidations
        self.chunk_retries += other.chunk_retries
        self.chunk_timeouts += other.chunk_timeouts
        self.worker_crashes += other.worker_crashes
        self.sequential_downgrades += other.sequential_downgrades

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view for printing and test assertions."""
        return {
            "transient_faults": self.transient_faults,
            "corruptions_detected": self.corruptions_detected,
            "retries": self.retries,
            "backoff_units": self.backoff_units,
            "latency_spikes": self.latency_spikes,
            "checksum_verifications": self.checksum_verifications,
            "pool_invalidations": self.pool_invalidations,
            "chunk_retries": self.chunk_retries,
            "chunk_timeouts": self.chunk_timeouts,
            "worker_crashes": self.worker_crashes,
            "sequential_downgrades": self.sequential_downgrades,
        }

    def storage_snapshot(self) -> Dict[str, int]:
        """The device-level subset of :meth:`snapshot` (the fields a
        parallel run reproduces exactly from the sequential schedule)."""
        full = self.snapshot()
        return {key: full[key] for key in self.STORAGE_FIELDS}

    def reset(self) -> None:
        """Zero every counter in place."""
        self.transient_faults = 0
        self.corruptions_detected = 0
        self.retries = 0
        self.backoff_units = 0
        self.latency_spikes = 0
        self.checksum_verifications = 0
        self.pool_invalidations = 0
        self.chunk_retries = 0
        self.chunk_timeouts = 0
        self.worker_crashes = 0
        self.sequential_downgrades = 0
