"""Fixed-capacity storage blocks.

Tuples are stored in blocks of a fixed byte size; a block holds at most
``b = block_size // tuple_size`` tuples.  Partitions and index nodes own
*runs* of blocks; the block ids double as the device addresses the buffer
pool caches, and consecutive ids model physically contiguous storage (the
property Algorithm 1's sorting buys the OIPJOIN).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..core.relation import TemporalTuple

__all__ = ["Block", "BlockRun"]


class Block:
    """One storage block holding up to *capacity* tuples."""

    __slots__ = ("block_id", "capacity", "_tuples")

    def __init__(self, block_id: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"block capacity must be >= 1, got {capacity}")
        self.block_id = block_id
        self.capacity = capacity
        self._tuples: List[TemporalTuple] = []

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[TemporalTuple]:
        return iter(self._tuples)

    def __repr__(self) -> str:
        return (
            f"Block(id={self.block_id}, {len(self._tuples)}/{self.capacity})"
        )

    @property
    def tuples(self) -> Sequence[TemporalTuple]:
        return self._tuples

    @property
    def is_full(self) -> bool:
        return len(self._tuples) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._tuples)

    def append(self, tup: TemporalTuple) -> None:
        """Add *tup*; raises :class:`OverflowError` when the block is full."""
        if self.is_full:
            raise OverflowError(f"block {self.block_id} is full")
        self._tuples.append(tup)


class BlockRun:
    """A sequence of blocks owned by one partition or index node.

    Blocks are appended in allocation order; when the run was allocated
    from consecutive block ids, reading it is sequential IO.
    """

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: List[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __repr__(self) -> str:
        return f"BlockRun(blocks={len(self._blocks)}, tuples={self.tuple_count})"

    @property
    def blocks(self) -> Sequence[Block]:
        return self._blocks

    @property
    def block_ids(self) -> List[int]:
        return [block.block_id for block in self._blocks]

    @property
    def tuple_count(self) -> int:
        return sum(len(block) for block in self._blocks)

    @property
    def last_block(self) -> Block:
        if not self._blocks:
            raise IndexError("block run is empty")
        return self._blocks[-1]

    @property
    def has_open_block(self) -> bool:
        """True when the last block still has free slots."""
        return bool(self._blocks) and not self._blocks[-1].is_full

    def add_block(self, block: Block) -> None:
        self._blocks.append(block)

    def iter_tuples(self) -> Iterator[TemporalTuple]:
        for block in self._blocks:
            yield from block
