"""Fixed-capacity storage blocks with content checksums.

Tuples are stored in blocks of a fixed byte size; a block holds at most
``b = block_size // tuple_size`` tuples.  Partitions and index nodes own
*runs* of blocks; the block ids double as the device addresses the buffer
pool caches, and consecutive ids model physically contiguous storage (the
property Algorithm 1's sorting buys the OIPJOIN).

Every block also carries a cheap CRC32 content checksum, folded
incrementally as tuples are appended.  Storage-manager reads verify it
(memoised — a block that has not been mutated since its last successful
verification is not re-hashed), which is how the resilience layer detects
corrupted payloads.  Two explicit corruption hooks exist for fault
injection and tests:

* :meth:`Block.mark_corrupted` flags the *delivered/cached* copy as bad —
  a device re-read (:meth:`Block.refresh_from_device`) restores it unless
  the corruption was marked permanent (bad media), and
* :meth:`Block.tamper` silently replaces stored content without updating
  the recorded checksum, modelling a genuine undetected bit-flip that
  only verification can surface.
"""

from __future__ import annotations

import zlib
from typing import Iterator, List, Sequence

from ..core.relation import TemporalTuple

__all__ = ["Block", "BlockRun", "tuple_checksum"]


def tuple_checksum(tup: TemporalTuple, crc: int = 0) -> int:
    """Fold one tuple's content into a running CRC32 checksum."""
    return zlib.crc32(
        f"{tup.start}:{tup.end}:{tup.payload!r}".encode("utf-8", "replace"),
        crc,
    )


class Block:
    """One storage block holding up to *capacity* tuples."""

    __slots__ = (
        "block_id",
        "capacity",
        "_tuples",
        "_stored_checksum",
        "_computed_checksum",
        "_dirty",
        "_delivery_corrupt",
        "_media_corrupt",
    )

    def __init__(self, block_id: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"block capacity must be >= 1, got {capacity}")
        self.block_id = block_id
        self.capacity = capacity
        self._tuples: List[TemporalTuple] = []
        self._stored_checksum = 0
        self._computed_checksum = 0
        self._dirty = False
        self._delivery_corrupt = False
        self._media_corrupt = False

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[TemporalTuple]:
        return iter(self._tuples)

    def __repr__(self) -> str:
        return (
            f"Block(id={self.block_id}, {len(self._tuples)}/{self.capacity})"
        )

    @property
    def tuples(self) -> Sequence[TemporalTuple]:
        return self._tuples

    @property
    def is_full(self) -> bool:
        return len(self._tuples) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._tuples)

    def append(self, tup: TemporalTuple) -> None:
        """Add *tup*; raises :class:`OverflowError` when the block is full."""
        if self.is_full:
            raise OverflowError(f"block {self.block_id} is full")
        self._tuples.append(tup)
        self._stored_checksum = tuple_checksum(tup, self._stored_checksum)
        self._dirty = True

    @classmethod
    def from_stored(
        cls,
        block_id: int,
        capacity: int,
        tuples: Sequence[TemporalTuple],
        stored_checksum: "int | None" = None,
    ) -> "Block":
        """Rebuild a block from persisted content in one shot.

        *stored_checksum* is the checksum recorded at original write
        time; passing it skips the per-tuple CRC fold (the bulk-load
        fast path).  ``None`` folds the checksum from *tuples*, exactly
        as repeated :meth:`append` calls would.  The block starts dirty
        either way, so the first :meth:`verify` recomputes from content
        and an adopted checksum that does not match is detected, not
        trusted.
        """
        if len(tuples) > capacity:
            raise OverflowError(
                f"{len(tuples)} tuples exceed block capacity {capacity}"
            )
        block = cls(block_id, capacity)
        block._tuples.extend(tuples)
        if stored_checksum is None:
            crc = 0
            for tup in tuples:
                crc = tuple_checksum(tup, crc)
            stored_checksum = crc
        block._stored_checksum = stored_checksum
        block._dirty = True
        return block

    @classmethod
    def restore_chunks(
        cls,
        run: "BlockRun",
        tuples: Sequence[TemporalTuple],
        capacity: int,
        first_id: int,
        checksums: Sequence[int],
    ) -> int:
        """Bulk-restore *tuples* into consecutive blocks appended to *run*.

        The snapshot-load fast path: behaviourally identical to one
        :meth:`from_stored` call per ``capacity``-sized chunk with its
        recorded checksum — consecutive ids from *first_id*, blocks
        starting dirty so adopted checksums are verified on first read —
        but with the per-block constructor overhead flattened into one
        loop.  Returns the number of blocks appended.
        """
        if capacity < 1:
            raise ValueError(f"block capacity must be >= 1, got {capacity}")
        if type(tuples) is not list:
            tuples = list(tuples)
        blocks = run._blocks
        chunk = 0
        for start in range(0, len(tuples), capacity):
            block = cls.__new__(cls)
            block.block_id = first_id + chunk
            block.capacity = capacity
            block._tuples = tuples[start : start + capacity]
            block._stored_checksum = checksums[chunk]
            block._computed_checksum = 0
            block._dirty = True
            block._delivery_corrupt = False
            block._media_corrupt = False
            blocks.append(block)
            chunk += 1
        return chunk

    # -- integrity ----------------------------------------------------------

    @property
    def checksum(self) -> int:
        """The checksum recorded at write time."""
        return self._stored_checksum

    def compute_checksum(self) -> int:
        """Recompute the content checksum from the stored tuples."""
        crc = 0
        for tup in self._tuples:
            crc = tuple_checksum(tup, crc)
        return crc

    def verify(self) -> bool:
        """True iff the block's content matches its recorded checksum and
        no corruption flag is set.  The recompute is memoised: a block
        untouched since its last verification compares two cached ints."""
        if self._delivery_corrupt or self._media_corrupt:
            return False
        if self._dirty:
            self._computed_checksum = self.compute_checksum()
            self._dirty = False
        return self._computed_checksum == self._stored_checksum

    def mark_corrupted(self, permanent: bool = False) -> None:
        """Fault hook: flag this copy of the block as corrupted.

        Non-permanent corruption models a bad cached/delivered copy — a
        re-read from the device (:meth:`refresh_from_device`) clears it.
        Permanent corruption models bad media: no re-read helps, and the
        storage manager's retry loop ends in a
        :class:`~repro.storage.faults.CorruptBlockError`.
        """
        if permanent:
            self._media_corrupt = True
        else:
            self._delivery_corrupt = True

    def tamper(self, index: int, tup: TemporalTuple) -> None:
        """Fault hook: overwrite the tuple at *index* without updating the
        recorded checksum — an undetected bit-flip in stored content."""
        self._tuples[index] = tup
        self._dirty = True

    def refresh_from_device(self) -> None:
        """Model a fresh device read delivering a clean copy: transient
        delivery corruption clears; permanent media corruption does not."""
        self._delivery_corrupt = False


class BlockRun:
    """A sequence of blocks owned by one partition or index node.

    Blocks are appended in allocation order; when the run was allocated
    from consecutive block ids, reading it is sequential IO.
    """

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: List[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __repr__(self) -> str:
        return f"BlockRun(blocks={len(self._blocks)}, tuples={self.tuple_count})"

    @property
    def blocks(self) -> Sequence[Block]:
        return self._blocks

    @property
    def block_ids(self) -> List[int]:
        return [block.block_id for block in self._blocks]

    @property
    def tuple_count(self) -> int:
        return sum(len(block) for block in self._blocks)

    @property
    def last_block(self) -> Block:
        if not self._blocks:
            raise IndexError("block run is empty")
        return self._blocks[-1]

    @property
    def has_open_block(self) -> bool:
        """True when the last block still has free slots."""
        return bool(self._blocks) and not self._blocks[-1].is_full

    def add_block(self, block: Block) -> None:
        self._blocks.append(block)

    def iter_tuples(self) -> Iterator[TemporalTuple]:
        for block in self._blocks:
            yield from block
